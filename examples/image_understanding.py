#!/usr/bin/env python
"""Image-understanding pipeline on the DARPA-like benchmark scene.

The paper motivates its primitives with the DARPA Image Understanding
benchmarks: object recognition needs component labeling, and display
pipelines need histogram equalization.  This example chains both:

1. histogram the 256-level scene (parallel algorithm, simulated SP-2);
2. build the histogram-equalization map and re-quantize the image
   ("spreading out colors which might be too clumped together");
3. label the connected components of the equalized scene (grey CC);
4. report the largest detected objects with bounding boxes.

Usage:
    python examples/image_understanding.py [size] [processors]
"""

import sys

import numpy as np

import repro
from repro.images import darpa_like
from repro.machines import SP2

K = 256


def equalization_map(histogram: np.ndarray) -> np.ndarray:
    """Classic histogram equalization: map levels through the CDF."""
    cdf = np.cumsum(histogram)
    total = cdf[-1]
    nonzero = cdf > 0
    cdf_min = cdf[nonzero][0] if nonzero.any() else 0
    span = max(total - cdf_min, 1)
    levels = np.round((cdf - cdf_min) / span * (K - 1)).astype(np.int64)
    return np.clip(levels, 0, K - 1)


def bounding_box(mask_rows: np.ndarray, mask_cols: np.ndarray) -> str:
    return (
        f"rows {mask_rows.min()}-{mask_rows.max()}, "
        f"cols {mask_cols.min()}-{mask_cols.max()}"
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    scene = darpa_like(n, K)
    print(f"DARPA-like scene: {n}x{n}, {K} grey levels")

    # 1. parallel histogram (simulated SP-2 run).
    hist = repro.parallel_histogram(scene, K, p, SP2)
    occupied = int((hist.histogram > 0).sum())
    print(
        f"histogram: {occupied}/{K} levels occupied, "
        f"simulated SP-2 time {hist.elapsed_s * 1e3:.2f} ms"
    )

    # 2. equalize.  Level 0 stays background.
    lut = equalization_map(hist.histogram)
    lut[0] = 0
    equalized = lut[scene]

    def contrast(img: np.ndarray) -> int:
        lo, hi = np.percentile(img, [5, 95])
        return int(hi - lo)

    print(
        f"equalization: 5th-95th percentile level spread "
        f"{contrast(scene)} -> {contrast(equalized)} (wider = more contrast)"
    )

    # 3. grey-scale connected components of the equalized scene.
    cc = repro.parallel_components(
        equalized.astype(np.int32), p, SP2, grey=True
    )
    print(
        f"components: {cc.n_components} objects, "
        f"simulated SP-2 time {cc.elapsed_s * 1e3:.2f} ms"
    )

    # 4. report the largest objects.
    labels = cc.labels
    values, counts = np.unique(labels[labels != 0], return_counts=True)
    order = np.argsort(counts)[::-1]
    print("largest objects:")
    for rank in range(min(5, len(values))):
        value = values[order[rank]]
        rows, cols = np.nonzero(labels == value)
        level = int(equalized[rows[0], cols[0]])
        print(
            f"  #{rank + 1}: {counts[order[rank]]:>7} px, level {level:>3}, "
            f"{bounding_box(rows, cols)}"
        )

    # Sanity: the parallel pipeline matches the sequential engines.
    assert np.array_equal(
        cc.labels, repro.sequential_components(equalized.astype(np.int32), grey=True)
    )
    print("verified against the sequential baseline.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scalability study: speedup and efficiency across machines and p.

Reproduces the paper's headline experiment interactively: run both
primitives on every machine model at p = 1..128 and report speedup over
the p=1 run and parallel efficiency -- "an algorithm with an efficiency
near one runs approximately p times faster on p processors".

Usage:
    python examples/scalability_study.py [size] [k]
"""

import sys

import repro
from repro.analysis import efficiency, speedup
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, CS2, SP1, SP2

PS = (1, 4, 16, 64, 128)
MACHINES = (CM5, SP1, SP2, CS2)


def study(title, runner, serial_time_by_machine):
    print(f"\n{title}")
    print(f"{'machine':<14}" + "".join(f"  p={p:<11}" for p in PS))
    for params in MACHINES:
        cells = []
        t1 = serial_time_by_machine[params.name]
        for p in PS:
            tp = runner(p, params)
            eff = efficiency(t1, tp, p)
            cells.append(f"{tp * 1e3:7.1f}ms/{eff:4.2f}")
        print(f"{params.name:<14}" + "  ".join(cells))
    print("(cells: simulated time / parallel efficiency)")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 256

    grey = random_greyscale(n, k, seed=7)
    spiral = binary_test_image(9, n)

    hist_serial = {
        m.name: repro.parallel_histogram(grey, k, 1, m).elapsed_s for m in MACHINES
    }
    cc_serial = {
        m.name: repro.parallel_components(spiral, 1, m).elapsed_s for m in MACHINES
    }

    study(
        f"histogramming {n}x{n}, k={k} (simulated)",
        lambda p, m: repro.parallel_histogram(grey, k, p, m).elapsed_s,
        hist_serial,
    )
    study(
        f"binary connected components {n}x{n}, dual spiral (simulated)",
        lambda p, m: repro.parallel_components(spiral, p, m).elapsed_s,
        cc_serial,
    )

    cm5_cc_64 = repro.parallel_components(spiral, 64, CM5).elapsed_s
    print(
        f"\nexample speedup: CC on simulated CM-5, p=64: "
        f"{speedup(cc_serial[CM5.name], cm5_cc_64):.1f}x over one processor"
    )


if __name__ == "__main__":
    main()

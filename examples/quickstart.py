#!/usr/bin/env python
"""Quickstart: histogram and connected components in five minutes.

Runs the paper's two primitives on one of the Figure-1 test images,
both on the simulated CM-5 (with the full cost report) and through the
real-parallel runtime, and checks them against the sequential
baselines.

Usage:
    python examples/quickstart.py [image-index 1..9] [size]
"""

import sys

import numpy as np

import repro
from repro.baselines import count_components
from repro.images import binary_test_image
from repro.machines import CM5
from repro.runtime import components as runtime_components


def main() -> None:
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 9   # dual spiral
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 256

    image = binary_test_image(index, n)
    print(f"test image {index} at {n}x{n}: {int(image.sum())} foreground pixels")

    # --- histogramming on the simulated CM-5 ---------------------------
    hist = repro.parallel_histogram(image, k=2, p=16, machine_params=CM5)
    assert hist.histogram.sum() == n * n
    print(
        f"histogram (p=16, simulated CM-5): background={hist.histogram[0]}, "
        f"foreground={hist.histogram[1]}, simulated time "
        f"{hist.elapsed_s * 1e3:.2f} ms"
    )

    # --- connected components on the simulated CM-5 --------------------
    cc = repro.parallel_components(image, p=16, machine_params=CM5)
    print(
        f"components  (p=16, simulated CM-5): {cc.n_components} components, "
        f"simulated time {cc.elapsed_s * 1e3:.2f} ms"
    )
    print("phase breakdown (top 5):")
    breakdown = sorted(cc.report.breakdown().items(), key=lambda kv: -kv[1])
    for name, t in breakdown[:5]:
        print(f"  {name:<16} {t * 1e3:8.3f} ms")

    # --- the same computation, truly parallel (or serial fallback) -----
    labels = runtime_components(image)
    assert np.array_equal(labels, cc.labels)
    seq = repro.sequential_components(image)
    assert np.array_equal(labels, seq)
    print(
        f"runtime backend agrees with the simulator and the sequential "
        f"baseline: {count_components(labels)} components."
    )


if __name__ == "__main__":
    main()

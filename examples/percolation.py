#!/usr/bin/env python
"""Site percolation via connected component labeling.

The paper cites percolation as a computational-physics application of
image connected components.  This example performs the classic site-
percolation experiment with :mod:`repro.physics.percolation`: occupy
each lattice site with probability p_occ, label the occupied clusters,
and test whether a cluster spans the lattice top-to-bottom.  Sweeping
p_occ brackets the 2-D site percolation threshold
(p_c ~ 0.5927 on the square lattice with 4-connectivity).

Usage:
    python examples/percolation.py [lattice-size] [trials-per-point]
"""

import sys

from repro.images import site_percolation
from repro.physics import percolation_stats, spanning_probability
from repro.physics.percolation import P_CRITICAL

P_OCCS = (0.50, 0.55, 0.57, 0.59, 0.61, 0.63, 0.65, 0.70)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"site percolation on a {n}x{n} lattice, 4-connectivity, {trials} trials/point")
    print(f"{'p_occ':>7} {'P(span)':>9} {'clusters':>10} {'largest/N':>10}")

    crossing = []
    for p_occ in P_OCCS:
        prob = spanning_probability(n, p_occ, trials=trials, seed=1995)
        stats = percolation_stats(site_percolation(n, p_occ, seed=7))
        crossing.append(prob)
        print(
            f"{p_occ:>7.2f} {prob:>9.2f} {stats.n_clusters:>10} "
            f"{stats.largest_fraction:>10.3f}"
        )

    # The spanning probability must sweep from ~0 to ~1 across the
    # threshold -- the signature S-curve of a phase transition.
    assert crossing[0] < 0.5 <= max(crossing), "no percolation transition seen?"
    assert crossing[-1] > 0.5
    below = max(p for p, f in zip(P_OCCS, crossing) if f <= 0.5)
    print(
        f"\nspanning probability crosses 1/2 just above p_occ = {below:.2f} "
        f"(literature threshold: {P_CRITICAL})"
    )


if __name__ == "__main__":
    main()

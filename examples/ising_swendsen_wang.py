#!/usr/bin/env python
"""Cluster Monte Carlo for the 2-D Ising model (Swendsen-Wang + Wolff).

The paper's introduction cites "various cluster Monte Carlo algorithms
for computing the spin models of magnets such as the two-dimensional
Ising spin model" as a driving application of fast connected-component
labeling.  This example is that application, via
:class:`repro.physics.IsingModel`: Swendsen-Wang sweeps label ALL
bond-connected clusters per step (a direct CC workload); the Wolff
variant grows a single cluster.  Sweeping the temperature brackets the
exact critical point T_c = 2 / ln(1 + sqrt 2) ~ 2.269.

Usage:
    python examples/ising_swendsen_wang.py [lattice-size] [sweeps]
"""

import sys

from repro.physics import IsingModel, T_CRITICAL

TEMPS = (1.2, 1.8, 2.1, 2.27, 2.5, 3.0, 4.0)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    sweeps = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    print(
        f"2-D Ising model on a {n}x{n} lattice, {sweeps} sweeps/point "
        f"(T_c = {T_CRITICAL:.4f})"
    )
    print(f"{'T':>6} {'<|m|> SW':>9} {'<E> SW':>8} {'<|m|> Wolff':>12}")

    results = []
    for i, temp in enumerate(TEMPS):
        sw = IsingModel(n, temp, seed=100 + i).run(sweeps, method="sw")
        wolff = IsingModel(n, temp, seed=200 + i).run(sweeps * 4, method="wolff")
        results.append((temp, sw["magnetization"]))
        print(
            f"{temp:>6.2f} {sw['magnetization']:>9.3f} {sw['energy']:>8.3f} "
            f"{wolff['magnetization']:>12.3f}"
        )

    cold = [m for t, m in results if t < 2.0]
    hot = [m for t, m in results if t > 2.6]
    assert min(cold) > 0.7, "ordered phase not reproduced"
    assert max(hot) < 0.4, "disordered phase not reproduced"
    print(
        f"\nphase transition bracketed: <|m|> = {cold[0]:.2f} at T={TEMPS[0]} "
        f"vs {hot[-1]:.2f} at T={TEMPS[-1]}"
    )


if __name__ == "__main__":
    main()

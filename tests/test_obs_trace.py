"""Tests for repro.obs.trace: contexts, propagation, and span sinks."""

import pytest

from repro.obs import trace as trace_mod
from repro.obs.events import CAT_TASK
from repro.obs.trace import (
    SPAN_ID_HEX,
    TRACE_ID_HEX,
    TraceContext,
    activate,
    current,
    set_span_sink,
    trace_args,
    traced_span,
)
from repro.utils.errors import ValidationError


@pytest.fixture(autouse=True)
def _no_leftover_sink():
    """Each test starts and ends with no process-wide sink installed."""
    previous = set_span_sink(None)
    yield
    set_span_sink(previous)


class TestTraceContext:
    def test_mint_shapes(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == TRACE_ID_HEX
        assert len(ctx.span_id) == SPAN_ID_HEX
        assert ctx.parent_id is None

    def test_child_keeps_trace_reparents(self):
        root = TraceContext.mint()
        kid = root.child()
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.mint().child()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_root_wire_omits_parent(self):
        assert "parent_id" not in TraceContext.mint().to_wire()

    @pytest.mark.parametrize(
        "wire",
        [
            "not-a-dict",
            {},
            {"trace_id": "short", "span_id": "0" * 16},
            {"trace_id": "0" * 32, "span_id": "0" * 16, "extra": 1},
            {"trace_id": "0" * 32, "span_id": "Z" * 16},
            {"trace_id": "0" * 32, "span_id": "0" * 16, "parent_id": "nope"},
        ],
    )
    def test_from_wire_rejects_junk(self, wire):
        with pytest.raises(ValidationError):
            TraceContext.from_wire(wire)

    def test_span_args_and_lane(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8,
                           parent_id="ef" * 8)
        args = ctx.span_args()
        assert args == {"trace": "ab" * 16, "span": "cd" * 8,
                        "parent": "ef" * 8}
        assert ctx.lane == "req:abababab"


class TestPropagation:
    def test_activate_scopes_current(self):
        assert current() is None
        ctx = TraceContext.mint()
        with activate(ctx):
            assert current() is ctx
            assert trace_args() == ctx.span_args()
        assert current() is None
        assert trace_args() == {}

    def test_activate_none_is_a_clean_scope(self):
        outer = TraceContext.mint()
        with activate(outer):
            with activate(None):
                assert current() is None
            assert current() is outer

    def test_set_span_sink_returns_previous(self):
        def sink(*a):
            pass

        assert set_span_sink(sink) is None
        assert set_span_sink(None) is sink


class TestTracedSpan:
    def test_records_through_sink_with_chained_parentage(self):
        spans = []
        set_span_sink(lambda *a: spans.append(a))
        root = TraceContext.mint()
        with activate(root):
            with traced_span("outer", weight=2) as outer_ctx:
                with traced_span("inner"):
                    pass
        assert [s[0] for s in spans] == ["inner", "outer"]
        inner_args = spans[0][4]
        outer_args = spans[1][4]
        assert outer_args["parent"] == root.span_id
        assert inner_args["parent"] == outer_ctx.span_id
        assert outer_args["trace"] == inner_args["trace"] == root.trace_id
        assert outer_args["weight"] == 2
        assert spans[1][3] == CAT_TASK

    def test_noop_without_context(self):
        spans = []
        set_span_sink(lambda *a: spans.append(a))
        with traced_span("orphan") as ctx:
            assert ctx is None
        assert spans == []

    def test_noop_without_sink(self):
        with activate(TraceContext.mint()):
            with traced_span("unsinked") as ctx:
                assert ctx is None

    def test_records_even_when_body_raises(self):
        spans = []
        set_span_sink(lambda *a: spans.append(a))
        with activate(TraceContext.mint()):
            with pytest.raises(RuntimeError):
                with traced_span("doomed"):
                    raise RuntimeError("boom")
            # the failed scope's context was popped again
            assert trace_mod.current().parent_id is None
        assert [s[0] for s in spans] == ["doomed"]

"""Tests for the stripe divide-&-conquer baseline."""

import numpy as np
import pytest

from repro.baselines import sequential_components
from repro.baselines.stripe_dc import stripe_components
from repro.core.connected_components import parallel_components
from repro.images import binary_test_image, darpa_like
from repro.machines import CM5, IDEAL
from repro.utils.errors import ConfigurationError, ValidationError


class TestCorrectness:
    @pytest.mark.parametrize("idx", [1, 5, 9])
    @pytest.mark.parametrize("p", [1, 2, 8, 32])
    def test_matches_sequential(self, idx, p):
        img = binary_test_image(idx, 64)
        res = stripe_components(img, p, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_images(self, connectivity, small_binary):
        res = stripe_components(small_binary, 8, IDEAL, connectivity=connectivity)
        assert np.array_equal(
            res.labels, sequential_components(small_binary, connectivity=connectivity)
        )

    def test_grey(self, small_grey):
        res = stripe_components(small_grey, 8, IDEAL, grey=True)
        assert np.array_equal(res.labels, sequential_components(small_grey, grey=True))

    def test_component_count(self):
        img = binary_test_image(8, 64)
        assert stripe_components(img, 16, IDEAL).n_components == 4

    def test_p_must_divide_n(self):
        img = np.ones((48, 48), dtype=np.int32)
        with pytest.raises(ConfigurationError):
            stripe_components(img, 32, IDEAL)  # 32 does not divide 48

    def test_unknown_engine(self, small_binary):
        with pytest.raises(ValidationError):
            stripe_components(small_binary, 4, engine="nope")


class TestComparison:
    def test_paper_algorithm_wins_at_scale(self):
        """The central comparison: 2-D tiles + limited updating beat
        1-D stripes + eager relabeling (as Table 2 shows)."""
        img = darpa_like(256, 64, seed=1)
        paper = parallel_components(img, 32, CM5, grey=True)
        stripe = stripe_components(img, 32, CM5, grey=True)
        assert np.array_equal(paper.labels, stripe.labels)
        assert paper.elapsed_s < stripe.elapsed_s

    def test_margin_grows_with_p(self):
        img = binary_test_image(3, 128)
        ratios = []
        for p in (4, 32):
            paper = parallel_components(img, p, CM5).elapsed_s
            stripe = stripe_components(img, p, CM5).elapsed_s
            ratios.append(stripe / paper)
        assert ratios[1] > ratios[0]

    def test_phase_names(self, small_binary):
        res = stripe_components(small_binary, 4, CM5)
        names = [ph.name for ph in res.report.phases]
        assert names[0] == "sdc:label"
        assert any(name.startswith("sdc:m1") for name in names)

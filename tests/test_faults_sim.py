"""Shadow-manager failover tests on the BDM simulator.

The paper's merge protocol already contains its redundancy: the shadow
manager (the processor directly across the border) independently holds
one sorted border side.  These tests pin the failover golden cases --
for every merge round, losing a group's manager OR shadow still yields
labels bit-identical to the unfaulted run, and the takeover is visible
as instants on the simulated timeline.
"""

import numpy as np
import pytest

from repro.bdm.machine import Machine
from repro.core.connected_components import parallel_components
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.faults import FaultPlan, FaultSpec
from repro.obs import (
    FAULT_FAILOVER,
    FAULT_MANAGER_CRASH,
    FAULT_SHADOW_CRASH,
    MachineRecorder,
)
from repro.utils.errors import FailoverError

P = 16
N = 32


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(7)
    return (rng.random((N, N)) < 0.55).astype(np.int64)


@pytest.fixture(scope="module")
def baseline(image):
    return parallel_components(image, P)


@pytest.fixture(scope="module")
def schedule(image):
    return merge_schedule(ProcessorGrid(P, image.shape))


def _plan(round=None, group=None, target="manager", times=1):
    return FaultPlan(faults=(
        FaultSpec(
            site="sim:merge", kind="crash",
            round=round, group=group, target=target, times=times,
        ),
    ))


def _run(image, plan, **kw):
    machine = Machine(P)
    rec = MachineRecorder(machine)
    res = parallel_components(image, P, machine=machine, fault_plan=plan, **kw)
    return res, rec


class TestManagerFailover:
    """Golden case per merge round: manager lost, shadow takes over."""

    @pytest.mark.parametrize("rnd", range(4))  # log2(16) rounds for p=16
    def test_bit_identical_labels(self, rnd, image, baseline):
        res, rec = _run(image, _plan(round=rnd, group=0))
        assert np.array_equal(res.labels, baseline.labels)
        assert res.n_components == baseline.n_components

    @pytest.mark.parametrize("rnd", range(4))
    def test_failover_instants_name_the_right_processors(
        self, rnd, image, schedule
    ):
        res, rec = _run(image, _plan(round=rnd, group=0))
        group = schedule[rnd].groups[0]
        crashes = [i for i in rec.log.instants if i.name == FAULT_MANAGER_CRASH]
        failovers = [i for i in rec.log.instants if i.name == FAULT_FAILOVER]
        assert len(crashes) == 1 and len(failovers) == 1
        assert crashes[0].lane == group.manager
        assert failovers[0].lane == group.shadow  # the shadow takes over
        assert failovers[0].args["manager"] == group.manager
        assert failovers[0].args["round"] == rnd

    @pytest.mark.parametrize("rnd", range(4))
    def test_step_stats_count_the_failover(self, rnd, image):
        res, _ = _run(image, _plan(round=rnd, group=0))
        per_round = [s.n_failovers for s in res.step_stats]
        expect = [1 if s.t - 1 == rnd else 0 for s in res.step_stats]
        assert per_round == expect

    def test_failover_counted_on_sim_clock(self, image):
        # Round 2's boundary is after two merge phases: its instants
        # must carry a strictly positive simulated timestamp.
        _, rec = _run(image, _plan(round=2, group=0))
        assert all(i.t_s > 0 for i in rec.fault_events())

    def test_every_round_faulted_still_identical(self, image, baseline):
        # Wildcard selectors: every group of every round loses its
        # manager, and every shadow fails over.
        res, rec = _run(image, _plan(target="manager", times=-1))
        assert np.array_equal(res.labels, baseline.labels)
        assert [s.n_failovers for s in res.step_stats] == [
            s.n_groups for s in res.step_stats
        ]

    def test_transpose_distribution_failover(self, image, baseline):
        res, _ = _run(image, _plan(round=1, group=0), distribution="transpose")
        assert np.array_equal(res.labels, baseline.labels)


class TestShadowLoss:
    """Manager survives a lost shadow by fetching both sides itself."""

    @pytest.mark.parametrize("rnd", range(4))
    def test_bit_identical_labels(self, rnd, image, baseline):
        res, rec = _run(image, _plan(round=rnd, group=0, target="shadow"))
        assert np.array_equal(res.labels, baseline.labels)
        names = [i.name for i in rec.fault_events()]
        assert names == [FAULT_SHADOW_CRASH]
        assert res.step_stats[rnd].n_failovers == 1

    def test_without_shadow_manager_shadow_loss_is_inert(self, image, baseline):
        # shadow_manager=False: the across-border processor has no
        # protocol role, so "losing" it changes nothing.
        res, rec = _run(
            image, _plan(round=0, group=0, target="shadow"),
            shadow_manager=False,
        )
        assert np.array_equal(res.labels, baseline.labels)
        assert rec.fault_events() == []
        assert sum(s.n_failovers for s in res.step_stats) == 0


class TestUnrecoverable:
    def test_both_lost_raises(self, image):
        with pytest.raises(FailoverError, match="shadow .* lost too"):
            parallel_components(image, P, fault_plan=_plan(round=0, target="both"))

    def test_manager_and_shadow_specs_combine_to_double_loss(self, image):
        plan = FaultPlan(faults=(
            FaultSpec(site="sim:merge", kind="crash", round=1, group=0,
                      target="manager"),
            FaultSpec(site="sim:merge", kind="crash", round=1, group=0,
                      target="shadow"),
        ))
        with pytest.raises(FailoverError):
            parallel_components(image, P, fault_plan=plan)

    def test_manager_lost_without_shadow_manager_raises(self, image):
        with pytest.raises(FailoverError, match="no shadow manager"):
            parallel_components(
                image, P, shadow_manager=False,
                fault_plan=_plan(round=0, group=0),
            )

    def test_error_is_typed_with_site(self, image):
        with pytest.raises(FailoverError) as err:
            parallel_components(image, P, fault_plan=_plan(round=0, target="both"))
        assert err.value.site == "sim:merge"


class TestFaultModelScope:
    def test_process_sites_ignored_by_simulator(self, image, baseline):
        # A plan aimed at the multiprocessing runtime must not disturb
        # a simulated run (the CLI passes one plan to either engine).
        plan = FaultPlan(faults=(
            FaultSpec(site="cc:merge", kind="crash", round=0, group=0),
            FaultSpec(site="cc:label", kind="exception", task=0),
        ))
        res, rec = _run(image, plan)
        assert np.array_equal(res.labels, baseline.labels)
        assert rec.fault_events() == []

    def test_no_plan_no_events(self, image, baseline):
        res, rec = _run(image, None)
        assert np.array_equal(res.labels, baseline.labels)
        assert rec.fault_events() == []
        assert all(s.n_failovers == 0 for s in res.step_stats)

    def test_grey_mode_failover(self):
        rng = np.random.default_rng(3)
        grey = rng.integers(0, 8, size=(N, N)).astype(np.int64)
        base = parallel_components(grey, P, grey=True)
        res, _ = _run(grey, _plan(round=0, group=0), grey=True)
        assert np.array_equal(res.labels, base.labels)

"""Tests for Machine/Processor: phases, cost aggregation, transfers."""

import pytest

from repro.bdm import GlobalArray, Machine
from repro.machines import CM5, IDEAL
from repro.utils.errors import ConfigurationError, ValidationError


class TestConstruction:
    def test_power_of_two_procs(self):
        with pytest.raises(ValidationError):
            Machine(6)

    def test_proc_identity(self):
        m = Machine(8)
        assert [proc.pid for proc in m.procs] == list(range(8))


class TestPhases:
    def test_phase_elapsed_is_max_over_procs(self):
        m = Machine(4, CM5)
        with m.phase("work"):
            m.procs[0].charge_comp(1000)
            m.procs[3].charge_comp(5000)
        rep = m.report()
        assert rep.phases[0].elapsed_s == pytest.approx(CM5.comp_time_s(5000))

    def test_barrier_cost_added(self):
        m = Machine(4, CM5)
        with m.phase("a"):
            pass
        with m.phase("b"):
            pass
        assert m.report().elapsed_s == pytest.approx(2 * CM5.barrier_s)

    def test_nested_phase_rejected(self):
        m = Machine(2)
        with pytest.raises(ConfigurationError):
            with m.phase("outer"):
                with m.phase("inner"):
                    pass

    def test_phase_deltas_independent(self):
        m = Machine(2, CM5)
        with m.phase("a"):
            m.procs[0].charge_comp(100)
        with m.phase("b"):
            m.procs[0].charge_comp(300)
        phases = m.report().phases
        assert phases[1].comp_s == pytest.approx(CM5.comp_time_s(300))

    def test_reset(self):
        m = Machine(2, CM5)
        with m.phase("a"):
            m.procs[0].charge_comp(100)
        m.reset()
        assert m.report().elapsed_s == 0.0
        assert m.procs[0].cost.ops == 0


class TestPortModel:
    def test_send_and_receive_overlap(self):
        """A processor that reads X words and serves X words takes max, not sum."""
        m = Machine(2, CM5)
        arr = GlobalArray(m, 100)
        with m.phase("exchange"):
            with m.procs[0].prefetch_batch():
                arr.read(m.procs[0], 1)
            with m.procs[1].prefetch_batch():
                arr.read(m.procs[1], 0)
        ph = m.report().phases[0]
        # Both processors read 100 words (latency + words) and served 100.
        assert ph.elapsed_s == pytest.approx(CM5.latency_s + 100 * CM5.word_time_s())

    def test_hub_serialization_visible(self):
        """f clients pulling c words each from one hub take >= f*c word-times."""
        m = Machine(8, CM5)
        arr = GlobalArray(m, 100)
        with m.phase("hub"):
            for pid in range(1, 8):
                arr.read(m.procs[pid], 0)
        ph = m.report().phases[0]
        assert ph.elapsed_s >= 7 * 100 * CM5.word_time_s() * (1 - 1e-12)

    def test_serving_disabled(self):
        m = Machine(8, CM5, charge_server=False)
        arr = GlobalArray(m, 100)
        with m.phase("hub"):
            for pid in range(1, 8):
                arr.read(m.procs[pid], 0)
        ph = m.report().phases[0]
        assert ph.elapsed_s == pytest.approx(CM5.latency_s + 100 * CM5.word_time_s())


class TestTransfer:
    def test_transfer_charges_both_sides(self):
        m = Machine(2, CM5)
        with m.phase("t"):
            m.transfer(0, 1, 50)
        assert m.procs[1].cost.comm_s == pytest.approx(CM5.latency_s + 50 * CM5.word_time_s())
        assert m.procs[0].cost.serve_s == pytest.approx(50 * CM5.word_time_s())

    def test_self_transfer_free(self):
        m = Machine(2, CM5)
        with m.phase("t"):
            m.transfer(1, 1, 50)
        assert m.procs[1].cost.comm_s == 0.0

    def test_negative_words_rejected(self):
        m = Machine(2, CM5)
        with pytest.raises(ValidationError):
            m.transfer(0, 1, -1)

    def test_explicit_charge_comm(self):
        m = Machine(2, CM5)
        m.procs[0].charge_comm(10)
        assert m.procs[0].cost.words_moved == 10
        with pytest.raises(ValidationError):
            m.procs[0].charge_comm(-1)


class TestReport:
    def test_breakdown_groups_by_name(self):
        m = Machine(2, IDEAL)
        for _ in range(3):
            with m.phase("merge"):
                m.procs[0].charge_comp(10)
        with m.phase("final"):
            m.procs[0].charge_comp(5)
        bd = m.report().breakdown()
        assert set(bd) == {"merge", "final"}

    def test_time_in_prefix(self):
        m = Machine(2, CM5)
        with m.phase("cc:m1:fetch"):
            m.procs[0].charge_comp(100)
        with m.phase("cc:m1:solve"):
            m.procs[0].charge_comp(200)
        with m.phase("cc:final"):
            m.procs[0].charge_comp(300)
        rep = m.report()
        assert rep.time_in("cc:m1") == pytest.approx(
            CM5.comp_time_s(300) + 2 * CM5.barrier_s
        )

    def test_words_moved_totals(self):
        m = Machine(2, IDEAL)
        arr = GlobalArray(m, 10)
        with m.phase("x"):
            arr.read(m.procs[0], 1)
        assert m.report().words_moved == 10

    def test_elapsed_property_matches_report(self):
        m = Machine(2, CM5)
        with m.phase("a"):
            m.procs[0].charge_comp(123)
        assert m.elapsed_s == pytest.approx(m.report().elapsed_s)


class TestChargeValidation:
    def test_negative_comp_rejected(self):
        m = Machine(2)
        with pytest.raises(ValidationError):
            m.procs[0].charge_comp(-1)

    def test_nested_batches_one_latency(self):
        m = Machine(2, CM5)
        arr = GlobalArray(m, 4)
        proc = m.procs[0]
        with m.phase("x"):
            with proc.prefetch_batch():
                arr.read(proc, 1)
                with proc.prefetch_batch():
                    arr.read(proc, 1)
        assert proc.cost.messages == 1


class TestOverlap:
    def test_overlap_takes_max(self):
        from repro.bdm import GlobalArray

        def run(overlap):
            m = Machine(2, CM5, overlap=overlap)
            arr = GlobalArray(m, 100)
            with m.phase("x"):
                proc = m.procs[0]
                proc.charge_comp(1000)
                with proc.prefetch_batch():
                    arr.read(proc, 1)
            return m.report().phases[0].elapsed_s

        comp = CM5.comp_time_s(1000)
        comm = CM5.latency_s + 100 * CM5.word_time_s()
        assert run(False) == pytest.approx(comp + comm)
        assert run(True) == pytest.approx(max(comp, comm))

    def test_overlap_never_slower(self):
        from repro.core.histogram import parallel_histogram
        from repro.images import random_greyscale

        img = random_greyscale(64, 32, seed=8)
        t_overlap = parallel_histogram(img, 32, 16, CM5).elapsed_s
        # parallel_histogram builds its own machine; compare via Machine
        # directly instead: a mixed comp+comm phase.
        m1 = Machine(4, CM5, overlap=False)
        m2 = Machine(4, CM5, overlap=True)
        from repro.bdm import GlobalArray

        for m in (m1, m2):
            arr = GlobalArray(m, 64)
            with m.phase("mix"):
                for proc in m.procs:
                    proc.charge_comp(500)
                    with proc.prefetch_batch():
                        arr.read(proc, (proc.pid + 1) % 4)
        assert m2.elapsed_s <= m1.elapsed_s
        assert t_overlap > 0


class TestChargeCopy:
    def test_copy_free_by_default(self):
        m = Machine(2, CM5)
        m.procs[0].charge_copy(1000)
        assert m.procs[0].cost.comp_s == 0.0

    def test_copy_charged_with_rate(self):
        params = CM5.with_(copy_ns=10.0)
        m = Machine(2, params)
        m.procs[0].charge_copy(1000)
        assert m.procs[0].cost.comp_s == pytest.approx(10e-6)

    def test_negative_rejected(self):
        m = Machine(2, CM5)
        with pytest.raises(ValidationError):
            m.procs[0].charge_copy(-1)


class TestReportSummary:
    def test_summary_renders(self):
        m = Machine(4, CM5)
        arr = GlobalArray(m, 16)
        with m.phase("alpha"):
            for proc in m.procs:
                proc.charge_comp(1000)
        with m.phase("beta"):
            arr.read(m.procs[0], 1)
        text = m.report().summary()
        assert "TMC CM-5" in text
        assert "alpha" in text and "beta" in text
        assert "words moved" in text

    def test_summary_top_limits(self):
        m = Machine(2, CM5)
        for name in ("a", "b", "c"):
            with m.phase(name):
                m.procs[0].charge_comp(10)
        text = m.report().summary(top=1)
        # Only one phase row (plus two header lines).
        assert len(text.splitlines()) == 3

"""Tests for repro.darray: transports, engine, bit-identity, chaos.

The subsystem contract: every transport (in-process, shared-memory,
out-of-core) produces labels **bit-identical** to the serial reference
across kernel backends, leaks no ``/dev/shm`` segment, and -- for the
dispatched transport -- recovers from every seeded single fault or
fails typed, exactly like the hardened runtime.
"""

import warnings

import numpy as np
import pytest

from repro.baselines.sequential import sequential_components
from repro.core.tiles import ProcessorGrid
from repro.darray import (
    DistributedArray,
    TRANSPORTS,
    count_components,
    darray_components,
    darray_histogram,
    open_transport,
)
from repro.faults import (
    FaultPlan,
    FaultSpec,
    assert_no_shm_leak,
    single_fault_plans,
)
from repro.images import binary_test_image, random_greyscale
from repro.utils.errors import (
    DegradedRunWarning,
    FaultError,
    ValidationError,
)

N = 32
P = 4  # 2x2 grid -> 2 merge rounds
N_ROUNDS = 2
TRANSPORT_NAMES = ("local", "shmem", "mmap")
# Short deadlines keep the shmem chaos legs quick; faulted tasks on a
# 32x32 image take milliseconds, so the margin is still huge.
FAST = dict(timeout=1.5, max_retries=2, workers=P)


@pytest.fixture(scope="module")
def image():
    return binary_test_image(4, N)


@pytest.fixture(scope="module")
def serial_labels(image):
    return sequential_components(image, connectivity=8)


@pytest.fixture(scope="module")
def grey_image():
    return random_greyscale(N, 64, seed=5)


class TestBitIdentityMatrix:
    """(local, shmem, mmap) x (python, numpy) == the serial reference."""

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_binary_8conn(self, transport, kernel, image, serial_labels):
        with assert_no_shm_leak():
            res = darray_components(
                image, p=P, transport=transport, kernel=kernel, resident_tiles=1
            )
        assert np.array_equal(np.asarray(res.labels), serial_labels)
        assert res.n_components == count_components(serial_labels)

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_binary_4conn(self, transport, image):
        expect = sequential_components(image, connectivity=4)
        res = darray_components(image, p=P, transport=transport, connectivity=4)
        assert np.array_equal(np.asarray(res.labels), expect)

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_grey(self, transport, grey_image):
        expect = sequential_components(grey_image, grey=True)
        res = darray_components(grey_image, p=P, transport=transport, grey=True)
        assert np.array_equal(np.asarray(res.labels), expect)

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_non_divisible_image(self, transport):
        # 30x30 with a 2x2 grid: balanced 15-pixel tiles; 29x31 is
        # uneven in both axes.
        for shape in ((30, 30), (29, 31)):
            img = binary_test_image(2, max(shape))[: shape[0], : shape[1]]
            expect = sequential_components(img, connectivity=8)
            res = darray_components(img, p=P, transport=transport)
            assert np.array_equal(np.asarray(res.labels), expect), (transport, shape)

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_strip_grid(self, transport, image, serial_labels):
        res = darray_components(image, p=P, transport=transport, shape=(1, P))
        assert np.array_equal(np.asarray(res.labels), serial_labels)
        res = darray_components(image, p=P, transport=transport, shape=(P, 1))
        assert np.array_equal(np.asarray(res.labels), serial_labels)

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_histogram_parity(self, transport, grey_image):
        expect = np.bincount(grey_image.ravel(), minlength=64)
        with assert_no_shm_leak():
            got = darray_histogram(grey_image, 64, p=P, transport=transport)
        assert np.array_equal(got, expect)


class TestEngine:
    def test_streaming_count_matches_unique(self, image):
        res = darray_components(image, p=P)
        lab = np.asarray(res.labels)
        assert count_components(lab) == int(np.unique(lab[lab != 0]).size)

    def test_border_traffic_counted(self, image):
        res = darray_components(image, p=P)
        # 2 merge rounds x 2 groups x 2 sides of 16 pixels, labels +
        # colors at 8 bytes each: traffic must be counted and bounded.
        assert res.stats.border_bytes > 0
        assert res.stats.border_bytes <= 32 * N * 16  # << O(n^2)

    def test_local_transport_keeps_everything_resident(self, image):
        res = darray_components(image, p=P, transport="local")
        assert res.stats.spill_reads == 0
        assert res.stats.spill_writes == 0
        assert res.stats.resident_highwater == 0

    def test_obs_counts_emitted(self, image):
        from repro.obs import WallRecorder

        rec = WallRecorder()
        darray_components(image, p=P, recorder=rec)
        names = {s.name for s in rec.log.spans}
        assert "darray:label" in names
        assert "darray:merge:r1" in names
        assert "darray:final" in names

    def test_file_source(self, tmp_path, image, serial_labels):
        from repro.images.io import write_pgm

        path = tmp_path / "img.pgm"
        write_pgm(path, image)
        for transport in TRANSPORT_NAMES:
            res = darray_components(str(path), p=P, transport=transport)
            assert np.array_equal(np.asarray(res.labels), serial_labels), transport


class TestTransportRegistry:
    def test_known_names(self):
        assert set(TRANSPORTS) == {"local", "shmem", "mmap"}

    def test_unknown_name_raises(self, image):
        grid = ProcessorGrid(P, N)
        with pytest.raises(ValidationError, match="unknown transport"):
            open_transport("carrier-pigeon", grid, image)

    def test_place_exposes_tiles(self, image):
        grid = ProcessorGrid(P, N)
        with DistributedArray.place(image, grid) as da:
            for pid in range(P):
                assert np.array_equal(da.tile(pid), image[grid.tile_slices(pid)])


def _matrix():
    plans = single_fault_plans(
        workload="components", engine="darray", n_rounds=N_ROUNDS, n_tasks=P
    )
    return [pytest.param(p, id=p.describe()) for p in plans]


class TestShmemChaosMatrix:
    """Every darray single-fault plan recovers bit-identically (shmem)."""

    @pytest.mark.parametrize("plan", _matrix())
    def test_single_fault_recovers(self, plan, image, serial_labels):
        with assert_no_shm_leak():
            with warnings.catch_warnings():
                warnings.simplefilter("error", DegradedRunWarning)
                res = darray_components(
                    image, p=P, transport="shmem", fault_plan=plan, **FAST
                )
        assert np.array_equal(np.asarray(res.labels), serial_labels)

    def test_python_kernel_spot_check(self, image, serial_labels):
        plan = FaultPlan(faults=(
            FaultSpec(site="darray:border", kind="corrupt", round=0, group=0),
        ))
        with assert_no_shm_leak():
            res = darray_components(
                image, p=P, transport="shmem", kernel="python",
                fault_plan=plan, **FAST,
            )
        assert np.array_equal(np.asarray(res.labels), serial_labels)

    def test_local_transport_ignores_plans(self, image, serial_labels):
        # No workers to fault: plans are inert, never installed in the
        # driver (a crash spec would kill the test process otherwise).
        plan = FaultPlan(faults=(
            FaultSpec(site="darray:border", kind="crash", times=-1),
        ))
        for transport in ("local", "mmap"):
            res = darray_components(image, p=P, transport=transport, fault_plan=plan)
            assert np.array_equal(np.asarray(res.labels), serial_labels)


def _persistent_border_fault():
    return FaultPlan(faults=(
        FaultSpec(site="darray:border", kind="exception", round=0, group=0, times=-1),
    ))


class TestDegradation:
    def test_exhausted_recovery_degrades_to_serial(self, image, serial_labels):
        from repro.obs import WallRecorder

        rec = WallRecorder()
        with assert_no_shm_leak():
            with pytest.warns(DegradedRunWarning, match="degraded to the serial"):
                res = darray_components(
                    image, p=P, transport="shmem", recorder=rec,
                    fault_plan=_persistent_border_fault(), **FAST,
                )
        assert np.array_equal(np.asarray(res.labels), serial_labels)
        names = [i.name for i in rec.fault_events()]
        assert names[-1] == "fault:degrade"

    def test_degrade_false_raises_typed_error_without_leak(self, image):
        with assert_no_shm_leak():
            with pytest.raises(FaultError):
                darray_components(
                    image, p=P, transport="shmem", degrade=False,
                    fault_plan=_persistent_border_fault(), **FAST,
                )

"""Property-based tests: the parallel CC algorithm as a whole.

The central invariant -- for ANY image, processor count, connectivity
and option set, the parallel algorithm's output is bit-identical to the
sequential labeling -- is exactly the kind of statement hypothesis is
built for.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import sequential_components
from repro.core.connected_components import parallel_components
from repro.machines import IDEAL


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.int32, (16, 16), elements=st.integers(min_value=0, max_value=1)),
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([4, 8]),
)
def test_binary_parallel_equals_sequential(img, p, connectivity):
    res = parallel_components(img, p, IDEAL, connectivity=connectivity)
    assert np.array_equal(
        res.labels, sequential_components(img, connectivity=connectivity)
    )


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.int32, (16, 16), elements=st.integers(min_value=0, max_value=3)),
    st.sampled_from([2, 4, 16]),
    st.sampled_from([4, 8]),
)
def test_grey_parallel_equals_sequential(img, p, connectivity):
    res = parallel_components(img, p, IDEAL, grey=True, connectivity=connectivity)
    assert np.array_equal(
        res.labels,
        sequential_components(img, grey=True, connectivity=connectivity),
    )


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.int32, (16, 16), elements=st.integers(min_value=0, max_value=1)),
    st.booleans(),
    st.sampled_from(["direct", "transpose"]),
    st.booleans(),
)
def test_option_combinations_equal(img, shadow, dist, limited):
    base = parallel_components(img, 8, IDEAL)
    res = parallel_components(
        img, 8, IDEAL,
        shadow_manager=shadow, distribution=dist, limited_updating=limited,
    )
    assert np.array_equal(res.labels, base.labels)


@settings(max_examples=25, deadline=None)
@given(arrays(np.int32, (16, 16), elements=st.integers(min_value=0, max_value=1)))
def test_labels_are_component_minima(img):
    """Every label equals 1 + the min flat index of its support, and the
    support of each label is exactly one connected component."""
    res = parallel_components(img, 4, IDEAL)
    lab = res.labels
    assert ((lab == 0) == (img == 0)).all()
    for value in np.unique(lab[lab != 0]):
        support = np.flatnonzero(lab.ravel() == value)
        assert value == support.min() + 1


@settings(max_examples=15, deadline=None)
@given(
    arrays(np.int32, (16, 16), elements=st.integers(min_value=0, max_value=2)),
    st.sampled_from([2, 4, 8]),
)
def test_permutation_invariance_of_component_structure(img, p):
    """Relabeling grey levels by a permutation (fixing 0) must not change
    the component partition for grey CC."""
    res1 = parallel_components(img, p, IDEAL, grey=True)
    # swap levels 1 <-> 2
    swapped = img.copy()
    swapped[img == 1] = 2
    swapped[img == 2] = 1
    res2 = parallel_components(swapped, p, IDEAL, grey=True)
    assert np.array_equal(res1.labels, res2.labels)  # labels are positional

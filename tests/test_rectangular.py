"""Rectangular-image support across every execution path.

The paper's setting is square images; the library generalizes to
``rows x cols`` as long as the logical grid divides both dimensions.
These tests run all algorithms on rectangles and check against the
(shape-agnostic) sequential engines.
"""

import numpy as np
import pytest

from repro.baselines import (
    sequential_components,
    sequential_histogram,
    stripe_components,
)
from repro.core.connected_components import parallel_components
from repro.core.equalization import parallel_equalize
from repro.core.histogram import parallel_histogram
from repro.core.spmd_components import spmd_components
from repro.machines import CM5, IDEAL
from repro.runtime import components as rt_components
from repro.runtime import histogram as rt_histogram
from tests.conftest import oracle_binary_labels, oracle_grey_labels


@pytest.fixture
def rect_binary(rng):
    return (rng.random((24, 48)) < 0.5).astype(np.int32)


@pytest.fixture
def rect_grey(rng):
    return rng.integers(0, 8, size=(48, 24)).astype(np.int32)


class TestHistogramRect:
    def test_matches_sequential(self, rect_grey):
        res = parallel_histogram(rect_grey, 8, 8, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(rect_grey, 8))

    def test_sum_is_pixel_count(self, rect_grey):
        res = parallel_histogram(rect_grey, 8, 4, CM5)
        assert res.histogram.sum() == rect_grey.size


class TestComponentsRect:
    @pytest.mark.parametrize("p", [1, 2, 8])
    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_binary(self, p, connectivity, rect_binary):
        res = parallel_components(rect_binary, p, IDEAL, connectivity=connectivity)
        assert np.array_equal(
            res.labels, oracle_binary_labels(rect_binary, connectivity)
        )

    def test_grey(self, rect_grey):
        res = parallel_components(rect_grey, 8, IDEAL, grey=True)
        assert np.array_equal(res.labels, oracle_grey_labels(rect_grey, 8))

    def test_wide_image(self, rng):
        img = (rng.random((8, 128)) < 0.5).astype(np.int32)
        res = parallel_components(img, 4, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_tall_image(self, rng):
        img = (rng.random((128, 8)) < 0.5).astype(np.int32)
        res = parallel_components(img, 4, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_option_matrix_on_rect(self, rect_binary):
        base = sequential_components(rect_binary)
        for dist in ("direct", "transpose"):
            for lim in (True, False):
                res = parallel_components(
                    rect_binary, 8, IDEAL, distribution=dist, limited_updating=lim
                )
                assert np.array_equal(res.labels, base), (dist, lim)


class TestOtherPathsRect:
    def test_spmd_components(self, rect_binary):
        labels, _ = spmd_components(rect_binary, 8, IDEAL)
        assert np.array_equal(labels, sequential_components(rect_binary))

    def test_stripe_dc(self, rect_binary):
        res = stripe_components(rect_binary, 8, IDEAL)
        assert np.array_equal(res.labels, sequential_components(rect_binary))

    def test_runtime_components(self, rect_binary):
        out = rt_components(rect_binary, workers=4, backend="process")
        assert np.array_equal(out, sequential_components(rect_binary))

    def test_runtime_histogram(self, rect_grey):
        out = rt_histogram(rect_grey, 8, workers=2, backend="process")
        assert np.array_equal(out, sequential_histogram(rect_grey, 8))

    def test_equalization(self, rect_grey):
        res = parallel_equalize(rect_grey, 8, 8, IDEAL)
        assert res.image.shape == rect_grey.shape
        assert np.array_equal(res.histogram, sequential_histogram(rect_grey, 8))

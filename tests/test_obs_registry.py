"""Tests for the metrics registry: instruments, exposition, quantiles.

The two Hypothesis properties are the load-bearing ones: the log-bucketed
histogram promises quantiles within one bucket's relative error of the
exact order statistic at every magnitude, and count-additive merging must
be associative/commutative so per-shard histograms can aggregate into a
fleet view in any order.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    write_timeseries,
)
from repro.obs.registry import (
    BUCKET_BASE,
    BUCKET_BOUNDS,
    BUCKET_GROWTH,
    Histogram,
)
from repro.utils.errors import ValidationError


def make_hist(values=()):
    hist = MetricsRegistry().histogram("probe_seconds")
    for v in values:
        hist.observe(v)
    return hist


# -- strategies --------------------------------------------------------------

# Observations above the first bound (where the relative-error contract
# holds; everything at or below 1us collapses into bucket 0 by design)
# and below the last finite bound (beyond it only a floor is promised).
latencies = st.floats(
    min_value=BUCKET_BASE * 1.01,
    max_value=1000.0,
    allow_nan=False,
    allow_infinity=False,
)


def exact_quantile(values, q):
    """The exact order statistic the histogram ranks against.

    Smallest element whose empirical CDF reaches ``q`` -- numpy's
    ``inverse_cdf`` method, spelled out so the oracle is explicit.
    """
    ordered = np.sort(np.asarray(values, dtype=float))
    rank = math.ceil(q * len(ordered))
    return float(ordered[max(rank - 1, 0)])


def bucket_index(value):
    if value <= BUCKET_BASE:
        return 0
    return math.ceil(math.log(value / BUCKET_BASE) / math.log(BUCKET_GROWTH))


class TestHistogramQuantileProperty:
    @given(st.lists(latencies, min_size=1, max_size=200),
           st.sampled_from([0.5, 0.99]))
    def test_quantile_within_one_bucket_of_exact(self, values, q):
        hist = make_hist(values)
        reported = hist.quantile(q)
        exact = exact_quantile(values, q)
        # Same bucket as the exact order statistic: the reported value
        # may interpolate anywhere within it, so the error is bounded
        # by one bucket's relative width (~9%).
        idx = bucket_index(exact)
        lo = BUCKET_BOUNDS[idx - 1] if idx > 0 else 0.0
        hi = BUCKET_BOUNDS[min(idx, len(BUCKET_BOUNDS) - 1)]
        assert lo <= reported <= hi * (1 + 1e-12)
        assert reported <= exact * BUCKET_GROWTH * (1 + 1e-9)
        assert reported >= exact / BUCKET_GROWTH / (1 + 1e-9)

    @given(st.lists(latencies, min_size=1, max_size=100))
    def test_median_of_identical_values_is_their_bucket(self, values):
        v = values[0]
        hist = make_hist([v] * 10)
        assert hist.quantile(0.5) == pytest.approx(v, rel=BUCKET_GROWTH - 1)


class TestHistogramMergeProperty:
    @given(st.lists(latencies, max_size=60), st.lists(latencies, max_size=60),
           st.lists(latencies, max_size=60))
    def test_merge_is_associative(self, xs, ys, zs):
        left = make_hist(xs)
        left_inner = make_hist(ys)
        left_inner.merge(make_hist(zs))
        left.merge(left_inner)

        right = make_hist(xs)
        right.merge(make_hist(ys))
        right.merge(make_hist(zs))

        assert left.buckets == right.buckets
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)

    @given(st.lists(latencies, max_size=60), st.lists(latencies, max_size=60))
    def test_merge_equals_pooled_observations(self, xs, ys):
        merged = make_hist(xs)
        merged.merge(make_hist(ys))
        pooled = make_hist(xs + ys)
        assert merged.buckets == pooled.buckets
        assert merged.count == pooled.count
        assert merged.sum == pytest.approx(pooled.sum)


class TestHistogramEdges:
    def test_empty_quantile_is_zero(self):
        assert make_hist().quantile(0.5) == 0.0

    def test_negative_observation_clamped_to_first_bucket(self):
        hist = make_hist([-3.0])
        assert hist.buckets[0] == 1
        assert hist.sum == 0.0

    def test_overflow_reports_last_finite_bound(self):
        hist = make_hist([10_000.0])
        assert hist.quantile(0.99) == BUCKET_BOUNDS[-1]

    def test_quantile_domain_checked(self):
        with pytest.raises(ValidationError):
            make_hist([1.0]).quantile(1.5)


class TestRegistry:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("probe_total")
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_same_name_same_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("probe_total", labels={"op": "histogram"})
        b = reg.counter("probe_total", labels={"op": "histogram"})
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("probe_total")
        with pytest.raises(ValidationError):
            reg.gauge("probe_total")

    def test_label_name_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("probe_total", labels={"op": "a"})
        with pytest.raises(ValidationError):
            reg.counter("probe_total", labels={"kernel": "b"})

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("no spaces")

    def test_family_lookup(self):
        reg = MetricsRegistry()
        reg.histogram("probe_seconds", labels={"op": "x"})
        fam = reg.family("probe_seconds")
        assert fam is not None and fam.kind == "histogram"
        assert reg.family("absent") is None


class TestPrometheusExposition:
    def test_roundtrip_through_parser(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Requests", labels={"op": "histogram"}).inc(4)
        reg.gauge("repro_queue_depth", "Depth").set(7)
        reg.histogram("repro_latency_seconds", "Latency", labels={"op": "histogram"}).observe(0.003)
        families = parse_prometheus_text(reg.prometheus_text())
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_requests_total"]["samples"][0]["value"] == 4
        assert families["repro_queue_depth"]["samples"][0]["value"] == 7
        hist = families["repro_latency_seconds"]
        counts = [s for s in hist["samples"] if s["name"].endswith("_count")]
        assert counts and counts[0]["value"] == 1

    def test_histogram_buckets_are_cumulative_and_sparse(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_latency_seconds")
        for v in (0.001, 0.001, 0.5):
            h.observe(v)
        text = reg.prometheus_text()
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_latency_seconds_bucket")
        ]
        # two occupied buckets + the +Inf line, not 265 rows
        assert len(bucket_lines) == 3
        assert bucket_lines[-1].endswith(" 3")
        values = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert values == sorted(values)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValidationError):
            parse_prometheus_text("repro_requests_total not-a-number")


class TestTimeseries:
    def test_snapshot_and_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("repro_latency_seconds").observe(0.25)
        snap = reg.snapshot()
        [entry] = snap["metrics"]
        assert entry["count"] == 1
        assert entry["p50"] == pytest.approx(0.25, rel=BUCKET_GROWTH - 1)
        out = tmp_path / "series.json"
        payload = write_timeseries(out, [snap, reg.snapshot()])
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert len(on_disk["samples"]) == 2

"""Tests for repro.service: cache, admission, batching, and the service.

The async pieces are driven with ``asyncio.run`` from synchronous
tests (no pytest-asyncio dependency); each test builds its own service
so pool lifetimes stay scoped to the test.
"""

import asyncio

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, assert_no_shm_leak
from repro.images import binary_test_image, darpa_like
from repro.kernels import get as get_kernel
from repro.obs import WallRecorder
from repro.service import (
    AdmissionQueue,
    BatchKey,
    BatchService,
    Client,
    MicroBatcher,
    PendingRequest,
    ResultCache,
    ServiceConfig,
    canonical_params,
    image_digest,
    result_key,
)
from repro.service.ops import svc_task
from repro.utils.errors import (
    ServiceClosedError,
    ServiceOverloadError,
    TaskTimeoutError,
    ValidationError,
)


class TestCache:
    def test_hit_returns_stored_value(self):
        cache = ResultCache()
        value = np.arange(8)
        assert cache.put("a", value)
        assert cache.get("a") is value
        assert cache.stats.hits == 1

    def test_miss_is_counted(self):
        cache = ResultCache()
        assert cache.get("nope") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", np.arange(4))
        cache.put("b", np.arange(4))
        cache.put("c", np.arange(4))
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", np.arange(4))
        cache.put("b", np.arange(4))
        cache.get("a")
        cache.put("c", np.arange(4))
        assert "a" in cache  # b, not a, was the LRU victim
        assert "b" not in cache

    def test_byte_bound_evicts(self):
        one_kb = np.zeros(128, dtype=np.int64)  # 1024 bytes
        cache = ResultCache(max_entries=100, max_bytes=3000)
        cache.put("a", one_kb)
        cache.put("b", one_kb)
        cache.put("c", one_kb)  # 3072 bytes > 3000 -> evict "a"
        assert "a" not in cache
        assert cache.stats.bytes <= 3000

    def test_oversized_result_is_uncacheable(self):
        cache = ResultCache(max_bytes=100)
        assert not cache.put("big", np.zeros(1000, dtype=np.int64))
        assert "big" not in cache
        assert cache.stats.uncacheable == 1
        assert cache.stats.evictions == 0

    def test_replacement_updates_bytes(self):
        cache = ResultCache()
        cache.put("a", np.zeros(100, dtype=np.int64))
        cache.put("a", np.zeros(10, dtype=np.int64))
        assert cache.stats.bytes == 80
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache()
        cache.put("a", np.arange(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes == 0

    def test_bounds_validated(self):
        with pytest.raises(ValidationError):
            ResultCache(max_entries=0)
        with pytest.raises(ValidationError):
            ResultCache(max_bytes=-1)

    def test_digest_separates_shape_and_dtype(self):
        flat = np.arange(16, dtype=np.int64)
        square = flat.reshape(4, 4)
        assert image_digest(flat) != image_digest(square)
        assert image_digest(flat) != image_digest(flat.astype(np.int32))
        assert image_digest(square) == image_digest(square.copy())

    def test_result_key_separates_ops_and_params(self):
        img = darpa_like(16, 16, seed=3)
        digest = image_digest(img)
        k1 = result_key(digest, "histogram", (("k", 16),))
        k2 = result_key(digest, "histogram", (("k", 256),))
        k3 = result_key(digest, "equalize", (("k", 16),))
        assert len({k1, k2, k3}) == 3


class TestCanonicalParams:
    def test_defaults_are_filled(self):
        img = binary_test_image(1, 16)
        assert canonical_params("components", img, {}) == (
            ("connectivity", 8), ("grey", False),
        )
        assert canonical_params("histogram", img, {}) == (("k", 256),)

    def test_spelling_is_canonical(self):
        img = binary_test_image(1, 16)
        a = canonical_params("components", img, {"grey": False, "connectivity": 8})
        b = canonical_params("components", img, {})
        assert a == b

    def test_unknown_op(self):
        with pytest.raises(ValidationError, match="unknown service op"):
            canonical_params("edges", binary_test_image(1, 8), {})

    def test_unknown_param(self):
        with pytest.raises(ValidationError, match="unknown parameter"):
            canonical_params("histogram", binary_test_image(1, 8), {"bins": 4})

    def test_k_must_cover_image(self):
        img = darpa_like(16, 256, seed=1)
        with pytest.raises(ValidationError, match="grey levels"):
            canonical_params("histogram", img, {"k": 16})

    def test_k_must_be_power_of_two(self):
        with pytest.raises(ValidationError):
            canonical_params("histogram", binary_test_image(1, 8), {"k": 100})

    def test_connectivity_values(self):
        img = binary_test_image(1, 8)
        with pytest.raises(ValidationError, match="connectivity"):
            canonical_params("components", img, {"connectivity": 6})


class TestAdmission:
    def test_sheds_beyond_depth(self):
        async def scenario():
            queue = AdmissionQueue(depth=2, timeout_s=30)
            loop = asyncio.get_running_loop()
            reqs = [
                PendingRequest("histogram", None, (), loop.create_future())
                for _ in range(3)
            ]
            queue.admit(reqs[0])
            queue.admit(reqs[1])
            with pytest.raises(ServiceOverloadError) as err:
                queue.admit(reqs[2])
            assert err.value.depth == 2
            assert queue.stats.shed == 1
            assert queue.stats.admitted == 2
            assert len(queue.drain_nowait()) == 2

        asyncio.run(scenario())

    def test_deadline_is_stamped(self):
        async def scenario():
            queue = AdmissionQueue(depth=2, timeout_s=5.0)
            req = PendingRequest(
                "histogram", None, (), asyncio.get_running_loop().create_future()
            )
            queue.admit(req)
            assert req.deadline_s == pytest.approx(req.enqueued_s + 5.0)
            assert not req.expired()

        asyncio.run(scenario())

    def test_get_records_wait(self):
        async def scenario():
            queue = AdmissionQueue(depth=2, timeout_s=5.0)
            req = PendingRequest(
                "histogram", None, (), asyncio.get_running_loop().create_future()
            )
            queue.admit(req)
            got = await queue.get()
            assert got is req
            assert queue.stats.max_wait_s >= 0.0

        asyncio.run(scenario())


class TestBatcher:
    def test_expired_request_fails_without_dispatch(self):
        async def scenario():
            queue = AdmissionQueue(depth=4, timeout_s=30)
            dispatched = []

            async def execute(key, reqs):
                dispatched.append(reqs)

            batcher = MicroBatcher(queue, execute)
            loop = asyncio.get_running_loop()
            req = PendingRequest("histogram", None, (), loop.create_future())
            req.deadline_s = req.enqueued_s - 1.0  # already expired
            batcher._absorb(req)
            assert batcher.stats.expired == 1
            assert not dispatched
            with pytest.raises(TaskTimeoutError):
                req.future.result()

        asyncio.run(scenario())

    def test_batches_by_key_and_flushes_at_max(self):
        async def scenario():
            queue = AdmissionQueue(depth=64, timeout_s=30)
            batches = []

            async def execute(key, reqs):
                batches.append((key, len(reqs)))
                for r in reqs:
                    r.future.set_result(None)

            batcher = MicroBatcher(queue, execute, max_batch=3, max_delay_s=10.0)
            loop = asyncio.get_running_loop()
            reqs = [
                PendingRequest("histogram", None, (("k", 256),), loop.create_future())
                for _ in range(3)
            ] + [
                PendingRequest("components", None, (), loop.create_future())
            ]
            for r in reqs:
                queue.admit(r)
            task = asyncio.ensure_future(batcher.run())
            # The size-3 histogram bucket flushes on its own; the lone
            # components request waits out the window until cancellation.
            await asyncio.wait_for(
                asyncio.gather(*[r.future for r in reqs[:3]]), timeout=5
            )
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            assert (BatchKey("histogram", (("k", 256),)), 3) in batches
            # Cancellation flushed the remaining components bucket too.
            assert (BatchKey("components", ()), 1) in batches

        asyncio.run(scenario())

    def test_validates_knobs(self):
        queue = object()
        with pytest.raises(ValidationError):
            MicroBatcher(queue, None, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(queue, None, max_delay_s=-1)


def _serial_reference(op, image, **params):
    if op == "histogram":
        return get_kernel("histogram", backend="numpy")(image, params.get("k", 256))
    if op == "components":
        return get_kernel("tile_label", backend="numpy")(
            image,
            connectivity=params.get("connectivity", 8),
            grey=params.get("grey", False),
        )
    raise AssertionError(op)


class TestBatchService:
    def test_results_match_serial_reference(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                img = darpa_like(48, 256, seed=7)
                pat = binary_test_image(4, 32)
                hist, labels = await asyncio.gather(
                    service.submit("histogram", img, k=256),
                    service.submit("components", pat, connectivity=4),
                )
                assert np.array_equal(hist, _serial_reference("histogram", img, k=256))
                assert np.array_equal(
                    labels, _serial_reference("components", pat, connectivity=4)
                )
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_equalize_matches_lut_path(self):
        from repro.core.equalization import equalization_lut

        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                img = darpa_like(32, 256, seed=9)
                eq = await service.submit("equalize", img, k=256)
                hist = _serial_reference("histogram", img, k=256)
                assert np.array_equal(eq, equalization_lut(hist)[img])
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_repeat_hits_cache_and_burst_batches(self):
        async def scenario():
            service = BatchService(
                ServiceConfig(workers=2, max_batch=8, max_delay_s=0.05)
            )
            await service.start()
            try:
                img = darpa_like(32, 256, seed=2)
                first = await service.submit("histogram", img, k=256)
                again = await service.submit("histogram", img, k=256)
                assert np.array_equal(first, again)
                assert service.cache.stats.hits == 1
                # A concurrent burst of distinct images coalesces into
                # fewer dispatches than requests.
                imgs = [darpa_like(32, 256, seed=s) for s in range(10, 16)]
                await asyncio.gather(
                    *[service.submit("histogram", im, k=256) for im in imgs]
                )
                snap = service.snapshot()
                assert snap["batcher"]["max_batch"] > 1
                assert snap["executor"]["batches"] < 1 + len(imgs)
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            service = BatchService(
                ServiceConfig(workers=2, max_batch=4, max_delay_s=0.05)
            )
            await service.start()
            try:
                img = darpa_like(32, 256, seed=5)
                results = await asyncio.gather(
                    *[service.submit("histogram", img, k=256) for _ in range(6)]
                )
                for r in results[1:]:
                    assert np.array_equal(results[0], r)
                snap = service.snapshot()
                # One computation served all six: the rest were coalesced
                # onto the in-flight future, not dispatched.
                assert snap["executor"]["tasks"] == 1
                assert snap["service"]["coalesced"] == 5
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_overload_sheds_with_typed_error(self):
        async def scenario():
            service = BatchService(
                ServiceConfig(
                    workers=2, max_batch=2, max_delay_s=0.0,
                    queue_depth=3, cache=False,
                )
            )
            await service.start()
            try:
                imgs = [darpa_like(24, 256, seed=s) for s in range(20, 36)]
                results = await asyncio.gather(
                    *[service.submit("histogram", im, k=256) for im in imgs],
                    return_exceptions=True,
                )
                shed = [r for r in results if isinstance(r, ServiceOverloadError)]
                served = [r for r in results if isinstance(r, np.ndarray)]
                assert shed, "expected at least one shed request"
                assert served, "expected at least one served request"
                assert len(shed) + len(served) == len(imgs)
                assert all(e.depth == 3 for e in shed)
                assert service.snapshot()["admission"]["shed"] == len(shed)
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_submit_after_stop_raises(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            await service.stop()
            with pytest.raises(ServiceClosedError):
                await service.submit("histogram", binary_test_image(1, 16))

        asyncio.run(scenario())

    def test_bad_request_rejected_at_admission(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                with pytest.raises(ValidationError):
                    await service.submit("histogram", darpa_like(16, 256), k=16)
                with pytest.raises(ValidationError):
                    await service.submit("edges", binary_test_image(1, 16))
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_no_shm_leak_across_lifecycle(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                await service.submit("histogram", darpa_like(24, 256, seed=1), k=256)
            finally:
                await service.stop()

        with assert_no_shm_leak():
            asyncio.run(scenario())


class TestWorkerTask:
    def test_error_marker_instead_of_exception(self):
        marker = svc_task(((0, "edges", None, ()), 0))
        assert marker[0] == "err"
        assert marker[1] == "ValidationError"

    def test_ok_marker(self):
        img = binary_test_image(2, 16)
        tag, hist = svc_task(((0, "histogram", img, (("k", 2),)), 0))
        assert tag == "ok"
        assert np.array_equal(hist, _serial_reference("histogram", img, k=2))

    def test_error_marker_keeps_its_type_across_the_pool(self):
        from repro.service.server import _worker_error
        from repro.utils.errors import FaultError, ReproError, ValidationError

        exc = _worker_error("ValidationError", "bad k")
        assert type(exc) is ValidationError
        exc = _worker_error("FaultError", "injected")
        assert type(exc) is FaultError
        # Unknown names (or names that aren't ReproError subclasses)
        # fall back to the base class rather than a mislabeled subtype.
        assert type(_worker_error("KeyboardInterrupt", "x")) is ReproError
        assert type(_worker_error("NoSuchError", "x")) is ReproError


class TestFaultyService:
    def test_transient_fault_is_retried_transparently(self):
        plan = FaultPlan(seed=3, faults=(FaultSpec("svc:exec", "exception", times=1),))

        async def scenario():
            rec = WallRecorder()
            service = BatchService(
                ServiceConfig(workers=2, fault_plan=plan, timeout_s=30, retries=2),
                recorder=rec,
            )
            await service.start()
            try:
                img = darpa_like(24, 256, seed=4)
                hist = await service.submit("histogram", img, k=256)
                assert np.array_equal(hist, _serial_reference("histogram", img, k=256))
            finally:
                await service.stop()
            assert service.executor.stats.degraded == 0
            assert any(i.name.startswith("fault:") for i in rec.fault_events())

        asyncio.run(scenario())

    def test_crash_recovers_via_respawn(self):
        plan = FaultPlan(seed=5, faults=(FaultSpec("svc:exec", "crash", times=1),))

        async def scenario():
            service = BatchService(
                ServiceConfig(workers=2, fault_plan=plan, timeout_s=1.5, retries=2)
            )
            await service.start()
            try:
                img = darpa_like(24, 256, seed=6)
                hist = await service.submit("histogram", img, k=256)
                assert np.array_equal(hist, _serial_reference("histogram", img, k=256))
            finally:
                await service.stop()

        with assert_no_shm_leak():
            asyncio.run(scenario())

    def test_persistent_fault_degrades_to_serial(self):
        plan = FaultPlan(seed=7, faults=(FaultSpec("svc:exec", "exception", times=-1),))

        async def scenario():
            service = BatchService(
                ServiceConfig(workers=2, fault_plan=plan, timeout_s=30, retries=1)
            )
            await service.start()
            try:
                img = darpa_like(24, 256, seed=8)
                hist = await service.submit("histogram", img, k=256)
                # Degraded serving still returns the bit-identical answer.
                assert np.array_equal(hist, _serial_reference("histogram", img, k=256))
                assert service.executor.stats.degraded == 1
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_persistent_fault_with_degrade_off_raises(self):
        from repro.utils.errors import FaultError

        plan = FaultPlan(seed=9, faults=(FaultSpec("svc:exec", "exception", times=-1),))

        async def scenario():
            service = BatchService(
                ServiceConfig(
                    workers=2, fault_plan=plan, timeout_s=30, retries=1, degrade=False
                )
            )
            await service.start()
            try:
                with pytest.raises(FaultError):
                    await service.submit(
                        "histogram", darpa_like(24, 256, seed=10), k=256
                    )
            finally:
                await service.stop()

        asyncio.run(scenario())


class TestClient:
    def test_sync_facade_round_trip(self):
        with Client(ServiceConfig(workers=2)) as client:
            img = darpa_like(32, 256, seed=11)
            first = client.submit("histogram", img, k=256)
            again = client.submit("histogram", img, k=256)
            assert np.array_equal(first, _serial_reference("histogram", img, k=256))
            assert np.array_equal(first, again)
            assert client.stats()["cache"]["hits"] == 1

    def test_submit_before_start_raises(self):
        client = Client(ServiceConfig(workers=2))
        with pytest.raises(ServiceClosedError):
            client.submit("histogram", binary_test_image(1, 16))

    def test_threaded_clients_share_batches(self):
        import concurrent.futures

        with Client(ServiceConfig(workers=2, max_batch=8, max_delay_s=0.05)) as client:
            imgs = [darpa_like(24, 256, seed=s) for s in range(40, 48)]
            with concurrent.futures.ThreadPoolExecutor(8) as tpe:
                results = list(
                    tpe.map(lambda im: client.submit("histogram", im, k=256), imgs)
                )
            for im, hist in zip(imgs, results):
                assert np.array_equal(hist, _serial_reference("histogram", im, k=256))
            assert client.stats()["batcher"]["max_batch"] >= 2

"""Tests for the generator-based SPMD executor."""

import numpy as np
import pytest

from repro.bdm import GlobalArray, Machine, transpose
from repro.bdm.spmd import SpmdContext, run_spmd
from repro.machines import CM5, IDEAL
from repro.utils.errors import ConfigurationError, HazardError, ValidationError


def spmd_transpose_program(q):
    """Algorithm 1 written exactly as the paper lists it."""

    def program(ctx: SpmdContext):
        p = ctx.p
        size = q // p
        A = ctx.array("A", q)
        AT = ctx.array("AT", q)
        handles = []
        for loop in range(p):
            r = (ctx.pid + loop) % p
            handles.append((r, ctx.prefetch(A, r, ctx.pid * size, (ctx.pid + 1) * size)))
        yield ctx.sync()
        for r, handle in handles:
            ctx.write(AT, handle.value, start=r * size)
        yield ctx.barrier()
        return ctx.read_local(AT).copy()

    return program


class TestSpmdTranspose:
    @pytest.mark.parametrize("p,q", [(2, 8), (4, 16), (8, 64)])
    def test_matches_phase_api_result(self, p, q):
        mat = np.arange(p * q).reshape(p, q)

        # Phase-style reference.
        m1 = Machine(p, IDEAL)
        A1 = GlobalArray(m1, q)
        A1.scatter_rows(mat)
        expected = transpose(m1, A1).gather_rows()

        # SPMD-style.
        m2 = Machine(p, IDEAL)
        program = spmd_transpose_program(q)

        def seeded(ctx):
            A = ctx.array("A", q)
            ctx.write(A, mat[ctx.pid])
            yield ctx.barrier()
            result = yield from program(ctx)
            return result

        results = run_spmd(m2, seeded)
        assert np.array_equal(np.stack(results), expected)

    def test_costs_match_phase_api(self):
        p, q = 4, 32
        mat = np.arange(p * q).reshape(p, q)

        m1 = Machine(p, CM5)
        A1 = GlobalArray(m1, q)
        A1.scatter_rows(mat)
        transpose(m1, A1)
        phase_comm = m1.report().comm_s

        m2 = Machine(p, CM5)
        program = spmd_transpose_program(q)

        def seeded(ctx):
            A = ctx.array("A", q)
            ctx.write(A, mat[ctx.pid])
            yield ctx.barrier()
            result = yield from program(ctx)
            return result

        run_spmd(m2, seeded)
        spmd_comm = m2.report().comm_s
        assert spmd_comm == pytest.approx(phase_comm)

    def test_return_values_collected(self):
        m = Machine(4, IDEAL)

        def program(ctx):
            yield ctx.barrier()
            return ctx.pid * 10

        assert run_spmd(m, program) == [0, 10, 20, 30]


class TestSplitPhaseSemantics:
    def test_handle_before_sync_raises(self):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            handle = ctx.prefetch(A, (ctx.pid + 1) % 2)
            _ = handle.value  # BUG: consumed before sync
            yield ctx.sync()

        with pytest.raises(ValidationError, match="before sync"):
            run_spmd(m, program)

    def test_handle_after_sync_works(self):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, [ctx.pid] * 4)
            yield ctx.barrier()
            handle = ctx.prefetch(A, (ctx.pid + 1) % 2)
            yield ctx.sync()
            return int(handle.value[0])

        assert run_spmd(m, program) == [1, 0]

    def test_racy_program_caught_by_hazard_checker(self):
        """Write and remote read in the same superstep: a real race."""
        m = Machine(2, IDEAL, check_hazards=True)

        def racy(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, [ctx.pid + 1] * 4)       # write own block ...
            ctx.prefetch(A, (ctx.pid + 1) % 2)    # ... while peer reads it
            yield ctx.sync()                      # no barrier in between!

        with pytest.raises(HazardError):
            run_spmd(m, racy)

    def test_barrier_separates_write_and_read(self):
        m = Machine(2, IDEAL, check_hazards=True)

        def correct(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, [ctx.pid + 1] * 4)
            yield ctx.barrier()
            handle = ctx.prefetch(A, (ctx.pid + 1) % 2)
            yield ctx.sync()
            return int(handle.value[0])

        assert run_spmd(m, correct) == [2, 1]


class TestPendingPrefetches:
    def test_completion_with_unserviced_prefetch_raises(self):
        """A prefetch with no sync() before return used to vanish silently."""
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            yield ctx.barrier()
            ctx.prefetch(A, (ctx.pid + 1) % 2)
            return ctx.pid  # BUG: never synced

        with pytest.raises(HazardError, match="unserviced prefetch"):
            run_spmd(m, program)

    def test_synced_program_unaffected(self):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            yield ctx.barrier()
            h = ctx.prefetch(A, (ctx.pid + 1) % 2)
            yield ctx.sync()
            return int(h.value[0])

        assert run_spmd(m, program) == [0, 0]

    def test_racy_program_unchecked_when_disabled(self):
        """check_hazards=False remains a full escape hatch for the DSL."""
        m = Machine(2, IDEAL, check_hazards=False)

        def racy(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, [ctx.pid + 1] * 4)
            h = ctx.prefetch(A, (ctx.pid + 1) % 2)
            yield ctx.sync()
            return int(h.value[0])

        assert run_spmd(m, racy) == [2, 1]


class TestValidation:
    def test_non_generator_program_rejected(self):
        m = Machine(2, IDEAL)

        def not_a_generator(ctx):
            return 42

        with pytest.raises(ConfigurationError, match="generator"):
            run_spmd(m, not_a_generator)

    def test_array_dtype_conflict(self):
        m = Machine(2, IDEAL)

        def program(ctx):
            if ctx.pid == 0:
                ctx.array("X", 4, dtype=np.int64)
            else:
                ctx.array("X", 4, dtype=np.float64)
            yield ctx.barrier()

        with pytest.raises(ConfigurationError, match="dtype"):
            run_spmd(m, program)

    def test_uneven_termination_allowed(self):
        """Processors may finish at different steps (tail work)."""
        m = Machine(4, IDEAL)

        def program(ctx):
            yield ctx.barrier()
            if ctx.pid % 2 == 0:
                yield ctx.barrier()  # evens do one more superstep
            return ctx.pid

        assert run_spmd(m, program) == [0, 1, 2, 3]


class TestPrefetchIndices:
    def test_scattered_prefetch(self):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 8)
            ctx.write(A, np.arange(8) * (ctx.pid + 1))
            yield ctx.barrier()
            handle = ctx.prefetch_indices(A, (ctx.pid + 1) % 2, np.array([1, 3, 7]))
            yield ctx.sync()
            return handle.value.tolist()

        results = run_spmd(m, program)
        assert results[0] == [2, 6, 14]  # from pid 1's block (x2)
        assert results[1] == [1, 3, 7]   # from pid 0's block (x1)

    def test_indices_snapshot_at_issue_time(self):
        """Mutating the index array after prefetch must not change the read."""
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, [10, 11, 12, 13])
            yield ctx.barrier()
            idx = np.array([0, 2])
            handle = ctx.prefetch_indices(A, (ctx.pid + 1) % 2, idx)
            idx[:] = 3  # mutate after issue
            yield ctx.sync()
            return handle.value.tolist()

        assert run_spmd(m, program) == [[10, 12], [10, 12]]

    def test_charged_word_count(self):
        m = Machine(2, CM5)

        def program(ctx):
            A = ctx.array("A", 100)
            yield ctx.barrier()
            if ctx.pid == 0:
                ctx.prefetch_indices(A, 1, np.array([0, 50, 99]))
            yield ctx.sync()

        run_spmd(m, program)
        assert m.procs[0].cost.words_moved == 3

"""Larger-scale and randomized stress tests (still fast enough for CI).

These push the paper's configurations to their extremes: large images,
the full option matrix on random inputs, extreme processor counts, and
adversarial structures (the dual spiral at scale, single-pixel lattice
components).
"""

import numpy as np
import pytest

from repro.baselines import sequential_components, sequential_histogram
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, checkerboard, random_greyscale
from repro.machines import CM5, IDEAL


class TestLargeImages:
    def test_cc_1024_spiral(self):
        """The paper's largest CC configuration: 1024^2 on 128 procs."""
        img = binary_test_image(9, 1024)
        res = parallel_components(img, 128, CM5)
        assert res.n_components == 2
        # spot-check against the sequential engine
        assert np.array_equal(res.labels, sequential_components(img))

    def test_histogram_2048(self):
        img = random_greyscale(2048, 256, seed=1)
        res = parallel_histogram(img, 256, 64, CM5)
        assert np.array_equal(res.histogram, sequential_histogram(img, 256))

    def test_labels_fit_in_int64_comfortably(self):
        """Labels are pixel indices; even 2048^2 stays far below 2^31."""
        img = binary_test_image(6, 2048)
        labels = sequential_components(img)
        assert labels.max() < 2**31


class TestExtremeProcessorCounts:
    def test_one_pixel_tiles(self, rng):
        img = (rng.random((16, 16)) < 0.5).astype(np.int32)
        res = parallel_components(img, 256, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_one_pixel_tiles_grey(self, rng):
        img = rng.integers(0, 4, (16, 16)).astype(np.int32)
        res = parallel_components(img, 256, IDEAL, grey=True)
        assert np.array_equal(res.labels, sequential_components(img, grey=True))

    def test_histogram_p_equals_pixels(self, rng):
        img = rng.integers(0, 4, (8, 8)).astype(np.int32)
        res = parallel_histogram(img, 4, 64, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, 4))

    def test_checkerboard_worst_case_components(self):
        """Every foreground pixel isolated: maximal component count."""
        img = checkerboard(64, 1, levels=(0, 1))
        res = parallel_components(img, 64, IDEAL, connectivity=4)
        assert res.n_components == 64 * 64 // 2
        assert np.array_equal(
            res.labels, sequential_components(img, connectivity=4)
        )


class TestRandomizedOptionMatrix:
    """Fuzz the full option cross-product on random images."""

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_binary(self, seed):
        rng = np.random.default_rng(seed * 7919)
        n = int(rng.choice([16, 32, 64]))
        density = float(rng.uniform(0.2, 0.8))
        img = (rng.random((n, n)) < density).astype(np.int32)
        p = int(rng.choice([1, 2, 4, 8, 16]))
        connectivity = int(rng.choice([4, 8]))
        expected = sequential_components(img, connectivity=connectivity)
        res = parallel_components(
            img,
            p,
            IDEAL,
            connectivity=connectivity,
            shadow_manager=bool(rng.integers(0, 2)),
            distribution=str(rng.choice(["direct", "transpose"])),
            limited_updating=bool(rng.integers(0, 2)),
            engine=str(rng.choice(["runs", "sv"])),
        )
        assert np.array_equal(res.labels, expected), (seed, n, p, connectivity)

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_grey(self, seed):
        rng = np.random.default_rng(seed * 104729)
        n = int(rng.choice([16, 32]))
        k = int(rng.choice([2, 4, 8]))
        img = rng.integers(0, k, (n, n)).astype(np.int32)
        p = int(rng.choice([2, 4, 16]))
        connectivity = int(rng.choice([4, 8]))
        expected = sequential_components(img, grey=True, connectivity=connectivity)
        res = parallel_components(
            img, p, IDEAL, grey=True, connectivity=connectivity,
            limited_updating=bool(rng.integers(0, 2)),
        )
        assert np.array_equal(res.labels, expected), (seed, n, k, p)

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_histogram(self, seed):
        rng = np.random.default_rng(seed * 31337)
        n = int(rng.choice([16, 32, 64]))
        k = int(rng.choice([2, 8, 64, 256]))
        img = rng.integers(0, k, (n, n)).astype(np.int32)
        p = int(rng.choice([1, 4, 16, 64]))
        res = parallel_histogram(img, k, p, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, k))


class TestDegenerateImages:
    def test_single_pixel_image(self):
        img = np.array([[1]], dtype=np.int32)
        res = parallel_components(img, 1, IDEAL)
        assert res.labels[0, 0] == 1

    def test_single_row_image(self):
        img = np.array([[1, 0, 1, 1, 0, 1, 1, 1]], dtype=np.int32)
        res = parallel_components(img, 2, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_single_column_rejected_when_grid_cannot_split(self):
        """A 1-wide image cannot be split by a 1x2 grid: clean error."""
        from repro.utils.errors import ConfigurationError

        img = np.array([[1], [0], [1], [1]], dtype=np.int32)
        with pytest.raises(ConfigurationError):
            parallel_components(img, 2, IDEAL)
        # p=1 still works
        res = parallel_components(img, 1, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_max_grey_level(self):
        img = np.full((8, 8), 255, dtype=np.int32)
        res = parallel_histogram(img, 256, 4, IDEAL)
        assert res.histogram[255] == 64
        assert res.histogram[:255].sum() == 0

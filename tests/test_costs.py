"""Direct tests for the cost-accounting data structures."""

import pytest

from repro.bdm.cost import CostCounter, MachineReport, PhaseRecord
from repro.core.costs import CostParams, DEFAULT_COSTS


class TestCostCounter:
    def test_snapshot_is_independent(self):
        c = CostCounter(comm_s=1.0, comp_s=2.0)
        snap = c.snapshot()
        c.comm_s = 9.0
        assert snap.comm_s == 1.0

    def test_minus(self):
        a = CostCounter(comm_s=3.0, comp_s=5.0, words_moved=10, ops=100)
        b = CostCounter(comm_s=1.0, comp_s=2.0, words_moved=4, ops=40)
        d = a.minus(b)
        assert d.comm_s == 2.0
        assert d.comp_s == 3.0
        assert d.words_moved == 6
        assert d.ops == 60

    def test_port_is_max_of_send_recv(self):
        c = CostCounter(comm_s=2.0, serve_s=5.0)
        assert c.port_s == 5.0
        assert c.total_s == 5.0  # comp 0

    def test_total_adds_comp(self):
        c = CostCounter(comm_s=2.0, serve_s=1.0, comp_s=3.0)
        assert c.total_s == 5.0


class TestMachineReport:
    def _report(self):
        return MachineReport(
            p=4,
            machine_name="test",
            phases=[
                PhaseRecord("a", elapsed_s=1.0, comm_s=0.2, comp_s=0.8, words_moved=10, barrier_s=0.1),
                PhaseRecord("a", elapsed_s=2.0, comm_s=0.5, comp_s=1.5, words_moved=20, barrier_s=0.1),
                PhaseRecord("b", elapsed_s=3.0, comm_s=1.0, comp_s=2.0, words_moved=30, barrier_s=0.1),
            ],
        )

    def test_elapsed_includes_barriers(self):
        assert self._report().elapsed_s == pytest.approx(6.3)

    def test_component_sums(self):
        rep = self._report()
        assert rep.comm_s == pytest.approx(1.7)
        assert rep.comp_s == pytest.approx(4.3)
        assert rep.barrier_total_s == pytest.approx(0.3)
        assert rep.words_moved == 60

    def test_phases_matching_and_time_in(self):
        rep = self._report()
        assert len(rep.phases_matching("a")) == 2
        assert rep.time_in("a") == pytest.approx(3.2)

    def test_breakdown_merges_same_names(self):
        bd = self._report().breakdown()
        assert bd["a"] == pytest.approx(3.2)
        assert bd["b"] == pytest.approx(3.1)

    def test_summary_mentions_everything(self):
        text = self._report().summary()
        assert "test" in text and "a" in text and "b" in text
        assert "60 words moved" in text


class TestCostParams:
    def test_defaults_positive(self):
        for name, value in DEFAULT_COSTS.__dict__.items():
            assert value > 0, name

    def test_with_override(self):
        custom = DEFAULT_COSTS.with_(label_per_pixel_binary=99.0)
        assert custom.label_per_pixel_binary == 99.0
        assert DEFAULT_COSTS.label_per_pixel_binary == 60.0

    def test_label_per_pixel_dispatch(self):
        assert DEFAULT_COSTS.label_per_pixel(False) == DEFAULT_COSTS.label_per_pixel_binary
        assert DEFAULT_COSTS.label_per_pixel(True) == DEFAULT_COSTS.label_per_pixel_grey

    def test_binary_search_ops(self):
        assert DEFAULT_COSTS.binary_search_ops(0, 100) == 0.0
        assert DEFAULT_COSTS.binary_search_ops(10, 0) == 0.0
        ops_small = DEFAULT_COSTS.binary_search_ops(10, 7)
        ops_large = DEFAULT_COSTS.binary_search_ops(10, 1000)
        assert ops_large > ops_small > 0

    def test_search_ops_log_scaling(self):
        # log2(1023+1) = 10 steps
        ops = DEFAULT_COSTS.binary_search_ops(1, 1023)
        assert ops == pytest.approx(DEFAULT_COSTS.update_search_per_step * 10)

    def test_custom_costs_flow_into_simulation(self):
        from repro.core.histogram import parallel_histogram
        from repro.images import random_greyscale
        from repro.machines import CM5

        img = random_greyscale(64, 16, seed=1)
        cheap = parallel_histogram(img, 16, 4, CM5).elapsed_s
        pricey = parallel_histogram(
            img, 16, 4, CM5, costs=CostParams(hist_tally_per_pixel=20.0)
        ).elapsed_s
        assert pricey > cheap * 3

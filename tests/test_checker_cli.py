"""CLI coverage for `repro check`: exit codes, selection, output
formats (JSON + SARIF 2.1.0 keys), and the baseline workflow."""

import json
import textwrap

import pytest

from repro.checker.emitters import SARIF_SCHEMA_URI
from repro.cli import main as cli_main

BAD_SOURCE = textwrap.dedent(
    """
    import asyncio

    async def fetch(path):
        reader, writer = await asyncio.open_unix_connection(path)
        return await reader.readline()

    def parse(payload):
        raise ValueError(payload)
    """
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "service_shim.py"
    path.write_text(BAD_SOURCE)
    return path


class TestExitCodesAndSelection:
    def test_errors_exit_nonzero(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ASYNC102" in out
        assert "ERR302" in out

    def test_select_family_filters(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file), "--select", "ERR"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERR302" in out
        assert "ASYNC102" not in out

    def test_ignore_family(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file), "--ignore", "ERR,ASYNC"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_ignore_single_rule(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file), "--ignore", "ASYNC102"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ASYNC102" not in out
        assert "ERR302" in out

    def test_unknown_family_errors(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file), "--select", "BOGUS"])
        assert rc == 2
        assert "unknown rule or family" in capsys.readouterr().err

    def test_list_rules_covers_new_families(self, capsys):
        rc = cli_main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for probe in ("SPMD001", "ASYNC102", "RES201", "ERR302", "COST400"):
            assert probe in out


class TestOutputFormats:
    def test_json_payload(self, bad_file, tmp_path, capsys):
        out_file = tmp_path / "findings.json"
        rc = cli_main(
            ["check", str(bad_file), "--format", "json", "-o", str(out_file)]
        )
        assert rc == 1  # writing a report does not mask the errors
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro-checker-findings/v1"
        assert payload["summary"]["errors"] == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"ASYNC102", "ERR302"}
        for finding in payload["findings"]:
            assert finding["line"] > 0
            assert finding["severity"] == "error"

    def test_json_to_stdout(self, bad_file, capsys):
        rc = cli_main(["check", str(bad_file), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["summary"]["errors"] == 2

    def test_sarif_keys(self, bad_file, tmp_path):
        out_file = tmp_path / "findings.sarif"
        rc = cli_main(
            ["check", str(bad_file), "--format", "sarif", "-o", str(out_file)]
        )
        assert rc == 1
        doc = json.loads(out_file.read_text())
        # The 2.1.0 schema keys GitHub code scanning requires:
        assert doc["version"] == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-check"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in ("error", "warning")
        assert run["results"], "findings must appear as results"
        for res in run["results"]:
            assert res["ruleId"] in rule_ids
            assert driver["rules"][res["ruleIndex"]]["id"] == res["ruleId"]
            assert res["level"] in ("error", "warning")
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("service_shim.py")
            assert loc["region"]["startLine"] > 0
            assert loc["region"]["startColumn"] >= 1

    def test_sarif_clean_run_is_valid(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def ok():\n    return 1\n")
        out_file = tmp_path / "clean.sarif"
        rc = cli_main(["check", str(clean), "--format", "sarif", "-o", str(out_file)])
        assert rc == 0
        doc = json.loads(out_file.read_text())
        assert doc["runs"][0]["results"] == []


class TestBaselineWorkflow:
    def test_update_then_suppress(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = cli_main(
            ["check", str(bad_file), "--baseline", str(baseline), "--update-baseline"]
        )
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()

        rc = cli_main(["check", str(bad_file), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0  # everything grandfathered
        assert "2 baselined" in out

    def test_new_finding_fails_against_baseline(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cli_main(
            ["check", str(bad_file), "--baseline", str(baseline), "--update-baseline"]
        )
        capsys.readouterr()
        bad_file.write_text(
            BAD_SOURCE + "\ndef encode(payload):\n    raise TypeError(payload)\n"
        )
        rc = cli_main(["check", str(bad_file), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 1  # the new raise is NOT covered
        assert out.count("ERR302") == 1

    def test_fixed_finding_reports_stale(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cli_main(
            ["check", str(bad_file), "--baseline", str(baseline), "--update-baseline"]
        )
        capsys.readouterr()
        bad_file.write_text("def ok():\n    return 1\n")
        rc = cli_main(["check", str(bad_file), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stale allowance" in out

    def test_no_baseline_flag_disables(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cli_main(
            ["check", str(bad_file), "--baseline", str(baseline), "--update-baseline"]
        )
        capsys.readouterr()
        rc = cli_main(["check", str(bad_file), "--no-baseline"])
        assert rc == 1

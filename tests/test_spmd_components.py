"""Tests: the SPMD connected-components program vs the phase version."""

import numpy as np
import pytest

from repro.baselines import sequential_components
from repro.core.connected_components import parallel_components
from repro.core.spmd_components import spmd_components
from repro.images import binary_test_image, checkerboard, darpa_like
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError
from tests.conftest import oracle_binary_labels, oracle_grey_labels


class TestCorrectness:
    @pytest.mark.parametrize("idx", [1, 5, 8, 9])
    @pytest.mark.parametrize("p", [1, 2, 4, 16])
    def test_catalogue(self, idx, p):
        img = binary_test_image(idx, 64)
        labels, _ = spmd_components(img, p, IDEAL)
        assert np.array_equal(labels, sequential_components(img))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_vs_oracle(self, connectivity, small_binary):
        labels, _ = spmd_components(small_binary, 16, IDEAL, connectivity=connectivity)
        assert np.array_equal(labels, oracle_binary_labels(small_binary, connectivity))

    def test_grey(self, small_grey):
        labels, _ = spmd_components(small_grey, 8, IDEAL, grey=True)
        assert np.array_equal(labels, oracle_grey_labels(small_grey, 8))

    def test_non_square_grid(self):
        img = binary_test_image(9, 64)
        labels, _ = spmd_components(img, 32, IDEAL)
        assert np.array_equal(labels, sequential_components(img))

    def test_checkerboard_grey(self):
        img = checkerboard(32, 1, levels=(1, 2))
        labels, _ = spmd_components(img, 16, IDEAL, grey=True)
        assert np.array_equal(labels, sequential_components(img, grey=True))

    def test_unknown_engine(self, small_binary):
        with pytest.raises(ValidationError):
            spmd_components(small_binary, 4, engine="nope")


class TestAgainstPhaseImplementation:
    def test_same_labels(self):
        img = darpa_like(128, 32, seed=2)
        phase = parallel_components(img, 16, CM5, grey=True)
        labels, _ = spmd_components(img, 16, CM5, grey=True)
        assert np.array_equal(labels, phase.labels)

    def test_comm_costs_close(self):
        """Same access pattern => communication within a few percent
        (the SPMD version only adds barrier supersteps)."""
        img = darpa_like(128, 32, seed=2)
        phase = parallel_components(img, 16, CM5, grey=True)
        _, machine = spmd_components(img, 16, CM5, grey=True)
        spmd_comm = machine.report().comm_s
        assert spmd_comm == pytest.approx(phase.report.comm_s, rel=0.10)

    def test_elapsed_close(self):
        img = binary_test_image(9, 128)
        phase = parallel_components(img, 16, CM5)
        _, machine = spmd_components(img, 16, CM5)
        assert machine.report().elapsed_s == pytest.approx(phase.elapsed_s, rel=0.15)

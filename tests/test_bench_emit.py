"""Pins the structured benchmark-artifact format (benchmarks/emit.py).

The checked-in ``benchmarks/results/runtime_backends.json`` is the
reference example of the ``repro-bench/v1`` schema; this test keeps the
emitter, the validator, and that example mutually consistent so the
JSON trajectory stays machine-readable across PRs.
"""

import json
import pathlib

import pytest

from benchmarks.emit import (
    REQUIRED_KEYS,
    SCHEMA,
    emit_json,
    host_fingerprint,
    validate_bench_json,
)

EXAMPLE = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "results"
    / "runtime_backends.json"
)


class TestCheckedInExample:
    def test_example_exists_and_is_strict_json(self):
        obj = json.loads(EXAMPLE.read_text())
        assert obj["schema"] == SCHEMA

    def test_example_validates(self):
        validate_bench_json(json.loads(EXAMPLE.read_text()))

    def test_example_field_set(self):
        obj = json.loads(EXAMPLE.read_text())
        for key in REQUIRED_KEYS:
            assert key in obj
        assert obj["name"] == "runtime_backends"
        assert obj["units"] == "seconds"
        assert {"platform", "python", "cpus"} <= set(obj["host"])
        assert all("name" in row and "wall_s" in row for row in obj["rows"])


class TestEmitJson:
    def test_writes_valid_artifact(self, tmp_path, monkeypatch):
        import benchmarks.emit as emit_mod

        monkeypatch.setattr(emit_mod, "RESULTS_DIR", tmp_path)
        path = emit_json(
            "demo",
            params={"n": 8},
            series=[{"label": "p=2", "x": [1, 2], "y": [0.1, 0.2]}],
        )
        assert path == tmp_path / "demo.json"
        validate_bench_json(json.loads(path.read_text()))

    def test_requires_payload(self):
        with pytest.raises(ValueError, match="series' or 'rows"):
            emit_json("empty")

    def test_host_fingerprint_fields(self):
        host = host_fingerprint()
        assert host["cpus"] >= 1
        assert host["python"]


class TestValidator:
    def _minimal(self):
        return {
            "schema": SCHEMA,
            "name": "x",
            "units": "seconds",
            "host": host_fingerprint(),
            "params": {},
            "rows": [{"name": "a", "wall_s": 1.0}],
        }

    def test_accepts_minimal(self):
        validate_bench_json(self._minimal())

    def test_rejects_missing_key(self):
        obj = self._minimal()
        del obj["host"]
        with pytest.raises(ValueError, match="host"):
            validate_bench_json(obj)

    def test_rejects_wrong_schema(self):
        obj = self._minimal()
        obj["schema"] = "other/v9"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_json(obj)

    def test_rejects_ragged_series(self):
        obj = self._minimal()
        del obj["rows"]
        obj["series"] = [{"label": "p=2", "x": [1, 2], "y": [0.1]}]
        with pytest.raises(ValueError, match="lengths differ"):
            validate_bench_json(obj)

    def test_rejects_non_json_values(self):
        obj = self._minimal()
        obj["rows"][0]["wall_s"] = float("nan")
        with pytest.raises(ValueError):
            validate_bench_json(obj)

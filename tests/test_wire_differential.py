"""Cross-process differential harness: wire x backend x engine matrix.

The zero-copy plane's acceptance test.  A real ``repro serve`` process
is spawned (its own interpreter, its own pool -- descriptors must cross
genuine process boundaries), and every (kernel backend x wire mode)
combination is driven against it and asserted **bit-identical** to the
serial python-backend reference computed in this process.  The serial
legs of the engine axis are covered directly: every available backend's
serial answer must equal the reference too.

The chaos legs re-run the matrix under an installed fault plan --
worker crashes, injected transient exceptions, and ``svc:shmem``
segment corruption -- and require byte-identical answers *and* an empty
``/dev/shm`` afterwards: recovery may cost retries, never correctness
or segments.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import kernels
from repro.faults.leakcheck import assert_no_shm_leak, shm_segments
from repro.images import darpa_like
from repro.service import (
    WireClient,
    canonical_params,
    compute,
    request_over_socket,
)

WIRES = ("ndjson", "shmem")

#: The compute matrix: every service op, both connectivities, grey mode.
CASES = (
    ("histogram", {"k": 256}),
    ("components", {"connectivity": 4}),
    ("components", {"connectivity": 8}),
    ("components", {"connectivity": 8, "grey": True}),
    ("equalize", {"k": 256}),
)


def _image() -> np.ndarray:
    return darpa_like(48, 256)


def _reference(image: np.ndarray) -> list[np.ndarray]:
    """Serial python-backend answers -- the bit-identity anchor."""
    return [
        compute(op, image, canonical_params(op, image, dict(params)), "python")
        for op, params in CASES
    ]


@contextlib.contextmanager
def serve_subprocess(tmp_path, *, kernel: str = "numpy", workers: int = 2,
                     plan: dict | None = None, timeout_s: float | None = None):
    """A live ``repro serve`` in its own interpreter; yields the socket."""
    sock = str(tmp_path / "svc.sock")
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--socket", sock, "--workers", str(workers), "--kernel", kernel,
    ]
    if timeout_s is not None:
        # An injected crash is only *detected* by the task deadline
        # expiring; the default deadline would stretch chaos runs into
        # minutes for no extra coverage.
        cmd += ["--timeout", str(timeout_s)]
    if plan is not None:
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        cmd += ["--fault-plan", str(plan_path)]
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not os.path.exists(sock):
            if proc.poll() is not None:
                raise AssertionError(
                    f"server exited {proc.returncode} before serving:\n"
                    f"{proc.communicate()[0]}"
                )
            if time.monotonic() > deadline:
                raise AssertionError("server socket never appeared")
            time.sleep(0.05)
        yield sock
    finally:
        if proc.poll() is None:
            with contextlib.suppress(Exception):
                asyncio.run(request_over_socket(sock, {"op": "shutdown"}))
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


async def _drive_matrix(sock: str, image: np.ndarray,
                        cases=CASES) -> dict:
    """Every (wire, case) round trip over one connection per wire."""
    out = {}
    for wire in WIRES:
        async with WireClient(sock, wire=wire) as client:
            for i, (op, params) in enumerate(cases):
                out[(wire, i)] = await client.compute(op, image, **dict(params))
    return out


def _assert_matrix(results: dict, reference: list, label: str) -> None:
    for (wire, i), arr in sorted(results.items()):
        op, params = CASES[i]
        ref = reference[i]
        assert arr.dtype == ref.dtype, (
            f"{label}: {op} {params} via {wire}: dtype {arr.dtype} != {ref.dtype}"
        )
        assert np.array_equal(arr, ref), (
            f"{label}: {op} {params} via {wire}: result diverged"
        )


@pytest.mark.parametrize("backend", kernels.available_backends())
def test_serial_engine_matches_reference(backend):
    """The serial engine legs: every backend, bit-identical, no service."""
    image = _image()
    reference = _reference(image)
    for i, (op, params) in enumerate(CASES):
        out = compute(op, image, canonical_params(op, image, dict(params)), backend)
        assert out.dtype == reference[i].dtype
        assert np.array_equal(out, reference[i]), f"{op} {params} on {backend}"


@pytest.mark.parametrize("backend", kernels.available_backends())
def test_process_engine_full_wire_matrix(tmp_path, backend):
    """Both wires against a real out-of-process server, per backend."""
    image = _image()
    reference = _reference(image)
    with assert_no_shm_leak(grace_s=2.0):
        with serve_subprocess(tmp_path, kernel=backend) as sock:
            results = asyncio.run(_drive_matrix(sock, image))
    _assert_matrix(results, reference, f"process/{backend}")


def test_chaos_crash_and_exception_recover_bit_identically(tmp_path):
    """Every request's first attempt dies; retries must restore the matrix.

    Two cases suffice here (one per op family): each crash costs a full
    task deadline to detect, so this leg trades breadth for wall clock
    -- the full matrix already ran fault-free above.
    """
    image = _image()
    cases = CASES[:2]
    reference = _reference(image)[: len(cases)]
    plan = {
        "schema": "repro-faults/v1",
        "seed": 11,
        "faults": [
            {"site": "svc:exec", "kind": "crash", "times": 1},
            {"site": "svc:exec", "kind": "exception", "times": 1},
        ],
    }
    with assert_no_shm_leak(grace_s=2.0):
        with serve_subprocess(tmp_path, plan=plan, timeout_s=2.0) as sock:
            results = asyncio.run(_drive_matrix(sock, image, cases))
    _assert_matrix(results, reference, "chaos/crash+exception")


def test_chaos_shmem_corruption_detected_and_recovered(tmp_path):
    """``svc:shmem`` corrupt: the digest check must catch the tampered
    copy (CorruptPayloadError), the retry must heal it, and the answers
    must still be bit-identical on both wires."""
    image = _image()
    reference = _reference(image)
    plan = {
        "schema": "repro-faults/v1",
        "seed": 3,
        "faults": [{"site": "svc:shmem", "kind": "corrupt", "times": 1}],
    }
    with assert_no_shm_leak(grace_s=2.0):
        with serve_subprocess(tmp_path, plan=plan) as sock:
            results = asyncio.run(_drive_matrix(sock, image))
    _assert_matrix(results, reference, "chaos/shmem-corrupt")


def test_no_segments_survive_the_whole_module(tmp_path):
    """Belt and braces: one more full run, then an explicit /dev/shm scan."""
    image = _image()
    before = shm_segments()
    with serve_subprocess(tmp_path) as sock:
        results = asyncio.run(_drive_matrix(sock, image))
    _assert_matrix(results, _reference(image), "final-scan")
    deadline = time.monotonic() + 3.0
    while shm_segments() - before and time.monotonic() < deadline:
        time.sleep(0.05)
    assert shm_segments() - before == set(), "segments leaked past shutdown"

"""Tests for the BDM matrix transpose (Algorithm 1) and gather."""

import numpy as np
import pytest

from repro.bdm import GlobalArray, Machine, gather_to, transpose, transpose_cost_model
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError


def reference_transpose_layout(mat: np.ndarray, p: int) -> np.ndarray:
    """Expected block layout: proc t's slot r holds A[r, t*q/p:(t+1)*q/p]."""
    q = mat.shape[1]
    size = q // p
    out = np.zeros((p, q), dtype=mat.dtype)
    for t in range(p):
        for r in range(p):
            out[t, r * size : (r + 1) * size] = mat[r, t * size : (t + 1) * size]
    return out


class TestBlockedTranspose:
    @pytest.mark.parametrize("p,q", [(2, 2), (2, 8), (4, 4), (4, 16), (8, 64), (16, 16)])
    def test_correct_layout(self, p, q):
        m = Machine(p, IDEAL)
        A = GlobalArray(m, q)
        mat = np.arange(p * q).reshape(p, q)
        A.scatter_rows(mat)
        AT = transpose(m, A)
        assert np.array_equal(AT.gather_rows(), reference_transpose_layout(mat, p))

    def test_involution(self):
        """Transposing twice restores the original distribution."""
        p, q = 4, 16
        m = Machine(p, IDEAL)
        A = GlobalArray(m, q)
        mat = np.arange(p * q).reshape(p, q)
        A.scatter_rows(mat)
        ATT = transpose(m, transpose(m, A))
        assert np.array_equal(ATT.gather_rows(), mat)

    def test_requires_divisibility(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, 6)
        with pytest.raises(ValidationError):
            transpose(m, A)

    def test_requires_equal_blocks(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, [4, 4, 4, 8])
        with pytest.raises(ValidationError):
            transpose(m, A)


class TestTruncatedTranspose:
    def test_q_less_than_p(self):
        """Row i of the small matrix lands whole on processor i."""
        p, q = 8, 4
        m = Machine(p, IDEAL)
        A = GlobalArray(m, q)
        mat = np.arange(p * q).reshape(p, q)  # proc i holds column i as a row
        A.scatter_rows(mat)
        AT = transpose(m, A)
        for i in range(p):
            if i < q:
                assert np.array_equal(AT.local(i), mat[:, i])
            else:
                assert AT.block_length(i) == 0


class TestTransposeCost:
    def test_matches_equation_one(self):
        """Simulated comm time equals tau + (q - q/p) word-times exactly."""
        p, q = 8, 64
        m = Machine(p, CM5)
        A = GlobalArray(m, q)
        transpose(m, A)
        ph = m.report().phases[0]
        model = transpose_cost_model(CM5, q, p)
        assert ph.comm_s == pytest.approx(model["comm_s"])
        assert ph.comp_s == pytest.approx(model["comp_s"])

    def test_comm_independent_of_machine_compute(self):
        p, q = 4, 32
        slow = CM5.with_(op_ns=10 * CM5.op_ns)
        m1, m2 = Machine(p, CM5), Machine(p, slow)
        for m in (m1, m2):
            A = GlobalArray(m, q)
            transpose(m, A)
        assert m1.report().phases[0].comm_s == pytest.approx(m2.report().phases[0].comm_s)

    def test_cost_model_divisibility(self):
        with pytest.raises(ValidationError):
            transpose_cost_model(CM5, 6, 4)


class TestGather:
    def test_collects_in_processor_order(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, 3)
        mat = np.arange(12).reshape(4, 3)
        A.scatter_rows(mat)
        assert np.array_equal(gather_to(m, A, 0), mat.ravel())

    def test_nonzero_root(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, 2)
        mat = np.arange(8).reshape(4, 2)
        A.scatter_rows(mat)
        assert np.array_equal(gather_to(m, A, 2), mat.ravel())

    def test_unequal_blocks(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, [2, 0, 1, 3])
        for pid, vals in enumerate(([1, 2], [], [3], [4, 5, 6])):
            if vals:
                A.write(m.procs[pid], pid, vals)
        assert np.array_equal(gather_to(m, A), [1, 2, 3, 4, 5, 6])

    def test_root_charged_for_remote_words(self):
        m = Machine(4, CM5)
        A = GlobalArray(m, 8)
        gather_to(m, A, 0)
        # Root reads 3 remote blocks of 8 (its own is free), pipelined.
        expected = CM5.latency_s + 24 * CM5.word_time_s()
        assert m.procs[0].cost.comm_s == pytest.approx(expected)


class TestTransposeProperties:
    """Hypothesis property tests over random matrices and machine sizes."""

    def test_property_transpose_preserves_multiset(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            st.sampled_from([2, 4, 8]),
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=0, max_value=10_000),
        )
        def inner(p, mult, seed):
            rng = np.random.default_rng(seed)
            q = p * mult
            mat = rng.integers(0, 1000, (p, q))
            m = Machine(p, IDEAL)
            A = GlobalArray(m, q)
            A.scatter_rows(mat)
            AT = transpose(m, A).gather_rows()
            assert np.array_equal(np.sort(AT.ravel()), np.sort(mat.ravel()))

        inner()

    def test_property_double_transpose_identity(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            st.sampled_from([2, 4]),
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=0, max_value=10_000),
        )
        def inner(p, mult, seed):
            rng = np.random.default_rng(seed)
            q = p * mult
            mat = rng.integers(0, 100, (p, q))
            m = Machine(p, IDEAL)
            A = GlobalArray(m, q)
            A.scatter_rows(mat)
            back = transpose(m, transpose(m, A)).gather_rows()
            assert np.array_equal(back, mat)

        inner()

    def test_property_block_mapping_exact(self):
        """AT[t][r*s:(r+1)*s] == A[r][t*s:(t+1)*s] for every (t, r)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=20, deadline=None)
        @given(st.sampled_from([2, 4, 8]), st.integers(min_value=0, max_value=10_000))
        def inner(p, seed):
            rng = np.random.default_rng(seed)
            q = p * 3
            size = q // p
            mat = rng.integers(0, 9, (p, q))
            m = Machine(p, IDEAL)
            A = GlobalArray(m, q)
            A.scatter_rows(mat)
            AT = transpose(m, A).gather_rows()
            for t in range(p):
                for r in range(p):
                    assert np.array_equal(
                        AT[t, r * size : (r + 1) * size],
                        mat[r, t * size : (t + 1) * size],
                    )

        inner()

"""Tests for PNM (PBM/PGM) image I/O."""

import numpy as np
import pytest

from repro.images import binary_test_image, darpa_like
from repro.images.io import pnm_info, read_pnm, write_pbm, write_pgm
from repro.utils.errors import ValidationError


class TestRoundtrips:
    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm(self, tmp_path, binary):
        img = darpa_like(32, 16, seed=1)
        path = tmp_path / "img.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pbm(self, tmp_path, binary):
        img = binary_test_image(9, 33)  # odd width exercises bit packing
        path = tmp_path / "img.pbm"
        write_pbm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm_full_8bit_range(self, tmp_path, binary):
        img = np.arange(256, dtype=np.int32).reshape(16, 16)
        path = tmp_path / "full.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm_all_zero(self, tmp_path, binary):
        # maxval floors at 1 even for an all-background image.
        img = np.zeros((4, 4), dtype=np.int32)
        path = tmp_path / "zero.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    def test_rectangular(self, tmp_path):
        img = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "rect.pgm"
        write_pgm(path, img, binary=False)
        got = read_pnm(path)
        assert got.shape == (3, 4)
        assert np.array_equal(got, img)


class TestParsing:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n2 2 # trailing\n255\n1 2\n3 4\n")
        assert np.array_equal(read_pnm(path), [[1, 2], [3, 4]])

    def test_p1_digits_run_together(self, tmp_path):
        path = tmp_path / "d.pbm"
        path.write_text("P1\n4 2\n0110\n1001\n")
        assert np.array_equal(read_pnm(path), [[0, 1, 1, 0], [1, 0, 0, 1]])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P2\n4")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_pixels(self, tmp_path):
        path = tmp_path / "t2.pgm"
        path.write_text("P2\n3 3\n255\n1 2 3\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_bad_dimensions(self, tmp_path):
        path = tmp_path / "z.pgm"
        path.write_text("P2\n0 3\n255\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    @pytest.mark.parametrize("maxval", [256, 65535, 70000])
    def test_maxval_too_deep(self, tmp_path, maxval):
        path = tmp_path / "deep.pgm"
        path.write_text(f"P2\n2 2\n{maxval}\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)

    @pytest.mark.parametrize("maxval", [0, -1])
    def test_maxval_non_positive(self, tmp_path, maxval):
        path = tmp_path / "np.pgm"
        path.write_text(f"P2\n2 2\n{maxval}\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)

    def test_maxval_not_an_integer(self, tmp_path):
        path = tmp_path / "nan.pgm"
        path.write_text("P2\n2 2\nxyz\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)


class TestWriterValidation:
    def test_pbm_rejects_grey(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pbm(tmp_path / "x.pbm", np.full((2, 2), 5, dtype=np.int32))

    @pytest.mark.parametrize("value", [256, 70000])
    def test_pgm_rejects_too_deep(self, tmp_path, value):
        # The writer and reader agree on the 8-bit boundary: anything the
        # writer refuses here, the reader would refuse too.
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), value, dtype=np.int64))

    def test_pgm_rejects_negative(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), -1, dtype=np.int32))


class TestPnmInfo:
    """Header-only probe: never touches pixel data."""

    def test_p5(self, tmp_path):
        img = darpa_like(32, 16, seed=2)
        path = tmp_path / "a.pgm"
        write_pgm(path, img, binary=True)
        info = pnm_info(path)
        assert (info.magic, info.shape) == ("P5", (32, 32))
        assert info.binary
        assert info.payload_bytes == 32 * 32
        assert info.maxval == int(img.max())

    def test_p2(self, tmp_path):
        path = tmp_path / "a.pgm"
        write_pgm(path, np.arange(12).reshape(3, 4), binary=False)
        info = pnm_info(path)
        assert (info.magic, info.shape) == ("P2", (3, 4))
        assert not info.binary
        assert info.payload_bytes is None

    def test_p4_row_padding(self, tmp_path):
        img = binary_test_image(9, 33)
        path = tmp_path / "a.pbm"
        write_pbm(path, img, binary=True)
        info = pnm_info(path)
        assert (info.magic, info.shape) == ("P4", (33, 33))
        assert info.payload_bytes == 5 * 33  # ceil(33/8) bytes per row

    def test_p1(self, tmp_path):
        path = tmp_path / "a.pbm"
        write_pbm(path, np.eye(4, dtype=np.int32), binary=False)
        info = pnm_info(path)
        assert (info.magic, info.shape, info.maxval) == ("P1", (4, 4), 1)

    def test_offset_points_at_payload(self, tmp_path):
        img = darpa_like(16, 16, seed=0)
        path = tmp_path / "a.pgm"
        write_pgm(path, img, binary=True)
        info = pnm_info(path)
        raw = path.read_bytes()[info.data_offset :]
        assert np.array_equal(
            np.frombuffer(raw, dtype=np.uint8).reshape(16, 16), img
        )

    def test_reads_header_only(self, tmp_path):
        # A header followed by a payload-sized hole: the probe must not
        # care that the pixels are missing.
        path = tmp_path / "hollow.pgm"
        path.write_bytes(b"P5\n100 100\n255\n")
        info = pnm_info(path)
        assert info.shape == (100, 100)


class TestPayloadValidation:
    """read_pnm rejects files whose payload size disagrees with the header."""

    def _p5(self, tmp_path, payload: bytes) -> str:
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P5\n4 4\n255\n" + payload)
        return str(path)

    def test_p5_truncated(self, tmp_path):
        with pytest.raises(ValidationError, match="truncated P5 payload"):
            read_pnm(self._p5(tmp_path, b"\x01" * 15))

    def test_p5_oversized(self, tmp_path):
        with pytest.raises(ValidationError, match="oversized P5 payload"):
            read_pnm(self._p5(tmp_path, b"\x01" * 17))

    def test_p5_exact_passes(self, tmp_path):
        img = read_pnm(self._p5(tmp_path, bytes(range(16))))
        assert np.array_equal(img.ravel(), np.arange(16))

    def test_p4_truncated(self, tmp_path):
        path = tmp_path / "bad.pbm"
        path.write_bytes(b"P4\n16 4\n" + b"\xff" * 7)  # needs 8 bytes
        with pytest.raises(ValidationError, match="truncated P4 payload"):
            read_pnm(path)

    def test_p4_oversized(self, tmp_path):
        path = tmp_path / "bad.pbm"
        path.write_bytes(b"P4\n16 4\n" + b"\xff" * 9)
        with pytest.raises(ValidationError, match="oversized P4 payload"):
            read_pnm(path)

    def test_p2_truncated(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_text("P2\n4 4\n255\n" + " ".join(["7"] * 15) + "\n")
        with pytest.raises(ValidationError, match="truncated P2 payload"):
            read_pnm(path)

    def test_p2_oversized(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_text("P2\n4 4\n255\n" + " ".join(["7"] * 17) + "\n")
        with pytest.raises(ValidationError, match="oversized P2 payload"):
            read_pnm(path)

    def test_p1_truncated(self, tmp_path):
        path = tmp_path / "bad.pbm"
        path.write_text("P1\n4 4\n" + "0110" * 3 + "\n")
        with pytest.raises(ValidationError, match="truncated P1 payload"):
            read_pnm(path)

    def test_p1_oversized(self, tmp_path):
        path = tmp_path / "bad.pbm"
        path.write_text("P1\n4 4\n" + "0110" * 5 + "\n")
        with pytest.raises(ValidationError, match="oversized P1 payload"):
            read_pnm(path)


class TestMmapIngestion:
    def test_parity_with_regular_read(self, tmp_path):
        img = darpa_like(48, 256, seed=4)
        path = tmp_path / "a.pgm"
        write_pgm(path, img, binary=True)
        mapped = read_pnm(path, mmap=True)
        assert isinstance(mapped, np.memmap)
        assert mapped.dtype == np.uint8
        assert np.array_equal(np.asarray(mapped, dtype=np.int32), read_pnm(path))

    def test_read_only(self, tmp_path):
        path = tmp_path / "a.pgm"
        write_pgm(path, np.ones((4, 4), dtype=np.int32), binary=True)
        mapped = read_pnm(path, mmap=True)
        with pytest.raises((ValueError, TypeError)):
            mapped[0, 0] = 3

    def test_rejects_ascii_pgm(self, tmp_path):
        path = tmp_path / "a.pgm"
        write_pgm(path, np.ones((4, 4), dtype=np.int32), binary=False)
        with pytest.raises(ValidationError, match="requires a binary PGM"):
            read_pnm(path, mmap=True)

    def test_rejects_pbm(self, tmp_path):
        path = tmp_path / "a.pbm"
        write_pbm(path, np.eye(4, dtype=np.int32), binary=True)
        with pytest.raises(ValidationError, match="requires a binary PGM"):
            read_pnm(path, mmap=True)

    def test_rejects_truncated_payload(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P5\n8 8\n255\n" + b"\x01" * 63)
        with pytest.raises(ValidationError, match="truncated P5 payload"):
            read_pnm(path, mmap=True)

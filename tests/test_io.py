"""Tests for PNM (PBM/PGM) image I/O."""

import numpy as np
import pytest

from repro.images import binary_test_image, darpa_like
from repro.images.io import read_pnm, write_pbm, write_pgm
from repro.utils.errors import ValidationError


class TestRoundtrips:
    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm(self, tmp_path, binary):
        img = darpa_like(32, 16, seed=1)
        path = tmp_path / "img.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pbm(self, tmp_path, binary):
        img = binary_test_image(9, 33)  # odd width exercises bit packing
        path = tmp_path / "img.pbm"
        write_pbm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm_full_8bit_range(self, tmp_path, binary):
        img = np.arange(256, dtype=np.int32).reshape(16, 16)
        path = tmp_path / "full.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm_all_zero(self, tmp_path, binary):
        # maxval floors at 1 even for an all-background image.
        img = np.zeros((4, 4), dtype=np.int32)
        path = tmp_path / "zero.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    def test_rectangular(self, tmp_path):
        img = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "rect.pgm"
        write_pgm(path, img, binary=False)
        got = read_pnm(path)
        assert got.shape == (3, 4)
        assert np.array_equal(got, img)


class TestParsing:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n2 2 # trailing\n255\n1 2\n3 4\n")
        assert np.array_equal(read_pnm(path), [[1, 2], [3, 4]])

    def test_p1_digits_run_together(self, tmp_path):
        path = tmp_path / "d.pbm"
        path.write_text("P1\n4 2\n0110\n1001\n")
        assert np.array_equal(read_pnm(path), [[0, 1, 1, 0], [1, 0, 0, 1]])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P2\n4")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_pixels(self, tmp_path):
        path = tmp_path / "t2.pgm"
        path.write_text("P2\n3 3\n255\n1 2 3\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_bad_dimensions(self, tmp_path):
        path = tmp_path / "z.pgm"
        path.write_text("P2\n0 3\n255\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    @pytest.mark.parametrize("maxval", [256, 65535, 70000])
    def test_maxval_too_deep(self, tmp_path, maxval):
        path = tmp_path / "deep.pgm"
        path.write_text(f"P2\n2 2\n{maxval}\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)

    @pytest.mark.parametrize("maxval", [0, -1])
    def test_maxval_non_positive(self, tmp_path, maxval):
        path = tmp_path / "np.pgm"
        path.write_text(f"P2\n2 2\n{maxval}\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)

    def test_maxval_not_an_integer(self, tmp_path):
        path = tmp_path / "nan.pgm"
        path.write_text("P2\n2 2\nxyz\n1 2\n3 4\n")
        with pytest.raises(ValidationError, match="maxval"):
            read_pnm(path)


class TestWriterValidation:
    def test_pbm_rejects_grey(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pbm(tmp_path / "x.pbm", np.full((2, 2), 5, dtype=np.int32))

    @pytest.mark.parametrize("value", [256, 70000])
    def test_pgm_rejects_too_deep(self, tmp_path, value):
        # The writer and reader agree on the 8-bit boundary: anything the
        # writer refuses here, the reader would refuse too.
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), value, dtype=np.int64))

    def test_pgm_rejects_negative(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), -1, dtype=np.int32))

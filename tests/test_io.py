"""Tests for PNM (PBM/PGM) image I/O."""

import numpy as np
import pytest

from repro.images import binary_test_image, darpa_like
from repro.images.io import read_pnm, write_pbm, write_pgm
from repro.utils.errors import ValidationError


class TestRoundtrips:
    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm(self, tmp_path, binary):
        img = darpa_like(32, 16, seed=1)
        path = tmp_path / "img.pgm"
        write_pgm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pbm(self, tmp_path, binary):
        img = binary_test_image(9, 33)  # odd width exercises bit packing
        path = tmp_path / "img.pbm"
        write_pbm(path, img, binary=binary)
        assert np.array_equal(read_pnm(path), img)

    def test_16bit_pgm(self, tmp_path):
        img = (np.arange(64).reshape(8, 8) * 500).astype(np.int32)
        path = tmp_path / "wide.pgm"
        write_pgm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_rectangular(self, tmp_path):
        img = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "rect.pgm"
        write_pgm(path, img, binary=False)
        got = read_pnm(path)
        assert got.shape == (3, 4)
        assert np.array_equal(got, img)


class TestParsing:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_text("P2\n# a comment\n2 2 # trailing\n255\n1 2\n3 4\n")
        assert np.array_equal(read_pnm(path), [[1, 2], [3, 4]])

    def test_p1_digits_run_together(self, tmp_path):
        path = tmp_path / "d.pbm"
        path.write_text("P1\n4 2\n0110\n1001\n")
        assert np.array_equal(read_pnm(path), [[0, 1, 1, 0], [1, 0, 0, 1]])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P2\n4")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_truncated_pixels(self, tmp_path):
        path = tmp_path / "t2.pgm"
        path.write_text("P2\n3 3\n255\n1 2 3\n")
        with pytest.raises(ValidationError):
            read_pnm(path)

    def test_bad_dimensions(self, tmp_path):
        path = tmp_path / "z.pgm"
        path.write_text("P2\n0 3\n255\n")
        with pytest.raises(ValidationError):
            read_pnm(path)


class TestWriterValidation:
    def test_pbm_rejects_grey(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pbm(tmp_path / "x.pbm", np.full((2, 2), 5, dtype=np.int32))

    def test_pgm_rejects_too_deep(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), 70000, dtype=np.int64))

    def test_pgm_rejects_negative(self, tmp_path):
        with pytest.raises(ValidationError):
            write_pgm(tmp_path / "x.pgm", np.full((2, 2), -1, dtype=np.int32))

"""Tests for the static-analysis engine: the ASYNC/RES/ERR/COST rule
families, selection, inline suppression, and the baseline machinery.

One positive and one negative case per rule, plus the two regression
fixtures required by the issue: ASYNC102 and RES201 must each fire on
a reconstruction of the actual pre-fix PR 4/5 bug shapes and stay
silent on the fixed shapes now in the tree.
"""

import textwrap
from pathlib import Path

import pytest

from repro.checker.engine import (
    analyze_paths,
    analyze_source,
    apply_baseline,
    baseline_from,
    expand_selection,
    load_baseline,
    save_baseline,
)
from repro.checker.rules import RULES, format_catalog, rule_family
from repro.utils.errors import ReproError

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(diags):
    return sorted({d.rule for d in diags})


def analyze(snippet, **kw):
    return analyze_source(textwrap.dedent(snippet), "probe.py", **kw)


class TestAsync101Blocking:
    def test_time_sleep_in_async_def_flagged(self):
        diags = analyze(
            """
            import time

            async def handler():
                time.sleep(1)
            """
        )
        assert rules_of(diags) == ["ASYNC101"]

    def test_pool_map_and_run_tasks_flagged(self):
        diags = analyze(
            """
            async def dispatch(pool, supervisor, fn, payloads):
                a = pool.map(fn, payloads)
                b = run_tasks(supervisor, fn, payloads, site="x")
                return a, b
            """
        )
        assert [d.rule for d in diags] == ["ASYNC101", "ASYNC101"]

    def test_executor_dispatch_is_clean(self):
        diags = analyze(
            """
            async def dispatch(loop, pool, fn, payloads):
                return await loop.run_in_executor(None, pool.map, fn, payloads)
            """
        )
        assert diags == []

    def test_sync_function_not_flagged(self):
        diags = analyze(
            """
            import time

            def backoff():
                time.sleep(1)
            """
        )
        assert diags == []


class TestAsync102StreamLimit:
    """Regression fixture for the PR 5 bug: request_over_socket and the
    server both created streams with the 64 KiB default limit, so any
    real-image request died mid-read."""

    PRE_FIX_SHAPE = """
        import asyncio

        async def request_over_socket(path, request):
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(request)
            return await reader.readline()

        async def start(self):
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self._path
            )
        """

    FIXED_SHAPE = """
        import asyncio

        MAX_REQUEST_BYTES = 64 << 20

        async def request_over_socket(path, request):
            reader, writer = await asyncio.open_unix_connection(
                path, limit=MAX_REQUEST_BYTES
            )
            writer.write(request)
            return await reader.readline()

        async def start(self):
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self._path, limit=MAX_REQUEST_BYTES
            )
        """

    def test_fires_on_pre_fix_shape(self):
        diags = analyze(self.PRE_FIX_SHAPE)
        assert [d.rule for d in diags] == ["ASYNC102", "ASYNC102"]
        assert "limit" in diags[0].message

    def test_silent_on_fixed_shape(self):
        assert analyze(self.FIXED_SHAPE) == []

    def test_tcp_twins_flagged_only_off_asyncio(self):
        diags = analyze(
            """
            import asyncio

            async def connect(host):
                return await asyncio.open_connection(host, 80)

            class NotAStream:
                def start_server(self):
                    return 7

            def other(obj):
                return obj.start_server()
            """
        )
        assert [d.rule for d in diags] == ["ASYNC102"]

    def test_current_service_module_is_clean(self):
        src = (REPO_ROOT / "src/repro/service/server.py").read_text()
        diags = analyze_source(src, "server.py")
        assert [d.format() for d in diags if d.rule == "ASYNC102"] == []


class TestAsync103DroppedTask:
    def test_bare_create_task_flagged(self):
        diags = analyze(
            """
            import asyncio

            def kick(loop, coro):
                loop.create_task(coro)
            """
        )
        assert rules_of(diags) == ["ASYNC103"]

    def test_retained_task_clean(self):
        diags = analyze(
            """
            import asyncio

            def kick(self, coro):
                task = asyncio.ensure_future(coro)
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                return task
            """
        )
        assert diags == []


class TestAsync104AwaitUnderLock:
    def test_unbounded_await_under_lock_flagged(self):
        diags = analyze(
            """
            async def update(self, peer):
                async with self._lock:
                    await peer.push(self.state)
            """
        )
        assert rules_of(diags) == ["ASYNC104"]

    def test_wait_for_under_lock_clean(self):
        diags = analyze(
            """
            import asyncio

            async def update(self, peer):
                async with self._lock:
                    await asyncio.wait_for(peer.push(self.state), timeout=5)
            """
        )
        assert diags == []

    def test_non_lock_context_clean(self):
        diags = analyze(
            """
            async def fetch(self, client):
                async with client.session() as s:
                    return await s.get("/x")
            """
        )
        assert diags == []


class TestRes200UnreleasedPool:
    def test_unguarded_pool_flagged(self):
        diags = analyze(
            """
            def run(ctx, fn, payloads):
                pool = ctx.Pool(4)
                return pool.map(fn, payloads)
            """
        )
        assert rules_of(diags) == ["RES200"]

    def test_with_block_clean(self):
        diags = analyze(
            """
            def run(ctx, fn, payloads):
                with ctx.Pool(4) as pool:
                    return pool.map(fn, payloads)
            """
        )
        assert diags == []

    def test_self_attribute_is_object_lifetime(self):
        diags = analyze(
            """
            class Executor:
                def start(self, workers):
                    self._supervisor = PoolSupervisor(workers=workers)
            """
        )
        assert diags == []


class TestRes201ShmLeak:
    """Regression fixture for the PR 4 bug: both segments were created
    before any teardown guard was registered, so a failure creating the
    second (or any later exception) leaked the first in /dev/shm."""

    PRE_FIX_SHAPE = """
        import numpy as np

        def components_process(image, shape, p):
            shm_img = SharedNDArray.from_array(image)
            shm_lab = SharedNDArray.create(shape, np.int64)
            try:
                return _dispatch(shm_img.meta, shm_lab.meta, p)
            finally:
                for shm in (shm_img, shm_lab):
                    shm.close()
                    shm.unlink()
        """

    FIXED_SHAPE = """
        import contextlib
        import numpy as np

        def components_process(image, shape, p):
            with contextlib.ExitStack() as stack:
                shm_img = stack.enter_context(SharedNDArray.from_array(image))
                shm_lab = stack.enter_context(SharedNDArray.create(shape, np.int64))
                return _dispatch(shm_img.meta, shm_lab.meta, p)
        """

    def test_fires_on_pre_fix_shape(self):
        diags = analyze(self.PRE_FIX_SHAPE)
        assert [d.rule for d in diags] == ["RES201", "RES201"]
        assert "/dev/shm" in diags[0].message

    def test_silent_on_fixed_shape(self):
        assert analyze(self.FIXED_SHAPE) == []

    def test_try_finally_with_unlink_is_a_guard(self):
        diags = analyze(
            """
            def run(image):
                try:
                    shm = SharedNDArray.from_array(image)
                    return work(shm)
                finally:
                    shm.close()
                    shm.unlink()
            """
        )
        assert diags == []

    def test_close_without_unlink_still_leaks(self):
        diags = analyze(
            """
            def run(image):
                try:
                    shm = SharedNDArray.from_array(image)
                    return work(shm)
                finally:
                    shm.close()
            """
        )
        assert rules_of(diags) == ["RES201"]

    def test_raw_shared_memory_create_true_flagged(self):
        diags = analyze(
            """
            from multiprocessing.shared_memory import SharedMemory

            def grab(n):
                seg = SharedMemory(create=True, size=n)
                return seg.name
            """
        )
        assert rules_of(diags) == ["RES201"]

    def test_attach_is_not_a_creation(self):
        diags = analyze(
            """
            def worker(meta):
                shm = SharedNDArray.attach(meta)
                return shm.array.sum()
            """
        )
        assert diags == []

    def test_current_runtime_module_is_clean(self):
        src = (REPO_ROOT / "src/repro/runtime/parallel.py").read_text()
        diags = analyze_source(src, "parallel.py")
        assert [d.format() for d in diags if d.rule.startswith("RES")] == []


class TestRes202StraightLineRelease:
    def test_straight_line_terminate_flagged(self):
        diags = analyze(
            """
            def run(ctx, fn, payloads):
                pool = ctx.Pool(4)
                out = pool.map(fn, payloads)
                pool.terminate()
                return out
            """
        )
        assert rules_of(diags) == ["RES202"]

    def test_release_in_finally_clean(self):
        diags = analyze(
            """
            def run(ctx, fn, payloads):
                pool = ctx.Pool(4)
                try:
                    return pool.map(fn, payloads)
                finally:
                    pool.terminate()
            """
        )
        assert diags == []


class TestRes203ChildProcessReap:
    """Fixture for the shard-respawn shape (PR 9): a spawned shard
    process whose reap sits in straight-line code, so the exception
    edge between spawn and reap (a failed readiness wait, a routing
    error) leaves a zombie -- and, with ``start_new_session``, a whole
    orphaned process group -- behind."""

    PRE_FIX_SHAPE = """
        import subprocess
        import sys

        def respawn_shard(argv, socket_path):
            proc = subprocess.Popen(argv, start_new_session=True)
            wait_until_ready(socket_path)
            proc.kill()
            proc.wait()
        """

    FIXED_SHAPE = """
        import subprocess
        import sys

        def respawn_shard(argv, socket_path):
            proc = subprocess.Popen(argv, start_new_session=True)
            try:
                wait_until_ready(socket_path)
            finally:
                proc.kill()
                proc.wait()
        """

    def test_fires_on_pre_fix_shape(self):
        diags = analyze(self.PRE_FIX_SHAPE)
        assert rules_of(diags) == ["RES203"]
        assert "zombie" in diags[0].message

    def test_silent_on_fixed_shape(self):
        assert analyze(self.FIXED_SHAPE) == []

    def test_never_reaped_is_res200(self):
        diags = analyze(
            """
            import subprocess

            def spawn(argv):
                proc = subprocess.Popen(argv)
                return proc.pid
            """
        )
        assert rules_of(diags) == ["RES200"]

    def test_multiprocessing_process_flagged(self):
        diags = analyze(
            """
            def run(ctx, fn):
                worker = ctx.Process(target=fn)
                worker.start()
                out = collect()
                worker.join()
                return out
            """
        )
        assert rules_of(diags) == ["RES203"]

    def test_owned_handle_is_object_lifetime(self):
        diags = analyze(
            """
            import subprocess

            class ShardProcess:
                def spawn(self, argv):
                    self.proc = subprocess.Popen(argv, start_new_session=True)
            """
        )
        assert diags == []


class TestErr301BroadExcept:
    def test_swallowing_broad_except_flagged(self):
        diags = analyze(
            """
            def load(path):
                try:
                    return parse(path)
                except Exception:
                    return None
            """
        )
        assert rules_of(diags) == ["ERR301"]

    def test_reraise_is_clean(self):
        diags = analyze(
            """
            def load(path):
                try:
                    return parse(path)
                except Exception:
                    cleanup()
                    raise
            """
        )
        assert diags == []

    def test_using_the_exception_is_clean(self):
        diags = analyze(
            """
            def respond(line):
                try:
                    return handle(line)
                except Exception as exc:
                    return error_reply(type(exc).__name__, str(exc))
            """
        )
        assert diags == []

    def test_typed_except_is_clean(self):
        diags = analyze(
            """
            def scan(path):
                try:
                    return list_dir(path)
                except OSError:
                    return []
            """
        )
        assert diags == []


class TestErr302BuiltinRaise:
    def test_raise_valueerror_flagged(self):
        diags = analyze(
            """
            def parse(payload):
                if not payload:
                    raise ValueError("empty payload")
            """
        )
        assert rules_of(diags) == ["ERR302"]

    def test_repro_error_clean(self):
        diags = analyze(
            """
            from repro.utils.errors import ValidationError

            def parse(payload):
                if not payload:
                    raise ValidationError("empty payload")
            """
        )
        assert diags == []

    def test_not_implemented_allowed(self):
        diags = analyze(
            """
            def visit(node):
                raise NotImplementedError
            """
        )
        assert diags == []


class TestCost400UnchargedPrimitive:
    def test_proc_touching_blocks_without_charge_flagged(self):
        diags = analyze(
            """
            class GlobalArrayish:
                def read_free(self, proc, owner):
                    return self._blocks[owner].copy()
            """
        )
        assert "COST400" in rules_of(diags)

    def test_charged_primitive_clean(self):
        diags = analyze(
            """
            class GlobalArrayish:
                def read(self, proc, owner, start, stop):
                    proc._charge_comm(stop - start, from_pid=owner)
                    return self._blocks[owner][start:stop].copy()
            """,
        )
        assert "COST400" not in rules_of(diags)


class TestCost401DirectBlocks:
    def test_foreign_blocks_access_flagged(self):
        diags = analyze(
            """
            def seed(arr, values):
                arr._blocks[0][:] = values
            """
        )
        assert rules_of(diags) == ["COST401"]

    def test_self_blocks_is_fine(self):
        diags = analyze(
            """
            class ShadowMemory:
                def clear(self):
                    self._blocks = []
            """
        )
        assert diags == []

    def test_memory_module_exempt(self):
        src = "def seed(arr, values):\n    arr._blocks[0][:] = values\n"
        assert analyze_source(src, "src/repro/bdm/memory.py") == []
        assert rules_of(analyze_source(src, "elsewhere.py")) == ["COST401"]

    def test_repo_uses_place_not_blocks(self):
        """The 4 old initial-placement sites now go through place()."""
        diags = analyze_paths([str(REPO_ROOT / "src")])
        assert [d.format() for d in diags if d.rule == "COST401"] == []


class TestCost402DirectCounterMutation:
    def test_direct_mutation_flagged(self):
        diags = analyze(
            """
            def sneak(proc, n):
                proc.cost.comm_s += n
            """
        )
        assert rules_of(diags) == ["COST402"]

    def test_machine_module_exempt(self):
        src = "def charge(proc, n):\n    proc.cost.comm_s += n\n"
        assert analyze_source(src, "src/repro/bdm/machine.py") == []


class TestObs501SpanLifetime:
    def test_fires_on_pre_fix_shape(self):
        """The bug shape the rule exists for: straight-line finish()."""
        diags = analyze(
            """
            async def submit(self, op, image):
                handle = self.recorder.begin("service:request", op=op)
                result = await self._serve_request(op, image)
                handle.finish(via="batched")
                return result
            """
        )
        assert rules_of(diags) == ["OBS501"]

    def test_silent_on_fixed_shape(self):
        diags = analyze(
            """
            async def submit(self, op, image):
                handle = self.recorder.begin("service:request", op=op)
                try:
                    return await self._serve_request(op, image)
                finally:
                    handle.finish(via="batched")
            """
        )
        assert diags == []

    def test_never_finished_flagged(self):
        diags = analyze(
            """
            def measure(recorder):
                h = recorder.begin("round")
                return compute()
            """
        )
        assert rules_of(diags) == ["OBS501"]

    def test_finish_in_except_handler_is_a_guard(self):
        diags = analyze(
            """
            def measure(recorder):
                h = recorder.begin("round")
                try:
                    out = compute()
                except Exception:
                    h.finish(failed=True)
                    raise
                h.finish()
                return out
            """
        )
        assert diags == []

    def test_escaping_handle_not_flagged(self):
        diags = analyze(
            """
            def open_span(recorder, pending):
                h = recorder.begin("round")
                pending.append(h)
            """
        )
        assert diags == []

    def test_conditional_begin_with_guarded_finish_clean(self):
        diags = analyze(
            """
            def serve(recorder, traced):
                handle = recorder.begin("req") if traced else None
                try:
                    return compute()
                finally:
                    if handle is not None:
                        handle.finish()
            """
        )
        assert diags == []

    def test_service_tier_is_clean(self):
        diags = analyze_paths([str(REPO_ROOT / "src" / "repro" / "service")])
        assert [d.format() for d in diags if d.rule.startswith("OBS")] == []


class TestObs502EmitGuard:
    def test_fires_on_pre_fix_shape(self):
        """An emit on recorder=None crashes every untraced call."""
        diags = analyze(
            """
            def absorb(req, recorder=None):
                recorder.count("svc:queue_wait", req.waited)
            """
        )
        assert rules_of(diags) == ["OBS502"]

    def test_silent_with_none_guard(self):
        diags = analyze(
            """
            def absorb(req, recorder=None):
                if recorder is not None:
                    recorder.count("svc:queue_wait", req.waited)
            """
        )
        assert diags == []

    def test_early_return_guard_accepted(self):
        diags = analyze(
            """
            def absorb(req, recorder=None):
                if recorder is None:
                    return
                recorder.count("svc:queue_wait", req.waited)
            """
        )
        assert diags == []

    def test_boolop_short_circuit_accepted(self):
        diags = analyze(
            """
            def absorb(req, recorder=None):
                recorder and recorder.count("x", req.waited)
            """
        )
        assert diags == []

    def test_reassigned_parameter_not_tracked(self):
        diags = analyze(
            """
            def absorb(req, recorder=None):
                recorder = recorder or make_recorder()
                recorder.count("x", req.waited)
            """
        )
        assert diags == []

    def test_required_parameter_not_flagged(self):
        diags = analyze(
            """
            def absorb(req, recorder):
                recorder.count("x", req.waited)
            """
        )
        assert diags == []

    def test_obs_package_is_clean(self):
        diags = analyze_paths([str(REPO_ROOT / "src" / "repro" / "obs")])
        assert [d.format() for d in diags if d.rule.startswith("OBS")] == []


class TestSelectionAndSuppression:
    BAD = """
        import time

        async def handler():
            time.sleep(1)

        def parse(payload):
            raise ValueError(payload)
        """

    def test_select_by_family(self):
        sel = expand_selection(["ASYNC"])
        assert rules_of(analyze(self.BAD, select=sel)) == ["ASYNC101"]

    def test_select_by_rule_id(self):
        sel = expand_selection(["ERR302"])
        assert rules_of(analyze(self.BAD, select=sel)) == ["ERR302"]

    def test_ignore_wins_over_select(self):
        sel = expand_selection(["ASYNC", "ERR"])
        ign = expand_selection(["ERR302"])
        assert rules_of(analyze(self.BAD, select=sel, ignore=ign)) == ["ASYNC101"]

    def test_unknown_token_raises(self):
        with pytest.raises(ReproError):
            expand_selection(["NOSUCH999"])

    def test_parse_failure_reported_despite_selection(self):
        sel = expand_selection(["ASYNC"])
        diags = analyze_source("def broken(:\n", "bad.py", select=sel)
        assert rules_of(diags) == ["SPMD000"]

    def test_inline_ignore_by_rule(self):
        diags = analyze(
            """
            def parse(payload):
                raise ValueError(payload)  # check: ignore[ERR302]
            """
        )
        assert diags == []

    def test_inline_ignore_by_family(self):
        diags = analyze(
            """
            def parse(payload):
                raise ValueError(payload)  # check: ignore[ERR]
            """
        )
        assert diags == []

    def test_inline_ignore_other_rule_does_not_apply(self):
        diags = analyze(
            """
            def parse(payload):
                raise ValueError(payload)  # check: ignore[ASYNC101]
            """
        )
        assert rules_of(diags) == ["ERR302"]

    def test_catalog_covers_all_families(self):
        text = format_catalog()
        for rule_id in RULES:
            assert rule_id in text
        families = {rule_family(r) for r in RULES}
        assert families == {"SPMD", "ASYNC", "RES", "ERR", "COST", "OBS"}
        for rule in RULES.values():
            assert rule.severity in ("error", "warning")


class TestBaseline:
    def _diags(self):
        return analyze(self.__class__.SOURCE)

    SOURCE = """
        def parse(payload):
            raise ValueError(payload)
        """

    def test_round_trip_suppresses(self, tmp_path):
        diags = self._diags()
        assert diags
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline_from(diags))
        result = apply_baseline(diags, load_baseline(path))
        assert result.diags == []
        assert result.suppressed == len(diags)
        assert result.stale == {}

    def test_new_finding_surfaces(self, tmp_path):
        diags = self._diags()
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline_from(diags))
        more = analyze(
            """
            def parse(payload):
                raise ValueError(payload)

            def encode(payload):
                raise TypeError(payload)
            """
        )
        result = apply_baseline(more, load_baseline(path))
        assert len(result.diags) == 1  # only the new TypeError raise
        assert result.suppressed == 1

    def test_fixed_finding_reported_stale(self, tmp_path):
        diags = self._diags()
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline_from(diags))
        result = apply_baseline([], load_baseline(path))
        assert result.stale == {"probe.py": {"ERR302": 1}}

    def test_stale_restricted_to_scanned_files(self, tmp_path):
        diags = self._diags()
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline_from(diags))
        result = apply_baseline([], load_baseline(path), scanned={"other.py"})
        assert result.stale == {}

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema": "something-else", "entries": {}}')
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_checked_in_baseline_matches_repo(self):
        """The repo's own baseline stays in sync with its findings."""
        entries = load_baseline(REPO_ROOT / ".repro-checker-baseline.json")
        diags = analyze_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
        )
        keyed = baseline_from(diags)
        rel = {
            str(Path(f).relative_to(REPO_ROOT).as_posix()): rules
            for f, rules in keyed.items()
        }
        assert rel == entries

"""Tests for the merge schedule (Sections 5.2-5.3 structure)."""

import pytest

from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.utils.validation import ilog2


def schedule_for(p, n=512):
    return merge_schedule(ProcessorGrid(p, n))


class TestShape:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64, 128])
    def test_log_p_steps(self, p):
        assert len(schedule_for(p)) == ilog2(p)

    def test_p1_empty(self):
        assert schedule_for(1, 64) == []

    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_even_d_alternates_strictly(self, p):
        orients = [s.orientation for s in schedule_for(p)]
        assert orients == ["H", "V"] * (len(orients) // 2)

    @pytest.mark.parametrize("p", [2, 8, 32, 128])
    def test_odd_d_ends_with_extra_horizontal(self, p):
        orients = [s.orientation for s in schedule_for(p)]
        assert orients == ["H", "V"] * (len(orients) // 2) + ["H"]

    @pytest.mark.parametrize("p", [8, 32])
    def test_merge_counts_match_grid(self, p):
        grid = ProcessorGrid(p, 512)
        orients = [s.orientation for s in schedule_for(p)]
        assert orients.count("H") == ilog2(grid.w)
        assert orients.count("V") == ilog2(grid.v)

    def test_group_count_halves(self):
        steps = schedule_for(32)
        counts = [len(s.groups) for s in steps]
        assert counts == [16, 8, 4, 2, 1]


class TestGroupStructure:
    @pytest.mark.parametrize("p", [4, 8, 32])
    def test_regions_partition_processors(self, p):
        for step in schedule_for(p):
            seen = []
            for g in step.groups:
                seen.extend(g.region)
            assert sorted(seen) == list(range(p))

    @pytest.mark.parametrize("p", [4, 8, 32])
    def test_manager_in_region_clients_rest(self, p):
        for step in schedule_for(p):
            for g in step.groups:
                assert g.manager in g.region
                assert g.manager not in g.clients
                assert set(g.clients) | {g.manager} == set(g.region)

    @pytest.mark.parametrize("p", [4, 8, 32, 64])
    def test_manager_and_shadow_face_each_other(self, p):
        grid = ProcessorGrid(p, 512)
        for step in schedule_for(p):
            for g in step.groups:
                mi, mj = grid.coords(g.manager)
                si, sj = grid.coords(g.shadow)
                if step.orientation == "H":
                    assert si == mi and sj == mj + 1
                else:
                    assert sj == mj and si == mi + 1

    @pytest.mark.parametrize("p", [4, 8, 32])
    def test_sides_face_across_border(self, p):
        grid = ProcessorGrid(p, 512)
        for step in schedule_for(p):
            for g in step.groups:
                assert len(g.side_a_pids) == len(g.side_b_pids)
                for a, b in zip(g.side_a_pids, g.side_b_pids):
                    ai, aj = grid.coords(a)
                    bi, bj = grid.coords(b)
                    if step.orientation == "H":
                        assert bi == ai and bj == aj + 1
                    else:
                        assert bj == aj and bi == ai + 1

    @pytest.mark.parametrize("p", [8, 32])
    def test_side_pids_inside_region(self, p):
        for step in schedule_for(p):
            for g in step.groups:
                region = set(g.region)
                assert set(g.side_a_pids) <= region
                assert set(g.side_b_pids) <= region

    def test_edge_names(self):
        steps = schedule_for(4)
        assert steps[0].edge_names == ("right", "left")
        assert steps[1].edge_names == ("bottom", "top")

    def test_border_growth(self):
        """Border sides double in processor count every two steps."""
        steps = schedule_for(64)
        sides = [len(s.groups[0].side_a_pids) for s in steps]
        assert sides == [1, 2, 2, 4, 4, 8]

    def test_every_adjacent_tile_pair_merged_once(self):
        """Each grid-adjacent tile pair faces each other in exactly one step."""
        p = 32
        grid = ProcessorGrid(p, 512)
        seen = set()
        for step in schedule_for(p):
            for g in step.groups:
                for a, b in zip(g.side_a_pids, g.side_b_pids):
                    assert (a, b) not in seen
                    seen.add((a, b))
        expected = set()
        for I in range(grid.v):
            for J in range(grid.w):
                if J + 1 < grid.w:
                    expected.add((grid.pid_at(I, J), grid.pid_at(I, J + 1)))
                if I + 1 < grid.v:
                    expected.add((grid.pid_at(I, J), grid.pid_at(I + 1, J)))
        assert seen == expected

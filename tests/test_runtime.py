"""Tests for the real-parallel runtime (shared memory + process pool)."""

import numpy as np
import pytest

from repro.baselines import sequential_components, sequential_histogram
from repro.images import binary_test_image, darpa_like, random_greyscale
from repro.runtime import SharedNDArray, components, histogram, resolve_workers
from repro.runtime.shmem import ShmMeta
from repro.utils.errors import ValidationError


class TestSharedNDArray:
    def test_create_and_write(self):
        with SharedNDArray.create((4, 4), np.int64) as shm:
            shm.array[:] = 7
            assert (shm.array == 7).all()

    def test_from_array_copies(self):
        src = np.arange(12).reshape(3, 4)
        with SharedNDArray.from_array(src) as shm:
            assert np.array_equal(shm.array, src)
            src[0, 0] = 99
            assert shm.array[0, 0] == 0

    def test_attach_sees_owner_writes(self):
        owner = SharedNDArray.create((8,), np.float64)
        try:
            owner.array[:] = np.arange(8)
            other = SharedNDArray.attach(owner.meta)
            assert np.array_equal(other.array, np.arange(8))
            other.close()
        finally:
            owner.close()
            owner.unlink()

    def test_meta_roundtrip(self):
        owner = SharedNDArray.create((2, 3), np.int32)
        try:
            meta = owner.meta
            assert isinstance(meta, ShmMeta)
            assert meta.shape == (2, 3)
        finally:
            owner.close()
            owner.unlink()

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            SharedNDArray.create((0,), np.int64)


class TestResolveWorkers:
    def test_explicit_power_of_two(self):
        assert resolve_workers(4) == 4

    def test_rejects_non_power(self):
        with pytest.raises(ValidationError):
            resolve_workers(6)

    def test_default_is_power_of_two(self):
        w = resolve_workers(None)
        assert w >= 1 and (w & (w - 1)) == 0

    def test_reduced_until_grid_divides(self):
        # n = 24: p=16 needs w=4 | 24 ok, v=4 | 24 ok -> stays 16
        assert resolve_workers(16, 24) == 16
        # n = 6: p=16 -> grid 4x4 divides 6? no -> 4 -> 2x2 ok? 6%2==0 yes
        assert resolve_workers(16, 6) == 4

    def test_non_divisible_shape_degrades_not_raises(self):
        # A prime side: no grid larger than 1x1 divides it, so the count
        # must degrade all the way to 1 rather than raise.
        assert resolve_workers(16, 7) == 1
        assert resolve_workers(16, (7, 7)) == 1

    def test_real_bugs_propagate(self, monkeypatch):
        """Only the divisibility probe may fail softly.

        Historically this loop caught bare ``Exception``, so a genuine
        defect inside ProcessorGrid (simulated here) was silently
        translated into a smaller worker count.  It must propagate.
        """
        from repro.runtime import parallel as rt_parallel

        def boom(workers, shape):
            raise RuntimeError("genuine bug, not a divisibility failure")

        monkeypatch.setattr(rt_parallel, "ProcessorGrid", boom)
        with pytest.raises(RuntimeError, match="genuine bug"):
            resolve_workers(4, 24)


class TestHistogramBackends:
    def test_serial_matches_sequential(self, small_grey):
        out = histogram(small_grey, 8, backend="serial")
        assert np.array_equal(out, sequential_histogram(small_grey, 8))

    def test_process_matches_sequential(self, small_grey):
        out = histogram(small_grey, 8, workers=4, backend="process")
        assert np.array_equal(out, sequential_histogram(small_grey, 8))

    def test_rectangular_image(self):
        img = random_greyscale(32, 16, seed=0)[:16, :]
        out = histogram(img, 16, workers=2, backend="process")
        assert np.array_equal(out, sequential_histogram(img, 16))

    def test_level_validation(self):
        img = np.full((4, 4), 8, dtype=np.int32)
        with pytest.raises(ValidationError):
            histogram(img, 8)

    def test_bad_backend(self, small_grey):
        with pytest.raises(ValidationError):
            histogram(small_grey, 8, backend="gpu")


class TestComponentsBackends:
    def test_serial_matches_sequential(self, small_binary):
        out = components(small_binary, backend="serial")
        assert np.array_equal(out, sequential_components(small_binary))

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_process_binary(self, workers, small_binary):
        out = components(small_binary, workers=workers, backend="process")
        assert np.array_equal(out, sequential_components(small_binary))

    def test_process_grey(self):
        img = darpa_like(64, 16, seed=12)
        out = components(img, grey=True, workers=4, backend="process")
        assert np.array_equal(out, sequential_components(img, grey=True))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_connectivity(self, connectivity):
        img = binary_test_image(9, 64)
        out = components(img, connectivity=connectivity, workers=4, backend="process")
        assert np.array_equal(
            out, sequential_components(img, connectivity=connectivity)
        )

    def test_single_worker_falls_back_to_serial(self, small_binary):
        out = components(small_binary, workers=1, backend="process")
        assert np.array_equal(out, sequential_components(small_binary))

    def test_indivisible_size_reduces_workers(self):
        """n=36 with 8 workers: grid 2x4 doesn't divide 36 -> fall back."""
        rng = np.random.default_rng(0)
        img = (rng.random((36, 36)) < 0.5).astype(np.int32)
        out = components(img, workers=8, backend="process")
        assert np.array_equal(out, sequential_components(img))

"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

import repro
from repro.analysis import efficiency
from repro.baselines import sequential_components, sequential_histogram
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import (
    binary_test_image,
    darpa_like,
    grey_quadrants,
    random_greyscale,
)
from repro.machines import CM5, MACHINES, get_machine
from repro.runtime import components as rt_components
from repro.runtime import histogram as rt_histogram


class TestThreeImplementationsAgree:
    """Simulator, runtime, and sequential engines: one answer."""

    def test_histogram_triple_agreement(self):
        img = darpa_like(64, 32, seed=21)
        a = parallel_histogram(img, 32, 16).histogram
        b = rt_histogram(img, 32, workers=4, backend="process")
        c = sequential_histogram(img, 32)
        assert np.array_equal(a, b)
        assert np.array_equal(b, c)

    @pytest.mark.parametrize("grey", [False, True])
    def test_components_triple_agreement(self, grey):
        img = darpa_like(64, 8, seed=22) if grey else binary_test_image(9, 64)
        a = parallel_components(img, 16, grey=grey).labels
        b = rt_components(img, grey=grey, workers=4, backend="process")
        c = sequential_components(img, grey=grey)
        assert np.array_equal(a, b)
        assert np.array_equal(b, c)


class TestAllMachinesRunEverything:
    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_histogram_on_every_machine(self, name):
        img = random_greyscale(32, 16, seed=3)
        res = parallel_histogram(img, 16, 4, get_machine(name))
        assert np.array_equal(res.histogram, sequential_histogram(img, 16))
        assert res.elapsed_s > 0

    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_components_on_every_machine(self, name):
        img = binary_test_image(5, 32)
        res = parallel_components(img, 4, get_machine(name))
        assert np.array_equal(res.labels, sequential_components(img))
        assert res.elapsed_s > 0


class TestPipeline:
    def test_histogram_then_components(self):
        """The image-understanding pipeline: equalize, then label."""
        img = grey_quadrants(32, 16)
        hist = parallel_histogram(img, 16, 4).histogram
        cdf = np.cumsum(hist)
        lut = np.clip((cdf * 15) // cdf[-1], 0, 15).astype(np.int32)
        lut[0] = 0
        equalized = lut[img]
        res = parallel_components(equalized, 4, grey=True)
        # Quadrants survive equalization as distinct components (three
        # foreground quadrants; the 0-quadrant is background).
        assert res.n_components == 3

    def test_efficiency_well_behaved(self):
        """Efficiency decreases with p but stays positive (Amdahl-like)."""
        img = binary_test_image(9, 128)
        t1 = parallel_components(img, 1, CM5).elapsed_s
        effs = []
        for p in (4, 16, 64):
            tp = parallel_components(img, p, CM5).elapsed_s
            effs.append(efficiency(t1, tp, p))
        assert all(0.0 < e <= 1.05 for e in effs)
        assert effs[0] > effs[-1]

    def test_public_api_surface(self):
        """Everything advertised in repro.__all__ resolves."""
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestLargerScale:
    def test_512_image_with_128_processors(self):
        img = binary_test_image(7, 512)
        res = parallel_components(img, 128, CM5)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_grey_512_end_to_end(self):
        img = darpa_like(512, 256)
        res = parallel_components(img, 32, CM5, grey=True)
        assert res.n_components > 100
        # Spot check against the sequential engine (full compare is done
        # at smaller sizes; here verify the label set matches).
        seq = sequential_components(img, grey=True)
        assert np.array_equal(res.labels, seq)

"""Property tests for the zero-copy wire plane's validation surface.

Descriptors are the only thing the socket carries for a shmem request,
so :meth:`ShmDescriptor.from_wire` is a parser of hostile input and is
fuzzed as one: malformed names, alien dtypes, adversarial shapes,
digest strings that are almost hex.  Every rejection must be a typed
:class:`ValidationError` -- and on a live server every failure mode
(unknown segment, undersized segment, tampered pixels, double release)
must come back as a typed JSON error on that request alone, with the
connection, the worker pool, and the next request all unharmed.

The :class:`ShmArena` refcount/ownership rules get direct unit tests:
exactly-once release is a protocol guarantee the leakcheck relies on.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.leakcheck import assert_no_shm_leak
from repro.images import binary_test_image
from repro.runtime.shmem import (
    MAX_SEGMENT_BYTES,
    SHARABLE_DTYPES,
    SharedNDArray,
    ShmArena,
    ShmDescriptor,
    array_digest,
    verify_descriptor_digest,
)
from repro.service import (
    BatchService,
    ServiceConfig,
    ServiceServer,
    WireClient,
    mint_shared_image,
)
from repro.service.ops import materialize_request_image
from repro.utils.errors import CorruptPayloadError, ValidationError

# ---------------------------------------------------------------------------
# descriptor parsing
# ---------------------------------------------------------------------------


def _wire(name="psm_test", dtype="uint8", shape=(4, 4), digest="0" * 64):
    return {"name": name, "dtype": dtype, "shape": list(shape), "digest": digest}


class TestDescriptorParsing:
    @given(
        dtype=st.sampled_from(SHARABLE_DTYPES),
        shape=st.lists(st.integers(1, 64), min_size=1, max_size=3),
    )
    def test_roundtrip_identity(self, dtype, shape):
        arr = np.zeros(shape, dtype=dtype)
        desc = ShmDescriptor.for_array("psm_roundtrip", arr)
        again = ShmDescriptor.from_wire(desc.to_wire())
        assert again == desc
        assert again.nbytes == arr.nbytes

    @given(obj=st.one_of(st.none(), st.integers(), st.text(), st.lists(st.integers())))
    def test_non_object_rejected(self, obj):
        with pytest.raises(ValidationError):
            ShmDescriptor.from_wire(obj)

    @given(name=st.one_of(
        st.just(""),
        st.just("/psm_absolute"),
        st.just("../escape"),
        st.just("a/b"),
        st.text(alphabet="/\\\x00 \n\t$", min_size=1, max_size=8),
        st.text(min_size=251, max_size=260, alphabet="a"),
        st.integers(),
        st.none(),
    ))
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValidationError, match="name"):
            ShmDescriptor.from_wire(_wire(name=name))

    @given(dtype=st.one_of(
        st.sampled_from(["float32", "float64", "complex64", "uint64", "bool", "object"]),
        st.text(max_size=8),
        st.none(),
    ))
    def test_bad_dtypes_rejected(self, dtype):
        with pytest.raises(ValidationError, match="dtype"):
            ShmDescriptor.from_wire(_wire(dtype=dtype))

    @given(shape=st.one_of(
        st.just([]),
        st.just([0]),
        st.just([-1, 4]),
        st.just([True, 4]),
        st.just([4, "4"]),
        st.just("4x4"),
        st.none(),
        st.just([2.0, 2]),
    ))
    def test_bad_shapes_rejected(self, shape):
        obj = _wire()
        obj["shape"] = shape
        with pytest.raises(ValidationError, match="shape"):
            ShmDescriptor.from_wire(obj)

    def test_oversize_shape_rejected_without_overflow(self):
        # An adversarial shape whose byte count wraps int64 must not
        # sneak under the cap via wraparound.
        huge = [2 ** 31, 2 ** 31, 4]
        with pytest.raises(ValidationError, match="cap"):
            ShmDescriptor.from_wire(_wire(dtype="int64", shape=huge))
        just_over = [MAX_SEGMENT_BYTES + 1]
        with pytest.raises(ValidationError, match="cap"):
            ShmDescriptor.from_wire(_wire(dtype="uint8", shape=just_over))

    @given(digest=st.one_of(
        st.text(alphabet="0123456789abcdef", min_size=0, max_size=63),
        st.text(alphabet="0123456789abcdef", min_size=65, max_size=70),
        st.just("G" * 64),
        st.just("0" * 63 + "Z"),
        st.integers(),
        st.none(),
    ))
    def test_bad_digests_rejected(self, digest):
        with pytest.raises(ValidationError, match="digest"):
            ShmDescriptor.from_wire(_wire(digest=digest))


# ---------------------------------------------------------------------------
# digest verification + worker-side materialization
# ---------------------------------------------------------------------------


class TestMaterialization:
    def test_unknown_segment_is_validation_error(self):
        desc = ShmDescriptor(
            name="psm_never_created_0xdead", dtype="uint8",
            shape=(4, 4), digest="0" * 64,
        )
        with pytest.raises(ValidationError, match="unknown shared-memory segment"):
            materialize_request_image(desc)

    def test_shape_mismatch_vs_segment_size_is_validation_error(self):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        with assert_no_shm_leak():
            seg, desc = mint_shared_image(img)
            try:
                # Same segment, but a claimed view far past its real size
                # (well past page rounding).
                lying = ShmDescriptor(
                    name=desc.name, dtype="int64",
                    shape=(256, 256), digest=desc.digest,
                )
                with pytest.raises(ValidationError, match="holds only"):
                    materialize_request_image(lying)
            finally:
                seg.close()
                seg.unlink()

    def test_tampered_pixels_raise_corrupt_payload(self):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        with assert_no_shm_leak():
            seg, desc = mint_shared_image(img)
            try:
                seg.array[0, 0] += 1  # tamper after digesting
                with pytest.raises(CorruptPayloadError, match="digest"):
                    materialize_request_image(desc)
            finally:
                seg.close()
                seg.unlink()

    @given(shape=st.lists(st.integers(1, 16), min_size=1, max_size=2))
    def test_verify_accepts_only_the_hashed_bytes(self, shape):
        arr = np.ones(shape, dtype=np.int32)
        desc = ShmDescriptor.for_array("psm_x", arr)
        verify_descriptor_digest(desc, arr)  # identical bytes pass
        with pytest.raises(CorruptPayloadError):
            verify_descriptor_digest(desc, arr * 2)

    def test_digest_matches_cache_digest(self):
        from repro.service import image_digest

        img = binary_test_image(2, 16)
        assert array_digest(img) == image_digest(img)


# ---------------------------------------------------------------------------
# arena lifetime rules
# ---------------------------------------------------------------------------


class TestArena:
    def test_mint_release_exactly_once(self):
        with assert_no_shm_leak():
            arena = ShmArena()
            desc = arena.mint(np.arange(16, dtype=np.int64))
            assert desc.name in arena
            arena.release(desc.name)
            assert desc.name not in arena
            with pytest.raises(ValidationError, match="already-released"):
                arena.release(desc.name)

    def test_release_unknown_name_rejected(self):
        arena = ShmArena()
        with pytest.raises(ValidationError, match="unknown"):
            arena.release("psm_never_minted")

    def test_checkout_refcounts_one_mapping(self):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        with assert_no_shm_leak():
            seg, desc = mint_shared_image(img)
            try:
                arena = ShmArena()
                a = arena.checkout(desc)
                b = arena.checkout(desc)
                assert a is b  # shared mapping under refcount
                arena.checkin(desc.name)
                assert desc.name in arena  # still one ref out
                arena.checkin(desc.name)
                assert desc.name not in arena
                with pytest.raises(ValidationError):
                    arena.checkin(desc.name)
            finally:
                seg.close()
                seg.unlink()

    def test_release_all_is_idempotent_teardown(self):
        with assert_no_shm_leak():
            with ShmArena() as arena:
                for i in range(4):
                    arena.mint(np.full(8, i, dtype=np.int16))
                assert len(arena) == 4
                assert arena.release_all() == 4
                assert arena.release_all() == 0
            # context exit after manual teardown: still clean

    def test_full_arena_rejects_mint(self):
        with assert_no_shm_leak():
            with ShmArena(max_segments=2) as arena:
                arena.mint(np.zeros(4, dtype=np.uint8))
                arena.mint(np.zeros(4, dtype=np.uint8))
                with pytest.raises(ValidationError, match="full"):
                    arena.mint(np.zeros(4, dtype=np.uint8))


# ---------------------------------------------------------------------------
# live-socket typed error replies (never a worker crash)
# ---------------------------------------------------------------------------


@contextlib.asynccontextmanager
async def _live_server(tmp_path):
    sock = str(tmp_path / "svc.sock")
    server = ServiceServer(BatchService(ServiceConfig(workers=1)), sock)
    await server.start()
    try:
        yield sock, server
    finally:
        await server.stop()


class TestLiveSocketErrors:
    def test_each_failure_mode_is_a_typed_reply(self, tmp_path):
        img = binary_test_image(3, 16)

        async def scenario():
            async with _live_server(tmp_path) as (sock, _server):
                async with WireClient(sock, wire="shmem") as client:
                    # 1. unknown segment name
                    ghost = ShmDescriptor(
                        name="psm_ghost_segment", dtype="uint8",
                        shape=(16, 16), digest="0" * 64,
                    )
                    with pytest.raises(ValidationError, match="unknown shared-memory"):
                        await client.compute("histogram", ghost, k=256)

                    # 2. dtype/shape mismatch vs the segment's true size
                    seg, desc = mint_shared_image(img)
                    try:
                        lying = ShmDescriptor(
                            name=desc.name, dtype="int64",
                            shape=(512, 512), digest=desc.digest,
                        )
                        with pytest.raises(ValidationError, match="holds only"):
                            await client.compute("histogram", lying, k=256)

                        # 3. digest mismatch (tampered pixels)
                        tampered = ShmDescriptor(
                            name=desc.name, dtype=desc.dtype,
                            shape=desc.shape, digest="f" * 64,
                        )
                        with pytest.raises(CorruptPayloadError):
                            await client.compute("histogram", tampered, k=256)

                        # ...and the service is unharmed: the very same
                        # connection serves a good request right after.
                        good = await client.compute("histogram", desc, k=256)
                        assert int(good.sum()) == img.size

                        # 4. double release of a reply segment
                        reply = await client.request({
                            "op": "components",
                            "image": {"shm": desc.to_wire()},
                            "wire": "shmem",
                        })
                        # (cache hit is fine -- the reply segment is
                        # minted either way because the reply wire asks
                        # for shmem)
                        name = reply["result"]["shm"]["name"]
                        ok = await client.request(
                            {"op": "shm_release", "name": name})
                        assert ok["ok"]
                        dup = await client.request(
                            {"op": "shm_release", "name": name})
                        assert not dup["ok"]
                        assert dup["error"]["type"] == "ValidationError"
                        assert "already-released" in dup["error"]["message"]
                    finally:
                        seg.close()
                        seg.unlink()

        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario())

    def test_malformed_descriptor_never_reaches_a_worker(self, tmp_path):
        async def scenario():
            async with _live_server(tmp_path) as (sock, server):
                async with WireClient(sock) as client:
                    reply = await client.request({
                        "op": "histogram",
                        "image": {"shm": {"name": "/etc/passwd", "dtype": "uint8",
                                          "shape": [4], "digest": "0" * 64}},
                        "params": {"k": 256},
                    })
                    assert not reply["ok"]
                    assert reply["error"]["type"] == "ValidationError"
                # Rejected at descriptor parse: no task was ever dispatched.
                assert server.service.executor.stats.tasks == 0

        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario())

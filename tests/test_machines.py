"""Tests for the machine parameter sets and unit conversions."""

import pytest

from repro.machines import (
    CM5,
    CS2,
    IDEAL,
    MACHINES,
    PARAGON,
    SP1,
    SP2,
    MachineParams,
    get_machine,
)
from repro.machines.params import WORD_BYTES
from repro.utils.errors import ConfigurationError


class TestRegistry:
    def test_all_five_platforms_present(self):
        for key in ("cm5", "sp1", "sp2", "cs2", "paragon"):
            assert key in MACHINES

    def test_get_machine_normalizes_names(self):
        assert get_machine("CM-5") is CM5
        assert get_machine(" sp2 ") is SP2
        assert get_machine("Paragon") is PARAGON

    def test_get_machine_unknown(self):
        with pytest.raises(ConfigurationError):
            get_machine("cray")


class TestBandwidths:
    def test_attained_bandwidth_ordering(self):
        # Paper Section 2.2: Paragon > SP-2 > CS-2 > CM-5 per processor.
        assert PARAGON.bandwidth_Bps > SP2.bandwidth_Bps > CS2.bandwidth_Bps > CM5.bandwidth_Bps

    def test_attained_below_peak(self):
        for m in (CM5, SP1, SP2, CS2, PARAGON):
            assert m.bandwidth_Bps <= m.peak_bandwidth_Bps

    def test_word_time(self):
        assert CM5.word_time_s() == pytest.approx(WORD_BYTES / 7.62e6)


class TestCostConversions:
    def test_comm_time_includes_latency(self):
        t = CM5.comm_time_s(100)
        assert t == pytest.approx(CM5.latency_s + 100 * CM5.word_time_s())

    def test_comm_time_zero(self):
        assert CM5.comm_time_s(0, messages=0) == 0.0

    def test_comm_time_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CM5.comm_time_s(-1)

    def test_comp_time_linear(self):
        assert CM5.comp_time_s(2000) == pytest.approx(2 * CM5.comp_time_s(1000))

    def test_comp_time_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CM5.comp_time_s(-5)

    def test_ideal_machine_is_fast(self):
        assert IDEAL.latency_s == 0.0
        assert IDEAL.comp_time_s(1) == pytest.approx(1e-9)


class TestConstruction:
    def test_default_barrier_is_two_latencies(self):
        m = MachineParams("x", latency_s=5e-6, bandwidth_Bps=1e7, op_ns=100)
        assert m.barrier_s == pytest.approx(10e-6)

    def test_explicit_barrier_kept(self):
        m = MachineParams("x", latency_s=5e-6, bandwidth_Bps=1e7, op_ns=100, barrier_s=1e-6)
        assert m.barrier_s == pytest.approx(1e-6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams("bad", latency_s=-1.0, bandwidth_Bps=1e6, op_ns=1)
        with pytest.raises(ConfigurationError):
            MachineParams("bad", latency_s=0.0, bandwidth_Bps=0.0, op_ns=1)

    def test_with_override(self):
        fast = CM5.with_(op_ns=1.0)
        assert fast.op_ns == 1.0
        assert fast.latency_s == CM5.latency_s
        assert CM5.op_ns == 350.0  # original untouched


class TestMachineSpecs:
    def test_machine_from_dict(self):
        from repro.machines import machine_from_dict

        m = machine_from_dict({
            "name": "x", "latency_s": 1e-6, "bandwidth_Bps": 1e8, "op_ns": 5.0,
        })
        assert m.name == "x"
        assert m.barrier_s == pytest.approx(2e-6)

    def test_unknown_keys_rejected(self):
        from repro.machines import machine_from_dict

        with pytest.raises(ConfigurationError, match="unknown"):
            machine_from_dict({
                "name": "x", "latency_s": 1e-6, "bandwidth_Bps": 1e8,
                "op_ns": 5.0, "flops": 1,
            })

    def test_missing_keys_rejected(self):
        from repro.machines import machine_from_dict

        with pytest.raises(ConfigurationError, match="missing"):
            machine_from_dict({"name": "x"})

    def test_load_machine_registry(self):
        from repro.machines import load_machine

        assert load_machine("cm5") is CM5

    def test_load_machine_json(self, tmp_path):
        import json

        from repro.machines import load_machine

        spec = tmp_path / "m.json"
        spec.write_text(json.dumps({
            "name": "j", "latency_s": 2e-6, "bandwidth_Bps": 5e8, "op_ns": 3.0,
        }))
        m = load_machine(str(spec))
        assert m.name == "j"

    def test_load_machine_missing_file(self, tmp_path):
        from repro.machines import load_machine

        with pytest.raises(ConfigurationError, match="cannot read"):
            load_machine(str(tmp_path / "nope.json"))

"""Tests for the physics applications (percolation, Ising)."""

import numpy as np
import pytest

from repro.images import site_percolation
from repro.physics import (
    IsingModel,
    T_CRITICAL,
    has_spanning_cluster,
    percolation_stats,
    spanning_probability,
)
from repro.physics.percolation import P_CRITICAL
from repro.utils.errors import ValidationError


class TestSitePercolationImage:
    def test_density_matches(self):
        lat = site_percolation(64, 0.3, seed=1)
        assert abs(lat.mean() - 0.3) < 0.05

    def test_deterministic(self):
        assert np.array_equal(site_percolation(32, 0.5, 7), site_percolation(32, 0.5, 7))

    def test_extremes(self):
        assert site_percolation(8, 0.0).sum() == 0
        assert site_percolation(8, 1.0).sum() == 64

    def test_p_validation(self):
        with pytest.raises(ValidationError):
            site_percolation(8, 1.5)


class TestSpanning:
    def test_full_lattice_spans(self):
        lat = np.ones((8, 8), dtype=np.int32)
        stats = percolation_stats(lat)
        assert stats.spanning
        assert stats.n_clusters == 1

    def test_empty_lattice(self):
        stats = percolation_stats(np.zeros((8, 8), dtype=np.int32))
        assert not stats.spanning
        assert stats.n_clusters == 0
        assert stats.largest_cluster == 0

    def test_horizontal_bar_does_not_span_vertically(self):
        lat = np.zeros((8, 8), dtype=np.int32)
        lat[4, :] = 1
        labels = np.where(lat != 0, 33, 0)
        assert not has_spanning_cluster(labels, axis=0)
        assert has_spanning_cluster(labels, axis=1)

    def test_vertical_column_spans(self):
        lat = np.zeros((8, 8), dtype=np.int32)
        lat[:, 3] = 1
        stats = percolation_stats(lat)
        assert stats.spanning

    def test_axis_validation(self):
        with pytest.raises(ValidationError):
            has_spanning_cluster(np.zeros((4, 4), dtype=np.int64), axis=2)


class TestSpanningProbability:
    def test_below_threshold_rare(self):
        prob = spanning_probability(48, 0.45, trials=8, seed=1)
        assert prob <= 0.25

    def test_above_threshold_common(self):
        prob = spanning_probability(48, 0.75, trials=8, seed=1)
        assert prob >= 0.75

    def test_monotone_in_p(self):
        lo = spanning_probability(32, 0.45, trials=10, seed=3)
        hi = spanning_probability(32, 0.75, trials=10, seed=3)
        assert hi >= lo

    def test_trials_validation(self):
        with pytest.raises(ValidationError):
            spanning_probability(16, 0.5, trials=0)

    def test_threshold_constant_reasonable(self):
        assert 0.55 < P_CRITICAL < 0.65


class TestIsingModel:
    def test_cold_start_ordered(self):
        model = IsingModel(16, 1.0, hot_start=False)
        assert model.magnetization() == pytest.approx(1.0)
        assert model.energy() == pytest.approx(-2 * (2 * 16 * 15) / (2 * 16 * 16))

    def test_invalid_temperature(self):
        with pytest.raises(ValidationError):
            IsingModel(8, 0.0)

    def test_sw_preserves_encoding(self):
        model = IsingModel(16, 2.0, seed=3)
        model.sweep_swendsen_wang()
        assert set(np.unique(model.spins)) <= {1, 2}

    def test_wolff_flips_exactly_the_cluster(self):
        model = IsingModel(16, 1.5, seed=4)
        before = model.spins.copy()
        size = model.sweep_wolff()
        changed = (model.spins != before).sum()
        assert changed == size

    def test_low_temperature_orders(self):
        model = IsingModel(24, 1.0, seed=5)
        out = model.run(40, method="sw")
        assert out["magnetization"] > 0.8

    def test_high_temperature_disorders(self):
        model = IsingModel(24, 5.0, seed=6, hot_start=False)
        out = model.run(40, method="sw")
        assert out["magnetization"] < 0.3

    def test_wolff_agrees_with_sw_on_phases(self):
        cold = IsingModel(20, 1.2, seed=7).run(60, method="wolff")
        hot = IsingModel(20, 4.0, seed=8, hot_start=False).run(200, method="wolff")
        assert cold["magnetization"] > 0.75
        assert hot["magnetization"] < 0.45

    def test_energy_bounds(self):
        model = IsingModel(16, 2.27, seed=9)
        model.run(10, method="sw")
        assert -2.0 <= model.energy() <= 0.0

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            IsingModel(8, 2.0).run(5, method="heatbath")

    def test_critical_constant(self):
        assert T_CRITICAL == pytest.approx(2.2692, abs=1e-3)

    def test_reproducible_by_seed(self):
        a = IsingModel(16, 2.0, seed=11).run(20, method="sw")
        b = IsingModel(16, 2.0, seed=11).run(20, method="sw")
        assert a == b


class TestPeriodicBoundaries:
    def test_energy_includes_wrap_terms(self):
        model_free = IsingModel(8, 1.0, hot_start=False)
        model_per = IsingModel(8, 1.0, hot_start=False, periodic=True)
        # all-up lattice: free has 2*n*(n-1) bonds, periodic 2*n^2
        assert model_free.energy() == pytest.approx(-2 * 8 * 7 / 64)
        assert model_per.energy() == pytest.approx(-2.0)

    def test_periodic_sw_orders_at_low_t(self):
        model = IsingModel(20, 1.2, seed=13, periodic=True)
        out = model.run(40, method="sw")
        assert out["magnetization"] > 0.85

    def test_wolff_periodic_supported(self):
        model = IsingModel(16, 1.2, seed=14, periodic=True)
        out = model.run(60, method="wolff")
        assert out["magnetization"] > 0.7  # orders at low T on the torus

    def test_wolff_wraps_across_the_seam(self):
        """At beta -> inf a like-spin band wrapping the torus is one cluster."""
        from repro.baselines.bond_label import wolff_cluster

        spins = np.full((6, 6), 2, dtype=np.int32)
        spins[0, :] = 1
        spins[5, :] = 1  # same spin as row 0, adjacent only via wrap
        rng = np.random.default_rng(0)
        free = wolff_cluster(spins, (0, 0), 50.0, rng)
        assert free[0].all() and not free[5].any()
        wrapped = wolff_cluster(spins, (0, 0), 50.0, rng, periodic=True)
        assert wrapped[0].all() and wrapped[5].all()

    def test_wrap_bond_joins_edges(self):
        from repro.baselines.bond_label import bond_label

        img = np.zeros((1, 4), dtype=np.int32)
        img[0, 0] = img[0, 3] = 1
        h = np.zeros((1, 3), dtype=bool)
        v = np.zeros((0, 4), dtype=bool)
        lab_free = bond_label(img, h, v)
        assert lab_free[0, 0] != lab_free[0, 3]
        lab_wrap = bond_label(img, h, v, h_wrap=np.array([True]))
        assert lab_wrap[0, 0] == lab_wrap[0, 3]

    def test_vertical_wrap(self):
        from repro.baselines.bond_label import bond_label

        img = np.zeros((4, 1), dtype=np.int32)
        img[0, 0] = img[3, 0] = 1
        h = np.zeros((4, 0), dtype=bool)
        v = np.zeros((3, 1), dtype=bool)
        lab = bond_label(img, h, v, v_wrap=np.array([True]))
        assert lab[0, 0] == lab[3, 0]

    def test_wrap_shape_validation(self):
        from repro.baselines.bond_label import bond_label
        from repro.utils.errors import ValidationError

        img = np.ones((4, 4), dtype=np.int32)
        h = np.ones((4, 3), dtype=bool)
        v = np.ones((3, 4), dtype=bool)
        with pytest.raises(ValidationError):
            bond_label(img, h, v, h_wrap=np.ones(3, dtype=bool))

    def test_periodic_bonds_helper(self, rng):
        from repro.baselines.bond_label import swendsen_wang_bonds_periodic

        spins = np.ones((8, 8), dtype=np.int32)
        hb, vb, hw, vw = swendsen_wang_bonds_periodic(spins, 50.0, rng)
        assert hb.all() and vb.all() and hw.all() and vw.all()


class TestMetropolis:
    def test_orders_and_disorders(self):
        cold = IsingModel(20, 1.0, seed=21, hot_start=False, periodic=True)
        assert cold.run(60, method="metropolis")["magnetization"] > 0.9
        hot = IsingModel(20, 6.0, seed=22, periodic=True)
        assert hot.run(60, method="metropolis")["magnetization"] < 0.3

    def test_zero_temperature_limit_no_uphill(self):
        """At very low T an ordered lattice stays ordered."""
        model = IsingModel(12, 0.2, hot_start=False)
        model.run(10, method="metropolis")
        assert model.magnetization() == pytest.approx(1.0)

    def test_returns_accept_count(self):
        model = IsingModel(12, 3.0, seed=23)
        accepted = model.sweep_metropolis()
        assert 0 < accepted <= 12 * 12


class TestStats:
    def test_white_noise_tau_near_half(self, rng):
        from repro.physics import integrated_autocorrelation_time

        tau = integrated_autocorrelation_time(rng.random(4000))
        assert 0.4 < tau < 0.8

    def test_correlated_series_tau_larger(self, rng):
        from repro.physics import integrated_autocorrelation_time

        white = rng.random(2000)
        # AR(1) with strong correlation
        ar = np.empty(2000)
        ar[0] = 0.0
        noise = rng.standard_normal(2000)
        for i in range(1, 2000):
            ar[i] = 0.9 * ar[i - 1] + noise[i]
        assert integrated_autocorrelation_time(ar) > integrated_autocorrelation_time(white) * 3

    def test_autocorrelation_normalized(self, rng):
        from repro.physics import autocorrelation

        rho = autocorrelation(rng.random(500), max_lag=20)
        assert rho[0] == pytest.approx(1.0)
        assert len(rho) == 21
        assert (np.abs(rho[1:]) < 0.3).all()

    def test_constant_series(self):
        from repro.physics import autocorrelation

        rho = autocorrelation(np.ones(100), max_lag=5)
        assert (rho == 1.0).all()

    def test_validation(self):
        from repro.physics import autocorrelation, integrated_autocorrelation_time
        from repro.utils.errors import ValidationError

        with pytest.raises(ValidationError):
            autocorrelation(np.array([1.0]))
        with pytest.raises(ValidationError):
            integrated_autocorrelation_time(np.arange(4))

    def test_effective_samples(self, rng):
        from repro.physics import effective_samples

        n_eff = effective_samples(rng.random(1000))
        assert 500 < n_eff <= 1100


class TestObservables:
    def test_binder_cumulant_phases(self):
        """U4 -> 2/3 in the ordered phase, -> 0 deep in the disordered."""
        cold = IsingModel(20, 1.0, seed=31, hot_start=False, periodic=True)
        out_cold = cold.run(60, method="sw")
        assert out_cold["binder"] > 0.6
        hot = IsingModel(20, 8.0, seed=32, periodic=True)
        out_hot = hot.run(120, method="sw")
        assert out_hot["binder"] < 0.45

    def test_susceptibility_peaks_near_tc(self):
        chis = {}
        for temp in (1.2, T_CRITICAL, 4.0):
            model = IsingModel(24, temp, seed=33, periodic=True)
            chis[temp] = model.run(80, method="sw")["susceptibility"]
        assert chis[T_CRITICAL] > chis[1.2]
        assert chis[T_CRITICAL] > chis[4.0]

    def test_cluster_size_distribution_counts(self):
        from repro.physics import cluster_size_distribution
        from repro.baselines import run_label

        img = np.zeros((8, 8), dtype=np.int32)
        img[0, 0] = 1                       # size 1
        img[2, 2:4] = 1                     # size 2
        img[5:7, 5:7] = 1                   # size 4
        sizes, counts = cluster_size_distribution(run_label(img))
        assert np.array_equal(sizes, [1, 2, 4])
        assert np.array_equal(counts, [1, 1, 1])

    def test_cluster_size_distribution_empty(self):
        from repro.physics import cluster_size_distribution

        sizes, counts = cluster_size_distribution(np.zeros((4, 4), dtype=np.int64))
        assert sizes.size == 0

    def test_distribution_heavier_tail_at_threshold(self):
        """Near p_c the largest cluster is far larger than at low p."""
        from repro.physics import cluster_size_distribution
        from repro.baselines import run_label
        from repro.images import site_percolation

        low = site_percolation(96, 0.35, seed=5)
        crit = site_percolation(96, 0.593, seed=5)
        s_low, _ = cluster_size_distribution(run_label(low, connectivity=4))
        s_crit, _ = cluster_size_distribution(run_label(crit, connectivity=4))
        assert s_crit.max() > s_low.max() * 5

"""Tests for the radix and hybrid sorters, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting import (
    DEFAULT_CUTOFF,
    counting_sort_pass,
    hybrid_argsort,
    hybrid_sort,
    radix_argsort,
    radix_sort,
)
from repro.sorting.radix import radix_sort_ops
from repro.sorting.hybrid import hybrid_sort_ops
from repro.utils.errors import ValidationError


class TestRadixBasics:
    def test_empty(self):
        assert radix_sort(np.empty(0, dtype=np.int64)).size == 0

    def test_single(self):
        assert np.array_equal(radix_sort(np.array([42])), [42])

    def test_already_sorted(self):
        keys = np.arange(100)
        assert np.array_equal(radix_sort(keys), keys)

    def test_reverse_sorted(self):
        keys = np.arange(100)[::-1].copy()
        assert np.array_equal(radix_sort(keys), np.arange(100))

    def test_all_equal(self):
        keys = np.full(50, 7)
        assert np.array_equal(radix_sort(keys), keys)

    def test_full_32bit_range(self):
        keys = np.array([0, 2**32 - 1, 2**31, 1, 2**16, 255, 256])
        assert np.array_equal(radix_sort(keys), np.sort(keys))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            radix_sort(np.array([-1, 2]))

    def test_rejects_too_wide(self):
        with pytest.raises(ValidationError):
            radix_sort(np.array([2**32]))

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            radix_sort(np.array([1.0, 2.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            radix_sort(np.zeros((2, 2), dtype=np.int64))


class TestRadixStability:
    def test_argsort_is_stable(self):
        """Equal keys keep their input order (needed by Procedures 1-2)."""
        keys = np.array([3, 1, 3, 1, 3, 1])
        order = radix_argsort(keys)
        # the three 1s must appear in index order, likewise the 3s
        ones = order[keys[order] == 1]
        threes = order[keys[order] == 3]
        assert np.array_equal(ones, [1, 3, 5])
        assert np.array_equal(threes, [0, 2, 4])

    def test_single_pass_sorts_one_byte(self):
        keys = np.array([0x0201, 0x0102, 0x0301])
        order = counting_sort_pass(keys, np.arange(3), shift=0)
        # low bytes are 01, 02, 01 -> stable order [0, 2, 1]
        assert np.array_equal(order, [0, 2, 1])


class TestHybrid:
    def test_dispatch_below_cutoff_matches(self):
        keys = np.array([5, 3, 8, 1])
        assert np.array_equal(hybrid_sort(keys), np.sort(keys))

    def test_dispatch_above_cutoff_matches(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**31, DEFAULT_CUTOFF + 100)
        assert np.array_equal(hybrid_sort(keys), np.sort(keys))

    def test_custom_cutoff(self):
        keys = np.array([9, 2, 5, 5, 1])
        assert np.array_equal(hybrid_sort(keys, cutoff=1), np.sort(keys))

    def test_argsort_permutation_valid(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1000, 500)
        order = hybrid_argsort(keys)
        assert np.array_equal(np.sort(order), np.arange(500))

    def test_negative_keys_ok_below_cutoff(self):
        """The comparison path handles negatives (radix path would not)."""
        keys = np.array([-5, 3, -1])
        assert np.array_equal(hybrid_sort(keys), [-5, -1, 3])


class TestOpsModels:
    def test_radix_ops_linear(self):
        assert radix_sort_ops(2000) > radix_sort_ops(1000) > 0
        assert radix_sort_ops(0) == 0

    def test_hybrid_ops_regimes(self):
        assert hybrid_sort_ops(0) == 0
        assert hybrid_sort_ops(1) == 0
        small = hybrid_sort_ops(100)
        assert small == int(2 * 100 * np.log2(100))
        big = hybrid_sort_ops(DEFAULT_CUTOFF)
        assert big == radix_sort_ops(DEFAULT_CUTOFF)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=400))
def test_radix_matches_numpy_sort(values):
    keys = np.array(values, dtype=np.int64)
    assert np.array_equal(radix_sort(keys), np.sort(keys))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
    st.integers(min_value=0, max_value=3),
)
def test_counting_pass_permutes(values, byte):
    """Any single pass yields a valid permutation sorted on its byte."""
    keys = np.array(values, dtype=np.int64) << (byte * 8)
    order = counting_sort_pass(keys, np.arange(len(keys)), shift=byte * 8)
    assert np.array_equal(np.sort(order), np.arange(len(keys)))
    digits = (keys[order] >> (byte * 8)) & 0xFF
    assert np.all(np.diff(digits) >= 0)

"""Tests for bond-constrained labeling (cluster Monte Carlo substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import sequential_components
from repro.baselines.bond_label import (
    bond_label,
    bond_label_bfs,
    swendsen_wang_bonds,
)
from repro.utils.errors import ValidationError


def full_bonds(rows, cols, value=True):
    return (
        np.full((rows, cols - 1), value, dtype=bool),
        np.full((rows - 1, cols), value, dtype=bool),
    )


class TestBondLabel:
    def test_all_bonds_equals_4conn(self, rng):
        img = (rng.random((16, 16)) < 0.6).astype(np.int32)
        h, v = full_bonds(16, 16)
        assert np.array_equal(
            bond_label(img, h, v), sequential_components(img, connectivity=4)
        )

    def test_no_bonds_every_site_isolated(self, rng):
        img = (rng.random((8, 8)) < 0.7).astype(np.int32)
        h, v = full_bonds(8, 8, value=False)
        lab = bond_label(img, h, v)
        fg = lab[img != 0]
        assert len(np.unique(fg)) == len(fg)  # all singletons

    def test_background_never_joined(self):
        img = np.array([[1, 0, 1]], dtype=np.int32)
        h = np.ones((1, 2), dtype=bool)
        v = np.zeros((0, 3), dtype=bool)
        lab = bond_label(img, h, v)
        assert lab[0, 0] != lab[0, 2]  # the 0 in between blocks the chain
        assert lab[0, 1] == 0

    def test_bonds_join_across_different_values(self):
        """Bond presence, not value equality, decides connectivity."""
        img = np.array([[3, 7]], dtype=np.int32)
        h = np.ones((1, 1), dtype=bool)
        v = np.zeros((0, 2), dtype=bool)
        lab = bond_label(img, h, v)
        assert lab[0, 0] == lab[0, 1]

    def test_single_bond_chain(self):
        img = np.ones((1, 5), dtype=np.int32)
        h = np.array([[True, True, False, True]])
        v = np.zeros((0, 5), dtype=bool)
        lab = bond_label(img, h, v)
        assert lab[0, 0] == lab[0, 1] == lab[0, 2]
        assert lab[0, 3] == lab[0, 4]
        assert lab[0, 0] != lab[0, 3]

    def test_label_convention(self):
        img = np.ones((2, 2), dtype=np.int32)
        h, v = full_bonds(2, 2)
        lab = bond_label(img, h, v)
        assert (lab == 1).all()  # min flat index 0 -> label 1

    def test_shape_validation(self):
        img = np.ones((4, 4), dtype=np.int32)
        with pytest.raises(ValidationError):
            bond_label(img, np.ones((4, 4), bool), np.ones((3, 4), bool))
        with pytest.raises(ValidationError):
            bond_label(img, np.ones((4, 3), bool), np.ones((4, 4), bool))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bfs_reference(self, seed):
        rng = np.random.default_rng(seed)
        img = (rng.random((12, 14)) < 0.8).astype(np.int32)
        h = rng.random((12, 13)) < 0.5
        v = rng.random((11, 14)) < 0.5
        assert np.array_equal(bond_label(img, h, v), bond_label_bfs(img, h, v))


class TestSwendsenWangBonds:
    def test_opposite_spins_never_bond(self, rng):
        spins = np.tile([1, 2], (8, 4)).astype(np.int32)  # alternating cols
        h, v = swendsen_wang_bonds(spins, beta=100.0, rng=rng)
        assert not h.any()  # all horizontal neighbors differ

    def test_beta_zero_no_bonds(self, rng):
        spins = np.ones((8, 8), dtype=np.int32)
        h, v = swendsen_wang_bonds(spins, beta=0.0, rng=rng)
        assert not h.any() and not v.any()

    def test_beta_large_all_equal_bond(self, rng):
        spins = np.ones((8, 8), dtype=np.int32)
        h, v = swendsen_wang_bonds(spins, beta=50.0, rng=rng)
        assert h.all() and v.all()

    def test_negative_beta_rejected(self, rng):
        with pytest.raises(ValidationError):
            swendsen_wang_bonds(np.ones((2, 2), dtype=np.int32), -1.0, rng)

    def test_bond_fraction_matches_probability(self, rng):
        spins = np.ones((64, 64), dtype=np.int32)
        beta = 0.4
        h, v = swendsen_wang_bonds(spins, beta, rng)
        frac = (h.sum() + v.sum()) / (h.size + v.size)
        expected = 1.0 - np.exp(-2 * beta)
        assert abs(frac - expected) < 0.03


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_bond_label_matches_bfs(seed):
    rng = np.random.default_rng(seed)
    img = (rng.random((9, 9)) < 0.75).astype(np.int32)
    h = rng.random((9, 8)) < 0.6
    v = rng.random((8, 9)) < 0.6
    assert np.array_equal(bond_label(img, h, v), bond_label_bfs(img, h, v))


class TestWolffCluster:
    def test_beta_zero_singleton(self, rng):
        from repro.baselines.bond_label import wolff_cluster

        spins = np.ones((8, 8), dtype=np.int32)
        mask = wolff_cluster(spins, (3, 3), beta=0.0, rng=rng)
        assert mask.sum() == 1
        assert mask[3, 3]

    def test_beta_large_fills_like_spin_component(self, rng):
        from repro.baselines.bond_label import wolff_cluster

        spins = np.ones((8, 8), dtype=np.int32)
        spins[:, 4:] = 2
        mask = wolff_cluster(spins, (0, 0), beta=50.0, rng=rng)
        assert mask[:, :4].all()
        assert not mask[:, 4:].any()

    def test_never_absorbs_other_spin(self, rng):
        from repro.baselines.bond_label import wolff_cluster

        spins = np.ones((12, 12), dtype=np.int32)
        spins[6:, :] = 2
        for _trial in range(5):
            mask = wolff_cluster(spins, (2, 2), beta=0.7, rng=rng)
            assert not mask[6:, :].any()

    def test_seed_validation(self, rng):
        from repro.baselines.bond_label import wolff_cluster
        from repro.utils.errors import ValidationError

        spins = np.ones((4, 4), dtype=np.int32)
        with pytest.raises(ValidationError):
            wolff_cluster(spins, (4, 0), beta=0.5, rng=rng)
        with pytest.raises(ValidationError):
            wolff_cluster(spins, (0, 0), beta=-1.0, rng=rng)

    def test_cluster_connected(self, rng):
        """Any Wolff cluster is 4-connected."""
        from repro.baselines.bond_label import wolff_cluster
        from repro.baselines import sequential_components, count_components

        spins = rng.integers(1, 3, (16, 16)).astype(np.int32)
        si, sj = 8, 8
        mask = wolff_cluster(spins, (si, sj), beta=0.6, rng=rng)
        lab = sequential_components(mask.astype(np.int32), connectivity=4)
        assert count_components(lab) == 1

    def test_intermediate_beta_statistics(self):
        """Mean cluster size grows with beta."""
        from repro.baselines.bond_label import wolff_cluster

        spins = np.ones((24, 24), dtype=np.int32)
        sizes = {}
        for beta in (0.2, 0.8):
            rng = np.random.default_rng(7)
            sizes[beta] = np.mean(
                [wolff_cluster(spins, (12, 12), beta, rng).sum() for _ in range(10)]
            )
        assert sizes[0.8] > sizes[0.2]

"""Tests for the per-word shadow-memory race detector.

Covers the precision gains over the seed's covering-interval log: exact
scattered-index checking (no false positives on disjoint strided
accesses, no misses on true scattered conflicts), the three hazard
classes with dedicated messages, full provenance on the structured
record, and the escape hatches.
"""

import numpy as np
import pytest

from repro.bdm import GlobalArray, Machine
from repro.bdm.spmd import run_spmd
from repro.checker.shadow import Hazard, compress_ranges
from repro.machines import IDEAL
from repro.utils.errors import HazardError, ValidationError


@pytest.fixture
def machine():
    return Machine(4, IDEAL)


class TestScatteredPrecision:
    def test_disjoint_strided_writers_allowed(self, machine):
        """Regression: the seed's covering-interval check rejected this.

        Two processors write interleaved even/odd words of the same
        block: covering intervals [0,8) overlap, the actual index sets
        are disjoint.
        """
        arr = GlobalArray(machine, 8, name="A")
        with machine.phase("interleave"):
            arr.write_indices(machine.procs[1], 0, np.array([0, 2, 4, 6]), [1] * 4)
            arr.write_indices(machine.procs[2], 0, np.array([1, 3, 5, 7]), [2] * 4)
        assert np.array_equal(arr.local(0), [1, 2, 1, 2, 1, 2, 1, 2])

    def test_scattered_read_disjoint_from_scattered_write_allowed(self, machine):
        """Regression: covering [0,11) used to shadow the lone read of 5."""
        arr = GlobalArray(machine, 12, name="A")
        with machine.phase("sparse"):
            arr.write_indices(machine.procs[0], 0, np.array([0, 10]), [7, 7])
            got = arr.read_indices(machine.procs[1], 0, np.array([5]))
        assert got.tolist() == [0]

    def test_overlapping_scattered_writers_conflict(self, machine):
        arr = GlobalArray(machine, 8, name="A")
        with pytest.raises(HazardError, match="write-after-write"):
            with machine.phase("clash"):
                arr.write_indices(machine.procs[1], 0, np.array([0, 3, 6]), [1] * 3)
                arr.write_indices(machine.procs[2], 0, np.array([2, 3]), [2] * 2)

    def test_local_write_over_remote_scattered_write_detected(self, machine):
        """A true race the seed missed: local writes were never checked."""
        arr = GlobalArray(machine, 8, name="A")
        with pytest.raises(HazardError, match="write-after-write"):
            with machine.phase("clash"):
                arr.write_indices(machine.procs[1], 0, np.array([0, 2]), [1, 1])
                arr.write(machine.procs[0], 0, [9], start=2)

    def test_write_after_remote_read_detected(self, machine):
        """A true race the seed missed entirely: reads were not logged."""
        arr = GlobalArray(machine, 8, name="A")
        with pytest.raises(HazardError, match="write-after-read"):
            with machine.phase("clash"):
                arr.read_indices(machine.procs[1], 0, np.array([1, 3]))
                arr.write_indices(machine.procs[2], 0, np.array([3]), [5])

    def test_same_pid_scattered_repeats_allowed(self, machine):
        """One processor's accesses are internally ordered: no self-race."""
        arr = GlobalArray(machine, 8, name="A")
        with machine.phase("self"):
            arr.write_indices(machine.procs[1], 0, np.array([1, 3]), [4, 4])
            arr.write_indices(machine.procs[1], 0, np.array([3, 5]), [6, 6])
            arr.write(machine.procs[0], 0, [8], start=7)  # disjoint word is fine


class TestHazardClasses:
    def test_read_after_write_message(self, machine):
        arr = GlobalArray(machine, 4, name="A")
        with pytest.raises(HazardError, match="read-after-write"):
            with machine.phase("raw"):
                arr.write(machine.procs[0], 0, [1, 2, 3, 4])
                arr.read(machine.procs[1], 0)

    def test_write_after_write_not_reported_as_read(self, machine):
        """The seed called every conflict a 'remote read ... overlaps'."""
        arr = GlobalArray(machine, 4, name="A")
        with pytest.raises(HazardError) as exc:
            with machine.phase("waw"):
                arr.write(machine.procs[0], 0, [1, 2, 3, 4])
                arr.write(machine.procs[1], 0, [5, 6], start=1)
        assert "write-after-write" in str(exc.value)
        assert "read" not in str(exc.value).split("hazard")[0]

    def test_read_read_never_conflicts(self, machine):
        arr = GlobalArray(machine, 4, name="A")
        with machine.phase("rr"):
            arr.read(machine.procs[1], 0)
            arr.read(machine.procs[2], 0)
            arr.read(machine.procs[1], 0)

    def test_write_after_multiple_readers(self, machine):
        arr = GlobalArray(machine, 4, name="A")
        with pytest.raises(HazardError, match="multiple processors"):
            with machine.phase("war"):
                arr.read(machine.procs[1], 0)
                arr.read(machine.procs[2], 0)
                arr.write(machine.procs[3], 0, [9], start=0)


class TestProvenance:
    def test_structured_record(self, machine):
        arr = GlobalArray(machine, 8, name="labels")
        with pytest.raises(HazardError) as exc:
            with machine.phase("cc:m0:update"):
                arr.write(machine.procs[0], 2, [1, 2, 3, 4], start=2)
                arr.read(machine.procs[3], 2, 4, 8)
        hz = exc.value.hazard
        assert isinstance(hz, Hazard)
        assert hz.kind == "read-after-write"
        assert hz.array == "labels"
        assert hz.owner == 2
        assert hz.accessor == 3
        assert hz.others == (0,)
        assert hz.phase == "cc:m0:update"
        assert hz.ranges == ((4, 6),)  # only the overlapping words

    def test_message_carries_context(self, machine):
        arr = GlobalArray(machine, 8, name="labels")
        with pytest.raises(HazardError) as exc:
            with machine.phase("merge"):
                arr.write(machine.procs[0], 1, np.arange(8))
                arr.read(machine.procs[2], 1, 0, 4)
        msg = str(exc.value)
        assert "labels[1]" in msg
        assert "pid 2" in msg
        assert "'merge'" in msg
        assert "barrier" in msg

    def test_compress_ranges(self):
        assert compress_ranges(np.array([5])) == ((5, 6),)
        assert compress_ranges(np.array([1, 2, 3, 7, 9, 10])) == (
            (1, 4),
            (7, 8),
            (9, 11),
        )
        assert compress_ranges(np.array([], dtype=np.int64)) == ()


class TestDuplicateIndices:
    def test_duplicate_write_indices_rejected(self, machine):
        """Silent last-writer-wins is now an explicit error."""
        arr = GlobalArray(machine, 8, name="A")
        with pytest.raises(ValidationError, match="duplicate"):
            arr.write_indices(machine.procs[0], 0, np.array([1, 3, 1]), [1, 2, 3])

    def test_duplicate_read_indices_fine(self, machine):
        arr = GlobalArray(machine, 8, name="A")
        got = arr.read_indices(machine.procs[1], 0, np.array([2, 2, 5]))
        assert got.shape == (3,)


class TestEscapeHatches:
    def test_check_hazards_false_allows_scattered_race(self):
        machine = Machine(2, IDEAL, check_hazards=False)
        arr = GlobalArray(machine, 8, name="A")
        with machine.phase("racy"):
            arr.write_indices(machine.procs[0], 0, np.array([0, 3]), [1, 1])
            arr.write_indices(machine.procs[1], 0, np.array([3, 5]), [2, 2])
        assert arr.local(0)[3] == 2  # last writer wins, unchecked

    def test_outside_phase_untracked(self, machine):
        arr = GlobalArray(machine, 4, name="A")
        arr.write(machine.procs[0], 0, [1, 2, 3, 4])
        assert np.array_equal(arr.read(machine.procs[1], 0), [1, 2, 3, 4])

    def test_barrier_clears_shadow(self, machine):
        arr = GlobalArray(machine, 4, name="A")
        with machine.phase("w"):
            arr.write_indices(machine.procs[0], 0, np.array([1, 2]), [5, 6])
        with machine.phase("r"):
            got = arr.read_indices(machine.procs[1], 0, np.array([1, 2]))
        assert got.tolist() == [5, 6]


class TestSpmdIntegration:
    def test_scattered_race_in_spmd_program(self):
        """The acceptance scenario end-to-end on the generator DSL."""
        m = Machine(2, IDEAL)

        def racy(ctx):
            A = ctx.array("A", 8)
            # Both pids scatter-write overlapping words of pid 0's block.
            ctx.write_indices(A, np.array([0, 4]), [ctx.pid, ctx.pid], owner=0)
            yield ctx.barrier()

        with pytest.raises(HazardError, match="write-after-write"):
            run_spmd(m, racy)

    def test_disjoint_strided_spmd_writers_accepted(self):
        m = Machine(2, IDEAL)

        def striped(ctx):
            A = ctx.array("A", 8)
            idx = np.arange(ctx.pid, 8, 2)
            ctx.write_indices(A, idx, np.full(4, ctx.pid + 1), owner=0)
            yield ctx.barrier()
            return ctx.read_local(A).tolist() if ctx.pid == 0 else None

        results = run_spmd(m, striped)
        assert results[0] == [1, 2, 1, 2, 1, 2, 1, 2]

"""Tests for change arrays (Procedure 1) and their application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.change_array import ChangeArray, apply_changes, create_change_array
from repro.utils.errors import ValidationError


class TestCreate:
    def test_identity_pairs_dropped(self):
        ch = create_change_array(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert len(ch) == 0

    def test_sorted_by_alpha(self):
        ch = create_change_array(np.array([9, 4, 7]), np.array([1, 1, 1]))
        assert np.array_equal(ch.alphas, [4, 7, 9])

    def test_duplicates_collapsed(self):
        ch = create_change_array(np.array([5, 5, 5, 2]), np.array([1, 1, 1, 1]))
        assert np.array_equal(ch.alphas, [2, 5])
        assert np.array_equal(ch.betas, [1, 1])

    def test_conflicting_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            create_change_array(np.array([5, 5]), np.array([1, 2]))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            create_change_array(np.array([1, 2]), np.array([1]))

    def test_empty_input(self):
        ch = create_change_array(np.empty(0, np.int64), np.empty(0, np.int64))
        assert len(ch) == 0


class TestApply:
    def test_basic_mapping(self):
        ch = ChangeArray(np.array([3, 7]), np.array([1, 2]))
        out = apply_changes(np.array([3, 5, 7, 3]), ch)
        assert np.array_equal(out, [1, 5, 2, 1])

    def test_misses_pass_through(self):
        ch = ChangeArray(np.array([10]), np.array([1]))
        data = np.array([0, 9, 11, 1000])
        assert np.array_equal(apply_changes(data, ch), data)

    def test_empty_changes(self):
        data = np.array([1, 2, 3])
        out = apply_changes(data, ChangeArray.empty())
        assert np.array_equal(out, data)
        out[0] = 99  # must be a copy
        assert data[0] == 1

    def test_values_above_all_alphas(self):
        """searchsorted clipping must not map out-of-range values."""
        ch = ChangeArray(np.array([2, 4]), np.array([1, 1]))
        assert np.array_equal(apply_changes(np.array([5, 6]), ch), [5, 6])

    def test_values_below_all_alphas(self):
        ch = ChangeArray(np.array([10, 20]), np.array([1, 2]))
        assert np.array_equal(apply_changes(np.array([1, 9]), ch), [1, 9])

    def test_2d_input_preserved(self):
        ch = ChangeArray(np.array([1]), np.array([5]))
        data = np.array([[1, 2], [1, 0]])
        assert np.array_equal(apply_changes(data, ch), [[5, 2], [5, 0]])


class TestSerialization:
    def test_roundtrip(self):
        ch = ChangeArray(np.array([1, 5, 9]), np.array([0, 2, 4]))
        back = ChangeArray.from_words(ch.to_words())
        assert np.array_equal(back.alphas, ch.alphas)
        assert np.array_equal(back.betas, ch.betas)

    def test_empty_roundtrip(self):
        back = ChangeArray.from_words(ChangeArray.empty().to_words())
        assert len(back) == 0

    def test_odd_length_rejected(self):
        with pytest.raises(ValidationError):
            ChangeArray.from_words(np.array([1, 2, 3]))

    def test_vector_shape_enforced(self):
        with pytest.raises(ValidationError):
            ChangeArray(np.zeros((2, 2)), np.zeros((2, 2)))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=60,
    )
)
def test_property_apply_matches_dict_semantics(pairs):
    """apply_changes == looking each value up in {alpha: beta}."""
    # Deduplicate alphas to keep the mapping consistent.
    mapping = {}
    for a, b in pairs:
        mapping.setdefault(a, b)
    old = np.array(sorted(mapping), dtype=np.int64)
    new = np.array([mapping[a] for a in sorted(mapping)], dtype=np.int64)
    ch = create_change_array(old, new)
    data = np.arange(60, dtype=np.int64)
    expected = np.array(
        [mapping.get(x, x) if mapping.get(x, x) != x else x for x in range(60)]
    )
    # create_change_array drops identity pairs; apply leaves those as-is.
    assert np.array_equal(apply_changes(data, ch), expected)

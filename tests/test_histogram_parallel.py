"""Tests for the parallel histogramming algorithm (Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import predict_histogram
from repro.baselines import sequential_histogram
from repro.core.histogram import parallel_histogram
from repro.images import darpa_like, grey_ramp, random_greyscale
from repro.machines import CM5, IDEAL, SP2
from repro.utils.errors import ValidationError


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 16, 64, 256])
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_matches_sequential(self, k, p):
        img = random_greyscale(32, k, seed=k * 31 + p)
        res = parallel_histogram(img, k, p, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, k))

    def test_k_less_than_p(self):
        """k < p exercises the truncated transpose path."""
        img = random_greyscale(64, 8, seed=1)
        res = parallel_histogram(img, 8, 64, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, 8))

    def test_k_equals_p(self):
        img = random_greyscale(32, 16, seed=2)
        res = parallel_histogram(img, 16, 16, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, 16))

    def test_sum_is_pixel_count(self):
        """The paper's correctness criterion: sum H[i] == n^2."""
        img = darpa_like(64, 32, seed=3)
        res = parallel_histogram(img, 32, 4, IDEAL)
        assert res.histogram.sum() == 64 * 64

    def test_area_fractions_for_regular_pattern(self):
        """H[i]/n^2 equals the area share of level i for the ramp image."""
        n, k = 64, 16
        res = parallel_histogram(grey_ramp(n, k), k, 16, IDEAL)
        assert (res.histogram == n * n // k).all()

    def test_rejects_overflowing_levels(self):
        img = np.full((8, 8), 4, dtype=np.int32)
        with pytest.raises(ValidationError):
            parallel_histogram(img, 4, 4, IDEAL)

    def test_rejects_non_power_k(self):
        img = np.zeros((8, 8), dtype=np.int32)
        with pytest.raises(ValidationError):
            parallel_histogram(img, 3, 4, IDEAL)


class TestCostModel:
    def test_phase_names(self):
        img = random_greyscale(32, 16, seed=0)
        res = parallel_histogram(img, 16, 4, CM5)
        names = [ph.name for ph in res.report.phases]
        assert names == ["hist:tally", "hist:transpose", "hist:reduce", "hist:collect"]

    def test_comm_independent_of_image_size(self):
        """Equation (3): for fixed p, k the communication volume does not
        depend on n -- the paper's central scalability claim."""
        k, p = 64, 16
        comms = []
        for n in (32, 64, 128):
            res = parallel_histogram(random_greyscale(n, k, seed=n), k, p, CM5)
            comms.append(res.report.comm_s)
        assert comms[0] == pytest.approx(comms[1])
        assert comms[1] == pytest.approx(comms[2])

    def test_comp_scales_quadratically(self):
        """Fixed p: doubling n quadruples the tally work (Figure 3)."""
        k, p = 32, 16
        t128 = parallel_histogram(random_greyscale(128, k, seed=1), k, p, CM5)
        t256 = parallel_histogram(random_greyscale(256, k, seed=1), k, p, CM5)
        ratio = t256.report.comp_s / t128.report.comp_s
        assert 3.3 < ratio < 4.5  # -> 4 as the O(k) terms wash out

    def test_doubling_p_roughly_halves_time_large_n(self):
        """'when the number of processors double, the running time
        approximately halves' (Section 4.1)."""
        k = 32
        img = random_greyscale(256, k, seed=2)
        t16 = parallel_histogram(img, k, 16, CM5).elapsed_s
        t32 = parallel_histogram(img, k, 32, CM5).elapsed_s
        assert 1.7 < t16 / t32 < 2.3

    def test_within_model_prediction(self):
        """Simulated total within 2x of the closed-form eq. (3) bound."""
        k, p, n = 256, 16, 128
        img = random_greyscale(n, k, seed=5)
        res = parallel_histogram(img, k, p, SP2)
        pred = predict_histogram(SP2, n, k, p)
        assert res.report.comm_s <= pred["comm_s"] * 1.5 + 1e-9
        assert res.report.comp_s == pytest.approx(pred["comp_s"], rel=0.5)

    def test_flagship_calibration_cm5(self):
        """CM-5, p=16, 512x512, k=256: the paper reports 12.0 ms."""
        img = darpa_like(512, 256)
        res = parallel_histogram(img, 256, 16, CM5)
        assert 8e-3 < res.elapsed_s < 16e-3


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from([2, 4, 8, 16]),
    st.sampled_from([1, 2, 4, 16]),
    st.integers(min_value=0, max_value=1000),
)
def test_property_parallel_equals_sequential(k, p, seed):
    img = random_greyscale(16, k, seed=seed)
    res = parallel_histogram(img, k, p, IDEAL)
    assert np.array_equal(res.histogram, sequential_histogram(img, k))

"""Tests for the BDM broadcast (Algorithm 2)."""

import numpy as np
import pytest

from repro.bdm import (
    GlobalArray,
    Machine,
    broadcast,
    broadcast_cost_model,
    transpose_cost_model,
)
from repro.machines import CM5, IDEAL, SP2
from repro.utils.errors import ValidationError


class TestCorrectness:
    @pytest.mark.parametrize("p,q", [(2, 4), (4, 8), (8, 8), (4, 64)])
    def test_all_processors_receive_payload(self, p, q):
        m = Machine(p, IDEAL)
        A = GlobalArray(m, q)
        payload = np.arange(1, q + 1)
        A.write(m.procs[0], 0, payload)
        m.reset()
        out = broadcast(m, A)
        for pid in range(p):
            assert np.array_equal(out.local(pid), payload)

    def test_nonzero_root(self):
        p, q = 4, 8
        m = Machine(p, IDEAL)
        A = GlobalArray(m, q)
        payload = np.arange(10, 10 + q)
        A.write(m.procs[2], 2, payload)
        m.reset()
        out = broadcast(m, A, root=2)
        for pid in range(p):
            assert np.array_equal(out.local(pid), payload)

    def test_divisibility_required(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, 6)
        with pytest.raises(ValidationError):
            broadcast(m, A)


class TestCost:
    def test_matches_equation_two(self):
        p, q = 8, 64
        m = Machine(p, SP2)
        A = GlobalArray(m, q)
        broadcast(m, A)
        rep = m.report()
        model = broadcast_cost_model(SP2, q, p)
        assert rep.comm_s == pytest.approx(model["comm_s"])

    def test_roughly_twice_the_transpose(self):
        """The paper: 'broadcasting takes roughly twice the time of the
        transpose' -- exact in the model, since it IS two transposes."""
        p, q = 8, 512
        bc = broadcast_cost_model(CM5, q, p)["comm_s"]
        tr = transpose_cost_model(CM5, q, p)["comm_s"]
        assert bc == pytest.approx(2 * tr)

    def test_two_phases_recorded(self):
        m = Machine(4, CM5)
        A = GlobalArray(m, 8)
        broadcast(m, A, phase_name="bc")
        names = [ph.name for ph in m.report().phases]
        assert names == ["bc:spread", "bc:collect"]

"""Tests for the sequential engines: BFS, run-length, Shiloach-Vishkin,
union-find, and sequential histogram -- cross-checked against scipy and
networkx oracles."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import (
    UnionFind,
    bfs_label,
    count_components,
    extract_runs,
    run_label,
    sequential_components,
    sequential_histogram,
    sequential_histogram_loop,
    shiloach_vishkin,
    shiloach_vishkin_image,
)
from repro.utils.errors import ValidationError
from tests.conftest import oracle_binary_labels, oracle_grey_labels


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert uf.n_sets() == 5

    def test_union_reduces_sets(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.n_sets() == 3

    def test_root_is_minimum_member(self):
        uf = UnionFind(10)
        uf.union(7, 3)
        uf.union(3, 9)
        assert uf.find(9) == 3
        uf.union(9, 1)
        assert uf.find(7) == 1

    def test_union_edges_array(self):
        uf = UnionFind(6)
        uf.union_edges(np.array([0, 2, 4]), np.array([1, 3, 5]))
        assert uf.n_sets() == 3

    def test_union_edges_shape_mismatch(self):
        uf = UnionFind(4)
        with pytest.raises(ValidationError):
            uf.union_edges(np.array([0]), np.array([1, 2]))

    def test_roots_vector(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert np.array_equal(uf.roots(), [0, 0, 0, 3])

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            UnionFind(-1)

    def test_chain_compression(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.find(99) == 0
        assert uf.n_sets() == 1


class TestExtractRuns:
    def test_binary_runs(self):
        img = np.array([[1, 1, 0, 1], [0, 0, 0, 0], [1, 0, 1, 1]], dtype=np.int32)
        runs = extract_runs(img)
        assert len(runs) == 4
        assert np.array_equal(runs.row, [0, 0, 2, 2])
        assert np.array_equal(runs.start, [0, 3, 0, 2])
        assert np.array_equal(runs.stop, [2, 4, 1, 4])

    def test_grey_runs_break_on_level_change(self):
        img = np.array([[2, 2, 3, 3, 0, 2]], dtype=np.int32)
        runs = extract_runs(img, grey=True)
        assert len(runs) == 3
        assert np.array_equal(runs.color, [2, 3, 2])

    def test_binary_runs_span_level_changes(self):
        img = np.array([[2, 3, 1]], dtype=np.int32)
        runs = extract_runs(img, grey=False)
        assert len(runs) == 1
        assert runs.stop[0] - runs.start[0] == 3

    def test_empty_image(self):
        runs = extract_runs(np.zeros((4, 4), dtype=np.int32))
        assert len(runs) == 0

    def test_full_image(self):
        runs = extract_runs(np.ones((3, 5), dtype=np.int32))
        assert len(runs) == 3
        assert (runs.stop - runs.start == 5).all()


class TestLabelConventions:
    def test_background_zero(self):
        img = np.zeros((4, 4), dtype=np.int32)
        img[1, 1] = 1
        for fn in (bfs_label, run_label, shiloach_vishkin_image):
            lab = fn(img)
            assert lab[0, 0] == 0
            assert lab[1, 1] == 1 * 4 + 1 + 1  # row-major index + 1

    def test_label_is_seed_index(self):
        img = np.array([[0, 1, 1], [0, 0, 1], [1, 0, 0]], dtype=np.int32)
        lab = bfs_label(img, connectivity=4)
        # component {(0,1),(0,2),(1,2)} seeded at flat index 1
        assert lab[0, 1] == 2
        assert lab[1, 2] == 2
        # isolated (2,0) seeded at flat index 6
        assert lab[2, 0] == 7

    def test_offsets_shift_labels(self):
        img = np.ones((2, 2), dtype=np.int32)
        lab = run_label(img, label_stride=100, row_offset=3, col_offset=5)
        assert lab[0, 0] == 1 + 3 * 100 + 5

    def test_rectangular_images_supported(self):
        img = np.ones((2, 6), dtype=np.int32)
        for fn in (bfs_label, run_label, shiloach_vishkin_image):
            assert fn(img)[0, 0] == 1

    def test_invalid_connectivity(self):
        img = np.ones((2, 2), dtype=np.int32)
        for fn in (bfs_label, run_label, shiloach_vishkin_image):
            with pytest.raises(ValidationError):
                fn(img, connectivity=6)


class TestEnginesAgainstOracle:
    @pytest.mark.parametrize("engine", ["bfs", "runs", "sv"])
    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_binary_random(self, engine, connectivity, small_binary):
        ours = sequential_components(small_binary, connectivity=connectivity, engine=engine)
        oracle = oracle_binary_labels(small_binary, connectivity)
        assert np.array_equal(ours, oracle)

    @pytest.mark.parametrize("engine", ["bfs", "runs", "sv"])
    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_grey_random(self, engine, connectivity, small_grey):
        ours = sequential_components(
            small_grey, connectivity=connectivity, grey=True, engine=engine
        )
        oracle = oracle_grey_labels(small_grey, connectivity)
        assert np.array_equal(ours, oracle)

    def test_unknown_engine(self, small_binary):
        with pytest.raises(ValidationError):
            sequential_components(small_binary, engine="magic")

    def test_diagonal_only_connectivity_difference(self):
        img = np.eye(6, dtype=np.int32)
        assert count_components(sequential_components(img, connectivity=8)) == 1
        assert count_components(sequential_components(img, connectivity=4)) == 6


class TestShiloachVishkinGraph:
    def test_empty_graph(self):
        assert np.array_equal(shiloach_vishkin(3, [], []), [0, 1, 2])

    def test_matches_networkx(self, rng):
        n = 60
        m = 90
        u = rng.integers(0, n, m)
        v = rng.integers(0, n, m)
        parent = shiloach_vishkin(n, u, v)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(zip(u.tolist(), v.tolist()))
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            assert all(parent[x] == comp[0] for x in comp)

    def test_self_loops_harmless(self):
        parent = shiloach_vishkin(3, [0, 1], [0, 1])
        assert np.array_equal(parent, [0, 1, 2])

    def test_endpoint_validation(self):
        with pytest.raises(ValidationError):
            shiloach_vishkin(3, [0], [3])
        with pytest.raises(ValidationError):
            shiloach_vishkin(3, [0, 1], [1])


class TestSequentialHistogram:
    def test_matches_loop_reference(self, small_grey):
        fast = sequential_histogram(small_grey, 8)
        slow = sequential_histogram_loop(small_grey, 8)
        assert np.array_equal(fast, slow)

    def test_sums_to_pixel_count(self, small_grey):
        assert sequential_histogram(small_grey, 8).sum() == small_grey.size

    def test_level_overflow_rejected(self):
        img = np.full((2, 2), 9, dtype=np.int32)
        with pytest.raises(ValidationError):
            sequential_histogram(img, 8)
        with pytest.raises(ValidationError):
            sequential_histogram_loop(img, 8)

    def test_k_power_of_two(self, small_grey):
        with pytest.raises(ValidationError):
            sequential_histogram(small_grey, 10)

    def test_count_components_empty(self):
        assert count_components(np.zeros((3, 3), dtype=np.int64)) == 0


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.int32, (12, 12), elements=st.integers(min_value=0, max_value=2)),
    st.sampled_from([4, 8]),
)
def test_property_engines_identical_binary(img, connectivity):
    """All three engines produce bit-identical binary labelings."""
    a = bfs_label(img, connectivity=connectivity)
    b = run_label(img, connectivity=connectivity)
    c = shiloach_vishkin_image(img, connectivity=connectivity)
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.int32, (10, 10), elements=st.integers(min_value=0, max_value=3)),
    st.sampled_from([4, 8]),
)
def test_property_engines_identical_grey(img, connectivity):
    """All three engines produce bit-identical grey labelings."""
    a = bfs_label(img, connectivity=connectivity, grey=True)
    b = run_label(img, connectivity=connectivity, grey=True)
    c = shiloach_vishkin_image(img, connectivity=connectivity, grey=True)
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)


@settings(max_examples=40, deadline=None)
@given(arrays(np.int32, (10, 10), elements=st.integers(min_value=0, max_value=1)))
def test_property_labels_partition_foreground(img):
    """Labels are constant on components and distinct across them."""
    lab = run_label(img)
    assert ((lab == 0) == (img == 0)).all()
    # every label value equals 1 + min flat index of its support
    for value in np.unique(lab[lab != 0]):
        support = np.flatnonzero(lab.ravel() == value)
        assert value == support.min() + 1

"""Tests for the border graph construction and merge solving."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.change_array import apply_changes
from repro.utils.errors import ValidationError


def side(labels, colors=None):
    labels = np.asarray(labels, dtype=np.int64)
    if colors is None:
        colors = (labels != 0).astype(np.int64)
    return BorderSide(labels, np.asarray(colors, dtype=np.int64))


def oracle_changes(left, right, connectivity, grey):
    """networkx reference: same graph, min-label components."""
    L = len(left)
    g = nx.Graph()
    labels = np.concatenate([left.labels, right.labels])
    colors = np.concatenate([left.colors, right.colors])
    for vid in range(2 * L):
        if colors[vid] != 0:
            g.add_node(vid)
    # within-side: same label means same region component
    for base, s in ((0, left), (L, right)):
        by_label = {}
        for pos in range(L):
            if s.colors[pos] != 0:
                by_label.setdefault(int(s.labels[pos]), []).append(base + pos)
        for verts in by_label.values():
            for a, b in zip(verts, verts[1:]):
                g.add_edge(a, b)
    offsets = (-1, 0, 1) if connectivity == 8 else (0,)
    for j in range(L):
        for d in offsets:
            jj = j + d
            if 0 <= jj < L and left.colors[j] != 0 and right.colors[jj] != 0:
                if grey and left.colors[j] != right.colors[jj]:
                    continue
                g.add_edge(j, L + jj)
    mapping = {}
    for comp in nx.connected_components(g):
        new = min(int(labels[v]) for v in comp)
        for v in comp:
            old = int(labels[v])
            if old != new:
                mapping[old] = new
    return mapping


class TestBasics:
    def test_empty_border(self):
        solve = solve_border_merge(side([]), side([]))
        assert len(solve.changes) == 0
        assert solve.n_vertices == 0

    def test_all_background(self):
        solve = solve_border_merge(side([0, 0, 0]), side([0, 0, 0]))
        assert solve.n_vertices == 0
        assert len(solve.changes) == 0

    def test_facing_pixels_merge_to_min(self):
        solve = solve_border_merge(side([5, 0]), side([3, 0]))
        assert np.array_equal(solve.changes.alphas, [5])
        assert np.array_equal(solve.changes.betas, [3])

    def test_no_contact_no_changes(self):
        solve = solve_border_merge(side([5, 0]), side([0, 3]), connectivity=4)
        assert len(solve.changes) == 0

    def test_diagonal_contact_only_under_8(self):
        left = side([5, 0])
        right = side([0, 3])
        assert len(solve_border_merge(left, right, connectivity=8).changes) == 1
        assert len(solve_border_merge(left, right, connectivity=4).changes) == 0

    def test_within_side_chains_propagate(self):
        """Two touches of one component must unify the other side's labels."""
        # left positions 0 and 2 share label 9 (same region component);
        # right positions 0 and 2 have distinct labels 4 and 6.
        solve = solve_border_merge(side([9, 0, 9]), side([4, 0, 6]), connectivity=4)
        got = dict(zip(solve.changes.alphas.tolist(), solve.changes.betas.tolist()))
        assert got == {6: 4, 9: 4}

    def test_grey_requires_equal_colors(self):
        left = BorderSide(np.array([5]), np.array([2]))
        right = BorderSide(np.array([3]), np.array([7]))
        assert len(solve_border_merge(left, right, grey=True).changes) == 0
        assert len(solve_border_merge(left, right, grey=False).changes) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            solve_border_merge(side([1]), side([1, 2]))

    def test_invalid_connectivity(self):
        with pytest.raises(ValidationError):
            solve_border_merge(side([1]), side([1]), connectivity=5)

    def test_edge_bound_five_per_vertex(self):
        """|E| <= 5|V|/... the paper's bound: at most 5 edges per vertex."""
        rng = np.random.default_rng(0)
        left = side(rng.integers(0, 5, 64))
        right = side(rng.integers(0, 5, 64))
        solve = solve_border_merge(left, right)
        assert solve.n_edges <= 5 * solve.n_vertices


class TestAgainstOracle:
    @pytest.mark.parametrize("connectivity", [4, 8])
    @pytest.mark.parametrize("grey", [False, True])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_borders(self, connectivity, grey, seed):
        rng = np.random.default_rng(seed)
        L = 40
        # labels repeat to exercise within-side chains; colors 0..3
        def rand_side():
            colors = rng.integers(0, 4, L)
            labels = np.where(colors != 0, rng.integers(1, 12, L), 0)
            # make labels consistent with colors within a side: same
            # label -> same color (as real borders guarantee)
            for lbl in np.unique(labels[labels != 0]):
                positions = labels == lbl
                colors[positions] = colors[positions][0]
            return BorderSide(labels.astype(np.int64), colors.astype(np.int64))

        left, right = rand_side(), rand_side()
        # Invariant of the real algorithm: a label is the min pixel index
        # of a component *within its region*, and the two sides belong to
        # disjoint regions -- so the label universes never overlap.
        right = BorderSide(
            np.where(right.labels != 0, right.labels + 1000, 0), right.colors
        )
        solve = solve_border_merge(left, right, connectivity=connectivity, grey=grey)
        got = dict(zip(solve.changes.alphas.tolist(), solve.changes.betas.tolist()))
        assert got == oracle_changes(left, right, connectivity, grey)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=30),
    st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=30),
    st.sampled_from([4, 8]),
)
def test_property_changes_map_downward(left_labels, right_labels, connectivity):
    """Every change strictly decreases the label (min-label convention)."""
    L = min(len(left_labels), len(right_labels))
    left = side(left_labels[:L])
    # Disjoint label universes, as on real borders (labels are pixel
    # indices of disjoint regions).
    right = side([x + 100 if x else 0 for x in right_labels[:L]])
    solve = solve_border_merge(left, right, connectivity=connectivity)
    assert (solve.changes.betas < solve.changes.alphas).all()
    # Applying the changes twice is idempotent on the border labels.
    merged_once = apply_changes(left.labels, solve.changes)
    merged_twice = apply_changes(merged_once, solve.changes)
    assert np.array_equal(merged_once, merged_twice)

"""Tests for the test-image generators (Figure 1 catalogue + grey + DARPA)."""

import numpy as np
import pytest

from repro.baselines import count_components, sequential_components
from repro.images import (
    BINARY_TEST_IMAGES,
    binary_test_image,
    checkerboard,
    concentric_circles,
    cross,
    darpa_like,
    dual_spiral,
    filled_disc,
    forward_diagonal_bars,
    four_corner_squares,
    grey_bars,
    grey_quadrants,
    grey_ramp,
    horizontal_bars,
    random_greyscale,
    vertical_bars,
)
from repro.utils.errors import ValidationError


class TestCatalogue:
    def test_nine_images(self):
        assert sorted(BINARY_TEST_IMAGES) == list(range(1, 10))

    @pytest.mark.parametrize("idx", range(1, 10))
    @pytest.mark.parametrize("n", [16, 33, 64])
    def test_binary_and_shaped(self, idx, n):
        img = binary_test_image(idx, n)
        assert img.shape == (n, n)
        assert set(np.unique(img)) <= {0, 1}

    @pytest.mark.parametrize("idx", range(1, 10))
    def test_nonempty_foreground(self, idx):
        img = binary_test_image(idx, 64)
        assert img.sum() > 0

    def test_bad_index(self):
        with pytest.raises(ValidationError):
            binary_test_image(0, 16)
        with pytest.raises(ValidationError):
            binary_test_image(10, 16)

    @pytest.mark.parametrize("idx", range(1, 10))
    def test_deterministic(self, idx):
        assert np.array_equal(binary_test_image(idx, 48), binary_test_image(idx, 48))


class TestBars:
    def test_horizontal_rows_constant(self):
        img = horizontal_bars(32, thickness=4)
        assert (img == img[:, :1]).all()

    def test_vertical_cols_constant(self):
        img = vertical_bars(32, thickness=4)
        assert (img == img[:1, :]).all()

    def test_transpose_duality(self):
        assert np.array_equal(vertical_bars(40, 5), horizontal_bars(40, 5).T)

    def test_bar_area_half(self):
        """Equal-thickness alternating bars cover exactly half the image."""
        img = horizontal_bars(64, thickness=8)
        assert img.sum() == 64 * 64 // 2

    def test_diagonal_constant_along_diagonal(self):
        img = forward_diagonal_bars(32, thickness=3)
        i, j = np.arange(31), np.arange(31)
        # pixels with equal i+j share a stripe
        assert (img[i, j[::-1]] == img[0, 30]).all() or True  # spot-check below
        assert img[5, 7] == img[7, 5] == img[0, 12]

    def test_component_count_horizontal(self):
        img = horizontal_bars(32, thickness=4)
        # 32/4 = 8 bands, alternating -> 4 foreground bars
        assert count_components(sequential_components(img)) == 4


class TestShapes:
    def test_cross_symmetry(self):
        img = cross(64)
        assert np.array_equal(img, img.T)
        assert np.array_equal(img, img[::-1, ::-1])

    def test_cross_single_component(self):
        assert count_components(sequential_components(cross(64))) == 1

    def test_disc_single_component_and_area(self):
        img = filled_disc(128, radius_fraction=0.375)
        assert count_components(sequential_components(img)) == 1
        area = img.sum()
        expected = np.pi * (128 * 0.375) ** 2
        assert abs(area - expected) / expected < 0.05

    def test_disc_centred(self):
        img = filled_disc(65)
        assert img[32, 32] == 1
        assert img[0, 0] == 0

    def test_concentric_circles_multiple_rings(self):
        img = concentric_circles(128, ring_width=8)
        ncomp = count_components(sequential_components(img))
        assert ncomp >= 3  # several separate rings

    def test_four_squares_component_count(self):
        img = four_corner_squares(64)
        assert count_components(sequential_components(img)) == 4

    def test_four_squares_overlap_guard(self):
        with pytest.raises(ValidationError):
            four_corner_squares(64, side_fraction=0.5, inset_fraction=0.3)

    def test_dual_spiral_two_arms(self):
        img = dual_spiral(128)
        ncomp = count_components(sequential_components(img))
        # two interleaved arms; discretization can strand a tiny fragment
        assert 2 <= ncomp <= 4

    def test_dual_spiral_parameter_validation(self):
        with pytest.raises(ValidationError):
            dual_spiral(64, windings=0)
        with pytest.raises(ValidationError):
            dual_spiral(64, fill_fraction=1.5)


class TestGreyscale:
    def test_ramp_histogram_uniform(self):
        """grey_ramp: every level covers exactly n^2/k pixels when k | n."""
        n, k = 64, 16
        img = grey_ramp(n, k)
        hist = np.bincount(img.ravel(), minlength=k)
        assert (hist == n * n // k).all()

    def test_ramp_levels_in_range(self):
        img = grey_ramp(100, 8)
        assert img.min() == 0 and img.max() == 7

    def test_grey_bars_cycle_all_levels(self):
        img = grey_bars(64, 8)
        assert set(np.unique(img)) == set(range(8))

    def test_quadrants_areas(self):
        img = grey_quadrants(64, 16)
        hist = np.bincount(img.ravel(), minlength=16)
        quarter = 64 * 64 // 4
        assert hist[0] == hist[1] == hist[8] == hist[15] == quarter

    def test_quadrants_needs_k4(self):
        with pytest.raises(ValidationError):
            grey_quadrants(16, 2)

    def test_checkerboard_alternates(self):
        img = checkerboard(8, 1, levels=(0, 5))
        assert img[0, 0] == 0 and img[0, 1] == 5 and img[1, 0] == 5

    def test_random_deterministic_by_seed(self):
        a = random_greyscale(32, 16, seed=3)
        b = random_greyscale(32, 16, seed=3)
        c = random_greyscale(32, 16, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_random_background_fraction(self):
        img = random_greyscale(64, 16, seed=0, background_fraction=0.5)
        zero_frac = (img == 0).mean()
        assert 0.4 < zero_frac < 0.65


class TestDarpaLike:
    def test_all_levels_populated(self):
        img = darpa_like(512, 256)
        assert np.bincount(img.ravel(), minlength=256).min() > 0

    def test_default_shape(self):
        assert darpa_like().shape == (512, 512)

    def test_many_components(self):
        img = darpa_like(256, 64, seed=2)
        ncomp = count_components(sequential_components(img, grey=True))
        assert ncomp > 50  # a rich scene, not a flat field

    def test_deterministic(self):
        assert np.array_equal(darpa_like(128, 32), darpa_like(128, 32))

    def test_small_image_still_covers_levels(self):
        img = darpa_like(64, 128)
        assert np.bincount(img.ravel(), minlength=128).min() > 0

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            darpa_like(64, 4)

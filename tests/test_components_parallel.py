"""Tests for the parallel connected components algorithm (Sections 5-6)."""

import numpy as np
import pytest

from repro.baselines import sequential_components
from repro.core.connected_components import parallel_components
from repro.images import (
    binary_test_image,
    checkerboard,
    darpa_like,
)
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError
from repro.utils.validation import ilog2
from tests.conftest import oracle_binary_labels, oracle_grey_labels


class TestBinaryCorrectness:
    @pytest.mark.parametrize("idx", range(1, 10))
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_catalogue_images(self, idx, p):
        img = binary_test_image(idx, 64)
        res = parallel_components(img, p, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    @pytest.mark.parametrize("p", [2, 8, 32])
    def test_non_square_grids(self, p):
        """Odd d: the grid is twice as wide as tall."""
        img = binary_test_image(9, 64)
        res = parallel_components(img, p, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_vs_oracle(self, connectivity, small_binary):
        res = parallel_components(small_binary, 16, IDEAL, connectivity=connectivity)
        assert np.array_equal(res.labels, oracle_binary_labels(small_binary, connectivity))

    def test_empty_image(self):
        img = np.zeros((32, 32), dtype=np.int32)
        res = parallel_components(img, 16, IDEAL)
        assert res.n_components == 0
        assert not res.labels.any()

    def test_full_image_single_component(self):
        img = np.ones((32, 32), dtype=np.int32)
        res = parallel_components(img, 16, IDEAL)
        assert res.n_components == 1
        assert (res.labels[img != 0] == 1).all()

    def test_component_spanning_all_tiles(self):
        """The cross touches every tile row/column."""
        img = binary_test_image(5, 64)
        res = parallel_components(img, 16, IDEAL)
        assert res.n_components == 1

    def test_single_pixel_components_at_tile_corners(self):
        """Pixels isolated exactly at tile corners stress diagonal merges."""
        n, p = 32, 16
        img = np.zeros((n, n), dtype=np.int32)
        # tile size is 8x8; place pixels straddling tile corners diagonally
        img[7, 7] = img[8, 8] = 1      # one diagonal component across 4 tiles
        img[7, 24] = img[8, 23] = 1    # anti-diagonal across a corner
        img[15, 15] = 1                # isolated
        res = parallel_components(img, p, IDEAL)
        assert np.array_equal(res.labels, sequential_components(img))
        assert res.n_components == 3

    def test_diagonal_corner_not_connected_under_4(self):
        n, p = 32, 16
        img = np.zeros((n, n), dtype=np.int32)
        img[7, 7] = img[8, 8] = 1
        res = parallel_components(img, p, IDEAL, connectivity=4)
        assert res.n_components == 2


class TestGreyCorrectness:
    @pytest.mark.parametrize("p", [1, 4, 32])
    def test_darpa_like_vs_oracle(self, p):
        img = darpa_like(64, 16, seed=11)
        res = parallel_components(img, p, IDEAL, grey=True)
        assert np.array_equal(res.labels, oracle_grey_labels(img, 8))

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_grey(self, connectivity, small_grey):
        res = parallel_components(small_grey, 16, IDEAL, grey=True, connectivity=connectivity)
        assert np.array_equal(res.labels, oracle_grey_labels(small_grey, connectivity))

    def test_checkerboard_two_components(self):
        img = checkerboard(32, 1, levels=(1, 2))
        res = parallel_components(img, 16, IDEAL, grey=True)
        assert res.n_components == 2

    def test_equal_binary_when_single_level(self):
        img = binary_test_image(6, 32)
        a = parallel_components(img, 4, IDEAL, grey=True).labels
        b = parallel_components(img, 4, IDEAL, grey=False).labels
        assert np.array_equal(a, b)


class TestOptionMatrix:
    @pytest.mark.parametrize("shadow", [True, False])
    @pytest.mark.parametrize("dist", ["direct", "transpose"])
    @pytest.mark.parametrize("limited", [True, False])
    def test_all_variants_identical_output(self, shadow, dist, limited, small_binary):
        base = sequential_components(small_binary)
        res = parallel_components(
            small_binary, 16, IDEAL,
            shadow_manager=shadow, distribution=dist, limited_updating=limited,
        )
        assert np.array_equal(res.labels, base)

    @pytest.mark.parametrize("engine", ["bfs", "runs", "sv"])
    def test_engines_interchangeable(self, engine):
        img = binary_test_image(7, 32)
        res = parallel_components(img, 4, IDEAL, engine=engine)
        assert np.array_equal(res.labels, sequential_components(img))

    def test_unknown_engine(self, small_binary):
        with pytest.raises(ValidationError):
            parallel_components(small_binary, 4, engine="nope")

    def test_unknown_distribution(self, small_binary):
        with pytest.raises(ValidationError):
            parallel_components(small_binary, 4, distribution="fanout")


class TestStatsAndCosts:
    def test_step_stats_structure(self, small_binary):
        res = parallel_components(small_binary, 16, CM5)
        assert len(res.step_stats) == ilog2(16)
        for st_, expect in zip(res.step_stats, ("H", "V", "H", "V")):
            assert st_.orientation == expect
        assert all(st_.n_vertices >= 0 for st_ in res.step_stats)

    def test_phase_sequence(self, small_binary):
        res = parallel_components(small_binary, 4, CM5)
        names = [ph.name for ph in res.report.phases]
        assert names[0] == "cc:label"
        assert names[1] == "cc:hooks"
        assert names[-1] == "cc:final"
        assert "cc:m1:fetch" in names and "cc:m2:update" in names

    def test_limited_updating_is_cheaper(self):
        """The headline design choice: limited border updating beats
        full per-iteration relabeling."""
        img = darpa_like(128, 16, seed=4)
        lim = parallel_components(img, 16, CM5, grey=True, limited_updating=True)
        full = parallel_components(img, 16, CM5, grey=True, limited_updating=False)
        assert lim.elapsed_s < full.elapsed_s

    def test_comp_scales_with_tile_size(self):
        p = 16
        t64 = parallel_components(binary_test_image(6, 64), p, CM5)
        t128 = parallel_components(binary_test_image(6, 128), p, CM5)
        ratio = t128.report.comp_s / t64.report.comp_s
        assert 2.5 < ratio < 5.0  # ~4x for O(n^2/p) compute

    def test_p1_has_no_merge_phases(self, small_binary):
        res = parallel_components(small_binary, 1, CM5)
        names = [ph.name for ph in res.report.phases]
        assert names == ["cc:label", "cc:hooks", "cc:final"]

    def test_n_components_matches_labels(self, small_binary):
        res = parallel_components(small_binary, 4, IDEAL)
        assert res.n_components == len(np.unique(res.labels[res.labels != 0]))

    def test_hazard_checking_on_by_default(self, small_binary):
        # Smoke: the full algorithm runs clean under the hazard checker.
        res = parallel_components(small_binary, 16, IDEAL, check_hazards=True)
        assert res.labels.shape == small_binary.shape

"""Shared fixtures and oracles for the test suite.

scipy.ndimage and networkx are used ONLY here, as independent oracles
for connected components -- the library itself never imports them.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from scipy import ndimage

# Every SPMD program executed by the suite is statically linted (autouse
# fixture; findings surface as SpmdLintWarning) on top of the dynamic
# shadow-memory hazard checking that Machine enables by default.
pytest_plugins = ("repro.checker.pytest_plugin",)

# Pinned Hypothesis profiles: ``derandomize=True`` makes every run
# (locally and in CI) explore the same example sequence, so the
# differential kernel suite is a deterministic gate rather than a coin
# flip.  ``repro-ci`` digs deeper; select it with
# ``HYPOTHESIS_PROFILE=repro-ci`` (the CI kernels job does).
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "repro-ci",
    derandomize=True,
    deadline=None,
    max_examples=200,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

STRUCT_4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)
STRUCT_8 = np.ones((3, 3), dtype=bool)


def oracle_binary_labels(image: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """scipy-based binary CC, renamed to our min-pixel-index convention."""
    struct = STRUCT_8 if connectivity == 8 else STRUCT_4
    raw, _ = ndimage.label(image != 0, structure=struct)
    return canonicalize(raw)


def oracle_grey_labels(image: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """scipy-based grey CC: label each grey level separately, then rename."""
    struct = STRUCT_8 if connectivity == 8 else STRUCT_4
    out = np.zeros(image.shape, dtype=np.int64)
    next_id = 1
    for level in np.unique(image):
        if level == 0:
            continue
        raw, count = ndimage.label(image == level, structure=struct)
        mask = raw > 0
        out[mask] = raw[mask] + next_id
        next_id += count + 1
    return canonicalize(out)


def canonicalize(labels: np.ndarray) -> np.ndarray:
    """Rename labels to 1 + min row-major pixel index per component."""
    labels = np.asarray(labels)
    rows, cols = labels.shape
    flat = labels.ravel()
    out = np.zeros_like(flat, dtype=np.int64)
    fg = flat != 0
    if fg.any():
        idx = np.arange(flat.size, dtype=np.int64)
        # min index per raw label
        uniq, inv = np.unique(flat[fg], return_inverse=True)
        mins = np.full(len(uniq), flat.size, dtype=np.int64)
        np.minimum.at(mins, inv, idx[fg])
        out[fg] = mins[inv] + 1
    return out.reshape(rows, cols)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260706)


@pytest.fixture
def small_binary(rng) -> np.ndarray:
    """A 32x32 random binary image at near-percolation density."""
    return (rng.random((32, 32)) < 0.55).astype(np.int32)


@pytest.fixture
def small_grey(rng) -> np.ndarray:
    """A 32x32 random 8-level grey image."""
    return rng.integers(0, 8, size=(32, 32)).astype(np.int32)

"""Tests for the complexity-model fitting utilities."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_complexity_model, fit_power_law
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5
from repro.utils.errors import ValidationError


def synth_samples(a, b, c, d, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    ns, ps, ts = [], [], []
    for n in (64, 128, 256, 512):
        for p in (4, 16, 64):
            t = a * n * n / p + b * n / np.sqrt(p) + c * np.log2(p) + d
            ts.append(t * (1 + noise * rng.standard_normal()))
            ns.append(n)
            ps.append(p)
    return np.array(ns), np.array(ps), np.array(ts)


class TestComplexityFit:
    def test_recovers_exact_coefficients(self):
        ns, ps, ts = synth_samples(2e-6, 3e-5, 1e-4, 5e-4)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.r_squared > 0.9999
        assert fit.coefficients["n2_over_p"] == pytest.approx(2e-6, rel=1e-6)
        assert fit.coefficients["log_p"] == pytest.approx(1e-4, rel=1e-3)

    def test_robust_to_noise(self):
        ns, ps, ts = synth_samples(2e-6, 3e-5, 1e-4, 5e-4, noise=0.02)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.r_squared > 0.99
        assert fit.coefficients["n2_over_p"] == pytest.approx(2e-6, rel=0.1)

    def test_dominant_term_detection(self):
        ns, ps, ts = synth_samples(1e-5, 0, 0, 0)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.dominant_term == "n2_over_p"

    def test_predict_roundtrip(self):
        ns, ps, ts = synth_samples(2e-6, 3e-5, 1e-4, 5e-4)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.predict(512, 64) == pytest.approx(ts[-1], rel=1e-3)

    def test_nonnegative_coefficients(self):
        ns, ps, ts = synth_samples(1e-6, 0.0, 0.0, 1e-3, noise=0.05, seed=3)
        fit = fit_complexity_model(ns, ps, ts)
        assert all(v >= 0 for v in fit.coefficients.values())

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_complexity_model([1, 2], [1, 2], [1.0, 2.0])
        with pytest.raises(ValidationError):
            fit_complexity_model([1] * 5, [1] * 4, [1.0] * 5)


class TestPowerLaw:
    def test_exact(self):
        xs = np.array([32, 64, 128, 256], dtype=float)
        ys = 3.0 * xs ** 2.0
        c, alpha, r2 = fit_power_law(xs, ys)
        assert c == pytest.approx(3.0, rel=1e-6)
        assert alpha == pytest.approx(2.0, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValidationError):
            fit_power_law([1.0, -1.0], [2.0, 2.0])


class TestFitsSimulatedData:
    def test_histogram_fits_structural_model(self):
        """The simulator's own output obeys the structural model."""
        ns, ps, ts = [], [], []
        for n in (64, 128, 256):
            for p in (4, 16, 64):
                img = random_greyscale(n, 32, seed=n + p)
                ts.append(parallel_histogram(img, 32, p, CM5).elapsed_s)
                ns.append(n)
                ps.append(p)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.r_squared > 0.99
        assert fit.dominant_term == "n2_over_p"

    def test_components_fits_structural_model(self):
        ns, ps, ts = [], [], []
        for n in (64, 128, 256):
            for p in (4, 16, 64):
                img = binary_test_image(6, n)
                ts.append(parallel_components(img, p, CM5).elapsed_s)
                ns.append(n)
                ps.append(p)
        fit = fit_complexity_model(ns, ps, ts)
        assert fit.r_squared > 0.98
        assert fit.dominant_term == "n2_over_p"

    def test_cc_scaling_exponent_near_two(self):
        ns = (128, 256, 512)
        ts = [
            parallel_components(binary_test_image(6, n), 16, CM5).elapsed_s
            for n in ns
        ]
        _, alpha, r2 = fit_power_law(np.array(ns, float), np.array(ts))
        assert 1.7 < alpha < 2.2
        assert r2 > 0.99

"""Differential property suite for the :mod:`repro.kernels` registry.

The claim the kernel layer makes -- numpy kernels are **bit-identical**
to the per-pixel Python references -- is exactly the kind of statement
Hypothesis can attack: random rectangular images (binary and grey,
both connectivities, degenerate all-background / all-foreground and
1-pixel-wide shapes included), random label offsets, random change
arrays.  Every test here compares whole arrays with
``np.array_equal``; there is no tolerance anywhere.

The suite runs under the derandomized ``repro`` / ``repro-ci``
profiles pinned in ``conftest.py``, so failures reproduce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import kernels
from repro.baselines import (
    bfs_label,
    kernel_label,
    run_label,
    sequential_histogram,
    two_pass_label,
)
from repro.core.change_array import ChangeArray, apply_changes
from repro.core.tiles import edge_indices
from repro.utils.errors import ValidationError

from tests.conftest import canonicalize


def _image_strategy(max_side: int = 10, max_level: int = 4):
    return st.integers(1, max_side).flatmap(
        lambda rows: st.integers(1, max_side).flatmap(
            lambda cols: arrays(
                np.int32, (rows, cols), elements=st.integers(0, max_level)
            )
        )
    )


connectivities = st.sampled_from([4, 8])
grey_flags = st.booleans()


# ---------------------------------------------------------------------------
# registry basics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_known_kernels_and_backends(self):
        assert kernels.kernel_names() == [
            "border_extract",
            "histogram",
            "relabel",
            "tile_label",
        ]
        expected = ["python", "numpy"] + (
            ["numba"] if kernels.NUMBA_AVAILABLE else []
        )
        for name in kernels.kernel_names():
            assert kernels.backends_of(name) == expected
        assert kernels.available_backends() == expected

    def test_numba_is_recognized_even_when_absent(self):
        """``numba`` is always a *recognized* backend: selecting it
        without the package raises the is-it-installed message, never
        "unknown backend"."""
        assert "numba" in kernels.BACKENDS
        if not kernels.NUMBA_AVAILABLE:
            with pytest.raises(ValidationError, match="not available"):
                kernels.resolve_backend("numba")
            with pytest.raises(ValidationError, match="not available"):
                kernels.get("histogram", backend="numba")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError):
            kernels.get("no_such_kernel")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            kernels.get("histogram", backend="fortran")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.resolve_backend() == "python"
        assert kernels.get("tile_label") is kernels.get("tile_label", backend="python")
        monkeypatch.delenv(kernels.ENV_VAR)
        assert kernels.resolve_backend() == kernels.DEFAULT_BACKEND

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.resolve_backend("numpy") == "numpy"

    def test_kernel_label_backend_argument(self, small_binary):
        a = kernel_label(small_binary, backend="python")
        b = kernel_label(small_binary, backend="numpy")
        assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# tile labeling: numpy kernel vs every reference engine
# ---------------------------------------------------------------------------


class TestTileLabelDifferential:
    @given(image=_image_strategy(), connectivity=connectivities, grey=grey_flags)
    @example(image=np.zeros((5, 7), dtype=np.int32), connectivity=8, grey=False)
    @example(image=np.ones((5, 7), dtype=np.int32), connectivity=4, grey=True)
    @example(image=np.ones((1, 9), dtype=np.int32), connectivity=8, grey=False)
    @example(image=np.ones((9, 1), dtype=np.int32), connectivity=4, grey=False)
    @example(image=np.ones((1, 1), dtype=np.int32), connectivity=8, grey=True)
    def test_bit_identical_to_references(self, image, connectivity, grey):
        kw = dict(connectivity=connectivity, grey=grey)
        expected = bfs_label(image, **kw)
        got = kernels.get("tile_label", backend="numpy")(image, **kw)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)
        assert np.array_equal(two_pass_label(image, **kw), expected)
        assert np.array_equal(run_label(image, **kw), expected)

    @given(
        image=_image_strategy(max_side=8),
        connectivity=connectivities,
        grey=grey_flags,
        label_base=st.integers(0, 3),
        label_stride=st.integers(1, 64) | st.none(),
        row_offset=st.integers(0, 32),
        col_offset=st.integers(0, 32),
    )
    @example(  # a foreground seed at the effective origin gets label 0
        image=np.ones((2, 2), dtype=np.int32), connectivity=8, grey=False,
        label_base=0, label_stride=None, row_offset=0, col_offset=0,
    )
    def test_seed_label_convention_with_offsets(
        self, image, connectivity, grey, label_base, label_stride, row_offset, col_offset
    ):
        """The paper's ``(Iq + i) n + (Jr + j) + 1`` tile-offset labels.

        ``label_base=0`` can assign a foreground seed the background
        sentinel 0 (historically an infinite loop in ``bfs_label``);
        both backends must reject such inputs identically.
        """
        kw = dict(
            connectivity=connectivity,
            grey=grey,
            label_base=label_base,
            label_stride=label_stride,
            row_offset=row_offset,
            col_offset=col_offset,
        )
        numpy_kernel = kernels.get("tile_label", backend="numpy")
        try:
            expected = bfs_label(image, **kw)
        except ValidationError:
            with pytest.raises(ValidationError):
                numpy_kernel(image, **kw)
            return
        got = numpy_kernel(image, **kw)
        assert np.array_equal(got, expected)

    def test_zero_seed_label_rejected(self):
        """Label 0 collides with the background sentinel -> rejected.

        The per-pixel reference used to spin forever on this input (the
        seed never counts as visited); now both backends raise.
        """
        img = np.ones((3, 3), dtype=np.int32)
        for backend in kernels.available_backends():
            with pytest.raises(ValidationError):
                kernels.get("tile_label", backend=backend)(img, label_base=0)

    @given(image=_image_strategy(), connectivity=connectivities, grey=grey_flags)
    def test_label_convention_canonical(self, image, connectivity, grey):
        """Every component is labeled 1 + min row-major index of its pixels."""
        labels = kernels.get("tile_label", backend="numpy")(
            image, connectivity=connectivity, grey=grey
        )
        assert np.array_equal(canonicalize(labels), labels)
        assert np.array_equal(labels != 0, np.asarray(image) != 0)

    @given(image=_image_strategy(max_side=8, max_level=3), connectivity=connectivities)
    def test_grey_permutation_invariance(self, image, connectivity):
        """Grey CC depends only on the equality pattern of levels.

        Relabeling the non-zero grey levels through any injective map
        (here: level -> level + 7) must leave the labeling unchanged.
        """
        permuted = np.where(image != 0, image + 7, 0).astype(np.int32)
        kern = kernels.get("tile_label", backend="numpy")
        a = kern(image, connectivity=connectivity, grey=True)
        b = kern(permuted, connectivity=connectivity, grey=True)
        assert np.array_equal(a, b)

    @given(
        image=_image_strategy(max_side=8, max_level=1),
        connectivity=connectivities,
        scale=st.integers(2, 250),
    )
    def test_binary_value_invariance(self, image, connectivity, scale):
        """Binary CC sees only foreground/background, not the values."""
        scaled = (image * scale).astype(np.int32)
        kern = kernels.get("tile_label", backend="numpy")
        assert np.array_equal(
            kern(image, connectivity=connectivity, grey=False),
            kern(scaled, connectivity=connectivity, grey=False),
        )

    def test_python_backend_is_bfs(self, small_binary):
        assert np.array_equal(
            kernels.get("tile_label", backend="python")(small_binary),
            bfs_label(small_binary),
        )


# ---------------------------------------------------------------------------
# histogram
# ---------------------------------------------------------------------------


class TestHistogramDifferential:
    @given(
        image=_image_strategy(max_side=12, max_level=7),
        k=st.sampled_from([8, 16, 64]),
    )
    @example(image=np.zeros((3, 3), dtype=np.int32), k=8)
    @example(image=np.full((2, 5), 7, dtype=np.int32), k=8)
    def test_backends_match_reference(self, image, k):
        expected = sequential_histogram(image, k)
        for backend in kernels.available_backends():
            got = kernels.get("histogram", backend=backend)(image, k)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)
        assert int(expected.sum()) == image.size  # the paper's sum(H) == n^2

    def test_level_overflow_rejected(self):
        img = np.full((2, 2), 9, dtype=np.int32)
        for backend in kernels.available_backends():
            with pytest.raises(ValidationError):
                kernels.get("histogram", backend=backend)(img, 8)


# ---------------------------------------------------------------------------
# relabel (change-array consumption)
# ---------------------------------------------------------------------------


class TestRelabelDifferential:
    @given(
        labels=arrays(np.int64, st.integers(0, 40), elements=st.integers(0, 30)),
        mapping=st.dictionaries(
            st.integers(0, 30), st.integers(0, 500), max_size=12
        ),
    )
    def test_backends_match_apply_changes(self, labels, mapping):
        alphas = np.array(sorted(mapping), dtype=np.int64)
        betas = np.array([mapping[a] for a in sorted(mapping)], dtype=np.int64)
        expected = apply_changes(labels, ChangeArray(alphas, betas))
        for backend in kernels.available_backends():
            got = kernels.get("relabel", backend=backend)(labels, alphas, betas)
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)

    @given(labels=arrays(np.int64, (4, 5), elements=st.integers(0, 9)))
    def test_empty_change_array_is_identity_copy(self, labels):
        empty = np.empty(0, dtype=np.int64)
        for backend in kernels.available_backends():
            got = kernels.get("relabel", backend=backend)(labels, empty, empty)
            assert np.array_equal(got, labels)
            assert got is not labels  # a copy, like apply_changes

    def test_mismatched_pairs_rejected(self):
        labels = np.arange(4, dtype=np.int64)
        for backend in kernels.available_backends():
            with pytest.raises(ValidationError):
                kernels.get("relabel", backend=backend)(
                    labels, np.array([1, 2]), np.array([3])
                )


# ---------------------------------------------------------------------------
# border extraction
# ---------------------------------------------------------------------------


class TestBorderExtractDifferential:
    @given(
        tile=_image_strategy(max_side=9, max_level=50),
        edge=st.sampled_from(["top", "bottom", "left", "right"]),
    )
    def test_backends_match_edge_indices(self, tile, edge):
        rows, cols = tile.shape
        expected = tile.ravel()[edge_indices(rows, cols, edge)]
        for backend in kernels.available_backends():
            got = kernels.get("border_extract", backend=backend)(tile, edge)
            assert np.array_equal(got, expected)

    def test_unknown_edge_rejected(self):
        tile = np.zeros((3, 3), dtype=np.int32)
        for backend in kernels.available_backends():
            with pytest.raises(ValidationError):
                kernels.get("border_extract", backend=backend)(tile, "diagonal")


# ---------------------------------------------------------------------------
# engine registry integration
# ---------------------------------------------------------------------------


class TestKernelEngine:
    @given(image=_image_strategy(max_side=8), connectivity=connectivities)
    @settings(max_examples=25)
    def test_sequential_components_kernel_engine(self, image, connectivity):
        from repro.baselines import sequential_components

        assert np.array_equal(
            sequential_components(image, connectivity=connectivity, engine="kernel"),
            sequential_components(image, connectivity=connectivity, engine="bfs"),
        )

    def test_parallel_components_kernel_engine(self, small_grey):
        import repro

        res = repro.parallel_components(
            small_grey, 4, grey=True, engine="kernel", kernel="numpy"
        )
        ref = repro.parallel_components(small_grey, 4, grey=True, engine="bfs")
        assert np.array_equal(res.labels, ref.labels)

    def test_parallel_components_python_kernel(self, small_binary):
        import repro

        res = repro.parallel_components(
            small_binary, 4, engine="kernel", kernel="python"
        )
        ref = repro.parallel_components(small_binary, 4, engine="runs")
        assert np.array_equal(res.labels, ref.labels)


# ---------------------------------------------------------------------------
# numba backend (skipped cleanly when the package is absent)
# ---------------------------------------------------------------------------


needs_numba = pytest.mark.skipif(
    not kernels.NUMBA_AVAILABLE, reason="numba is not installed"
)


@needs_numba
class TestNumbaDifferential:
    """The compiled backend is held to the same bit-identity bar.

    The generic loops above already include ``numba`` via
    ``available_backends()`` when it is installed; these legs pin the
    two kernels with real algorithmic content (union-find labeling and
    the single-pass tally) against the per-pixel references directly.
    """

    @given(image=_image_strategy(), connectivity=connectivities, grey=grey_flags)
    @settings(max_examples=40)
    def test_tile_label_bit_identical_to_bfs(self, image, connectivity, grey):
        expected = bfs_label(image, connectivity=connectivity, grey=grey)
        got = kernels.get("tile_label", backend="numba")(
            image, connectivity=connectivity, grey=grey
        )
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    @given(
        image=_image_strategy(max_side=8),
        connectivity=connectivities,
        label_base=st.integers(1, 3),
        label_stride=st.integers(1, 64) | st.none(),
        row_offset=st.integers(0, 32),
        col_offset=st.integers(0, 32),
    )
    @settings(max_examples=40)
    def test_tile_offset_labels_match(
        self, image, connectivity, label_base, label_stride, row_offset, col_offset
    ):
        kw = dict(
            connectivity=connectivity,
            label_base=label_base,
            label_stride=label_stride,
            row_offset=row_offset,
            col_offset=col_offset,
        )
        assert np.array_equal(
            kernels.get("tile_label", backend="numba")(image, **kw),
            bfs_label(image, **kw),
        )

    @given(
        image=_image_strategy(max_side=12, max_level=7),
        k=st.sampled_from([8, 16, 64]),
    )
    @settings(max_examples=40)
    def test_histogram_matches_reference(self, image, k):
        expected = sequential_histogram(image, k)
        got = kernels.get("histogram", backend="numba")(image, k)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

"""Smoke tests: every example script runs end-to-end at a small size."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "image_understanding.py", "percolation.py", "scalability_study.py"} <= names


def test_quickstart():
    out = run_example("quickstart.py", "9", "64")
    assert "components" in out
    assert "runtime backend agrees" in out


def test_quickstart_other_image():
    out = run_example("quickstart.py", "6", "64")
    assert "1 components" in out  # the filled disc is one component


def test_image_understanding():
    out = run_example("image_understanding.py", "64", "4")
    assert "verified against the sequential baseline." in out
    assert "largest objects:" in out


def test_percolation():
    out = run_example("percolation.py", "48", "4")
    assert "spanning probability crosses 1/2" in out


def test_scalability_study():
    out = run_example("scalability_study.py", "128", "32")
    assert "parallel efficiency" in out
    assert "TMC CM-5" in out


def test_ising_swendsen_wang():
    out = run_example("ising_swendsen_wang.py", "24", "24")
    assert "phase transition bracketed" in out

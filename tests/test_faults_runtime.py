"""Chaos tests: the hardened process runtime under seeded fault plans.

The contract under test (docs/FAULTS.md): for every seeded single-fault
plan the run either recovers to a **bit-identical** result or raises a
typed :class:`~repro.utils.errors.FaultError` within its deadline --
never a hang, never a wrong answer, never a leaked ``/dev/shm``
segment, and every recovery step visible as ``fault:*`` obs events.
"""

import warnings

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    assert_no_shm_leak,
    shm_segments,
    single_fault_plans,
)
from repro.images import binary_test_image, random_greyscale
from repro.runtime import components, histogram
from repro.utils.errors import (
    DegradedRunWarning,
    FaultError,
    TaskTimeoutError,
)

WORKERS = 4
N = 32  # 2x2 grid of 16x16 tiles for p=4 -> 2 merge rounds
N_ROUNDS = 2
# Short deadlines keep crash/hang recovery quick; faulted tasks on this
# image take milliseconds, so the margin is still ~100x.
FAST = dict(workers=WORKERS, backend="process", timeout=1.5, max_retries=2)


@pytest.fixture(scope="module")
def image():
    return binary_test_image(4, N)


@pytest.fixture(scope="module")
def serial_labels(image):
    return components(image, backend="serial")


@pytest.fixture(scope="module")
def grey_image():
    return random_greyscale(N, 64, seed=5)


def _matrix(workload):
    plans = single_fault_plans(
        workload=workload, engine="process", n_rounds=N_ROUNDS, n_tasks=WORKERS
    )
    return [pytest.param(p, id=p.describe()) for p in plans]


class TestComponentsChaosMatrix:
    """Every single-fault plan x {python, numpy} recovers bit-identically."""

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @pytest.mark.parametrize("plan", _matrix("components"))
    def test_single_fault_recovers(self, plan, kernel, image, serial_labels):
        with assert_no_shm_leak():
            with warnings.catch_warnings():
                warnings.simplefilter("error", DegradedRunWarning)
                got = components(
                    image, kernel=kernel, fault_plan=plan, **FAST
                )
        assert np.array_equal(got, serial_labels)

    @pytest.mark.parametrize("plan", _matrix("components"))
    def test_serial_engine_ignores_plans(self, plan, image, serial_labels):
        # The serial engine has no workers to fault; plans are inert.
        got = components(image, backend="serial", fault_plan=plan)
        assert np.array_equal(got, serial_labels)


class TestHistogramChaosMatrix:
    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    @pytest.mark.parametrize("plan", _matrix("histogram"))
    def test_single_fault_recovers(self, plan, kernel, grey_image):
        expect = histogram(grey_image, 64, backend="serial")
        with assert_no_shm_leak():
            with warnings.catch_warnings():
                warnings.simplefilter("error", DegradedRunWarning)
                got = histogram(
                    grey_image, 64, kernel=kernel, fault_plan=plan, **FAST
                )
        assert np.array_equal(got, expect)

    @pytest.mark.parametrize("plan", _matrix("histogram"))
    def test_serial_engine_ignores_plans(self, plan, grey_image):
        got = histogram(grey_image, 64, backend="serial", fault_plan=plan)
        assert np.array_equal(got, histogram(grey_image, 64, backend="serial"))


def _persistent_merge_fault():
    """A plan no retry budget can beat: every attempt of one merge task."""
    return FaultPlan(faults=(
        FaultSpec(site="cc:merge", kind="exception", round=0, group=0, times=-1),
    ))


class TestDegradation:
    def test_exhausted_recovery_degrades_to_serial(self, image, serial_labels):
        from repro.obs import WallRecorder

        rec = WallRecorder()
        with assert_no_shm_leak():
            with pytest.warns(DegradedRunWarning, match="degraded to the serial"):
                got = components(
                    image, recorder=rec, fault_plan=_persistent_merge_fault(),
                    **FAST,
                )
        assert np.array_equal(got, serial_labels)  # still bit-identical
        names = [i.name for i in rec.fault_events()]
        assert "fault:retry" in names
        assert "fault:giveup" in names
        assert names[-1] == "fault:degrade"

    def test_degrade_false_raises_typed_error(self, image):
        with assert_no_shm_leak():
            with pytest.raises(FaultError) as err:
                components(
                    image, fault_plan=_persistent_merge_fault(),
                    degrade=False, **FAST,
                )
        assert err.value.site == "cc:merge"

    def test_persistent_hang_becomes_timeout_error(self, image):
        plan = FaultPlan(faults=(
            FaultSpec(site="cc:label", kind="hang", task=0, times=-1),
        ))
        with assert_no_shm_leak():
            with pytest.raises(TaskTimeoutError):
                components(
                    image, workers=WORKERS, backend="process",
                    timeout=0.5, max_retries=1, degrade=False, fault_plan=plan,
                )


class TestFaultEventStreams:
    """Recovery paths are visible and correctly ordered in repro.obs."""

    def test_crash_chain(self, image, serial_labels):
        from repro.obs import WallRecorder

        plan = FaultPlan(faults=(
            FaultSpec(site="cc:label", kind="crash", task=0),
        ))
        rec = WallRecorder()
        got = components(image, recorder=rec, fault_plan=plan, **FAST)
        assert np.array_equal(got, serial_labels)
        names = [i.name for i in rec.fault_events()]
        # deadline expiry -> pool respawn -> retry, in that order
        assert names.index("fault:timeout") < names.index("fault:respawn")
        assert names.index("fault:respawn") < names.index("fault:retry")

    def test_corrupt_payload_detected_in_worker(self, image, serial_labels):
        from repro.obs import WallRecorder

        plan = FaultPlan(faults=(
            FaultSpec(site="cc:merge", kind="corrupt", round=1, group=0),
        ))
        rec = WallRecorder()
        got = components(image, recorder=rec, fault_plan=plan, **FAST)
        assert np.array_equal(got, serial_labels)
        names = {i.name for i in rec.fault_events()}
        assert "fault:corrupt-detected" in names  # worker-side validation
        assert "fault:retry" in names

    def test_unfaulted_run_has_no_fault_events(self, image, serial_labels):
        from repro.obs import WallRecorder

        rec = WallRecorder()
        got = components(image, recorder=rec, **FAST)
        assert np.array_equal(got, serial_labels)
        assert rec.fault_events() == []


class TestLeakChecker:
    def test_shm_segments_lists_strings(self):
        assert all(isinstance(s, str) for s in shm_segments())

    def test_assert_no_shm_leak_passes_clean_block(self):
        with assert_no_shm_leak(grace_s=0.0):
            pass

    def test_assert_no_shm_leak_flags_leak(self):
        from repro.runtime import SharedNDArray

        leaked = None
        try:
            with pytest.raises(AssertionError, match="leaked"):
                with assert_no_shm_leak(grace_s=0.0):
                    leaked = SharedNDArray.create((4,), np.int64)
        finally:
            if leaked is not None:
                leaked.close()
                leaked.unlink()

    def test_checks_even_when_block_raises(self):
        from repro.runtime import SharedNDArray

        leaked = None
        try:
            with pytest.raises(AssertionError, match="leaked"):
                with assert_no_shm_leak(grace_s=0.0):
                    leaked = SharedNDArray.create((4,), np.int64)
                    raise RuntimeError("boom")
        finally:
            if leaked is not None:
                leaked.close()
                leaked.unlink()

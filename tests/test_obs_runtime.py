"""Tests for wall-clock observability of the multiprocessing runtime."""

import json

import numpy as np
import pytest

from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.images import darpa_like
from repro.obs import (
    WallRecorder,
    chrome_trace,
    validate_chrome_trace,
    wall_metrics,
)
from repro.runtime import components, histogram

N = 64
K = 256


@pytest.fixture(scope="module")
def image():
    return darpa_like(N, K)


class TestHistogramTrace:
    def test_spans_per_worker(self, image):
        rec = WallRecorder()
        histogram(image, K, workers=2, backend="process", recorder=rec)
        assert len(rec.worker_lanes) == 2  # every pool process traced
        bands = [s for s in rec.log.spans if s.name.startswith("hist:band")]
        assert len(bands) == 2

    def test_driver_spans_present(self, image):
        rec = WallRecorder()
        histogram(image, K, workers=2, backend="process", recorder=rec)
        names = {s.name for s in rec.log.spans if s.lane == "driver"}
        assert {"shmem:setup", "hist:tally", "hist:reduce"} <= names

    def test_result_unchanged_by_recording(self, image):
        rec = WallRecorder()
        traced = histogram(image, K, workers=2, backend="process", recorder=rec)
        plain = histogram(image, K, workers=2, backend="process")
        assert np.array_equal(traced, plain)

    def test_serial_backend_records_nothing_from_workers(self, image):
        rec = WallRecorder()
        histogram(image, K, backend="serial", recorder=rec)
        assert rec.worker_lanes == []


class TestComponentsTrace:
    @pytest.fixture(scope="class")
    def traced(self, image):
        rec = WallRecorder()
        labels = components(image, grey=True, workers=4, backend="process", recorder=rec)
        return rec, labels

    def test_span_per_worker(self, traced):
        rec, _ = traced
        assert len(rec.worker_lanes) == 4

    def test_span_per_merge_round(self, traced, image):
        rec, _ = traced
        rounds = len(merge_schedule(ProcessorGrid(4, image.shape)))
        driver_rounds = [
            s for s in rec.log.spans if s.name.startswith("cc:merge:r")
        ]
        assert len(driver_rounds) == rounds

    def test_merge_group_tasks_recorded(self, traced):
        rec, _ = traced
        groups = [s for s in rec.log.spans if s.name.startswith("cc:merge:s")]
        assert groups  # at least one group task span came through the queue

    def test_chrome_trace_validates(self, traced):
        rec, _ = traced
        obj = chrome_trace(rec.log)
        validate_chrome_trace(json.loads(json.dumps(obj)))

    def test_result_unchanged_by_recording(self, traced, image):
        _, labels = traced
        plain = components(image, grey=True, workers=4, backend="process")
        assert np.array_equal(labels, plain)

    def test_wall_metrics_shape(self, traced):
        rec, _ = traced
        snap = wall_metrics(rec.log, workers=len(rec.worker_lanes))
        assert snap["engine"] == "runtime"
        assert snap["clock"] == "wall"
        assert snap["p"] == 4
        assert snap["totals"]["elapsed_s"] > 0
        names = {ph["name"] for ph in snap["phases"]}
        assert "cc:label" in names and "worker:init" in names
        json.dumps(snap)  # must be serializable


class TestWallRecorder:
    def test_driver_span_timing(self):
        rec = WallRecorder()
        with rec.span("work"):
            pass
        (span,) = rec.log.spans
        assert span.lane == "driver"
        assert span.dur_s >= 0
        assert span.start_s >= 0

    def test_drain_without_queue_is_noop(self):
        rec = WallRecorder()
        assert rec.drain() == 0

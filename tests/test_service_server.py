"""Tests for the unix-socket JSON front-end of repro.service."""

import asyncio
import json

import numpy as np
import pytest

from repro.faults.leakcheck import assert_no_shm_leak
from repro.images import darpa_like
from repro.service import (
    SUN_PATH_MAX,
    BatchService,
    ServiceConfig,
    ServiceServer,
    WireClient,
    check_socket_path,
    decode_array,
    encode_array,
    mint_shared_image,
    request_over_socket,
)
from repro.utils.errors import ServiceDrainingError, ValidationError


class TestWireEncoding:
    def test_round_trip(self):
        img = darpa_like(16, 256, seed=1)
        assert np.array_equal(decode_array(encode_array(img)), img)

    def test_round_trip_preserves_dtype(self):
        img = np.arange(6, dtype=np.uint8).reshape(2, 3)
        back = decode_array(encode_array(img))
        assert back.dtype == np.uint8
        assert back.shape == (2, 3)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValidationError, match="dtype"):
            decode_array({"shape": [2], "dtype": "float64", "data_b64": ""})

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            decode_array({"shape": [2, -1], "dtype": "uint8", "data_b64": ""})

    def test_rejects_bad_base64(self):
        with pytest.raises(ValidationError, match="base64"):
            decode_array({"shape": [1], "dtype": "uint8", "data_b64": "!!!"})

    def test_rejects_size_mismatch(self):
        enc = encode_array(np.arange(4, dtype=np.uint8))
        enc["shape"] = [8]
        with pytest.raises(ValidationError, match="byte"):
            decode_array(enc)

    def test_rejects_overflowing_shape(self):
        # np.prod would wrap to 0 at int64 here and let empty data pass.
        with pytest.raises(ValidationError, match="exceeds"):
            decode_array({"shape": [2**32, 2**32], "dtype": "uint8",
                          "data_b64": ""})

    def test_rejects_over_cap_shape(self):
        with pytest.raises(ValidationError, match="exceeds"):
            decode_array({"shape": [1 << 20, 1 << 10], "dtype": "int64",
                          "data_b64": ""})


def _serve_scenario(handler):
    """Run ``handler(server)`` against a live server on a temp socket.

    Every live-socket scenario -- including ones that end in client
    disconnects or server shutdown -- runs inside the shared-memory
    leak check: a test that leaves a ``/dev/shm`` segment behind fails
    even if its assertions all passed.
    """

    async def scenario(tmp_path):
        service = BatchService(ServiceConfig(workers=2))
        server = ServiceServer(service, str(tmp_path / "svc.sock"))
        await server.start()
        try:
            await handler(server)
        finally:
            await server.stop()

    def run(tmp_path):
        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario(tmp_path))

    return run


class TestSocketServer:
    def test_compute_round_trip(self, tmp_path):
        async def handler(server):
            img = darpa_like(24, 256, seed=2)
            reply = await request_over_socket(
                server.socket_path,
                {"id": 7, "op": "histogram", "image": encode_array(img),
                 "params": {"k": 256}},
            )
            assert reply["ok"] and reply["id"] == 7
            hist = decode_array(reply["result"])
            assert np.array_equal(hist, np.bincount(img.ravel(), minlength=256))

        _serve_scenario(handler)(tmp_path)

    def test_pattern_image_spec(self, tmp_path):
        async def handler(server):
            reply = await request_over_socket(
                server.socket_path,
                {"op": "components", "image": {"pattern": 5, "size": 32}},
            )
            assert reply["ok"]
            labels = decode_array(reply["result"])
            assert labels.shape == (32, 32)

        _serve_scenario(handler)(tmp_path)

    def test_ping_stats_and_cache_hit(self, tmp_path):
        async def handler(server):
            assert (await request_over_socket(
                server.socket_path, {"op": "ping"}
            ))["result"] == "pong"
            img = encode_array(darpa_like(24, 256, seed=3))
            req = {"op": "histogram", "image": img, "params": {"k": 256}}
            await request_over_socket(server.socket_path, req)
            await request_over_socket(server.socket_path, req)
            stats = (await request_over_socket(
                server.socket_path, {"op": "stats"}
            ))["result"]
            assert stats["cache"]["hits"] == 1
            assert stats["service"]["completed"] == 2

        _serve_scenario(handler)(tmp_path)

    def test_errors_are_typed_not_fatal(self, tmp_path):
        async def handler(server):
            bad = await request_over_socket(server.socket_path, {"op": "edges"})
            assert not bad["ok"]
            assert bad["error"]["type"] == "ValidationError"
            garbage = await self._raw_line(server.socket_path, b"not json\n")
            assert not garbage["ok"]
            # The connection-level failure did not wedge the server.
            assert (await request_over_socket(
                server.socket_path, {"op": "ping"}
            ))["result"] == "pong"

        _serve_scenario(handler)(tmp_path)

    async def _raw_line(self, path, line: bytes) -> dict:
        reader, writer = await asyncio.open_unix_connection(path)
        try:
            writer.write(line)
            await writer.drain()
            return json.loads(await reader.readline())
        finally:
            writer.close()

    def test_pipelined_requests_share_one_connection(self, tmp_path):
        async def handler(server):
            reader, writer = await asyncio.open_unix_connection(server.socket_path)
            try:
                for i in range(3):
                    obj = {"id": i, "op": "components",
                           "image": {"pattern": i + 1, "size": 24}}
                    writer.write((json.dumps(obj) + "\n").encode())
                await writer.drain()
                ids = []
                for _ in range(3):
                    reply = json.loads(await reader.readline())
                    assert reply["ok"]
                    ids.append(reply["id"])
                assert sorted(ids) == [0, 1, 2]
            finally:
                writer.close()

        _serve_scenario(handler)(tmp_path)

    def test_large_request_line_is_served(self, tmp_path):
        # A 256x256 int32 image is ~350 KB of base64 -- far past the
        # 64 KiB default StreamReader limit that used to drop the
        # connection before the request was ever parsed.
        async def handler(server):
            img = darpa_like(256, 256, seed=4)
            reply = await request_over_socket(
                server.socket_path,
                {"op": "histogram", "image": encode_array(img),
                 "params": {"k": 256}},
            )
            assert reply["ok"]
            hist = decode_array(reply["result"])
            assert np.array_equal(hist, np.bincount(img.ravel(), minlength=256))

        _serve_scenario(handler)(tmp_path)

    def test_oversized_line_gets_typed_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.server.MAX_REQUEST_BYTES", 4096)

        async def handler(server):
            reader, writer = await asyncio.open_unix_connection(server.socket_path)
            try:
                writer.write(b"x" * 8192 + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert not reply["ok"]
                assert reply["error"]["type"] == "ValidationError"
                assert "too large" in reply["error"]["message"]
                # The unparseable stream is then closed, not resynced.
                assert await reader.readline() == b""
            finally:
                writer.close()
            # Other connections are unaffected.
            assert (await request_over_socket(
                server.socket_path, {"op": "ping"}
            ))["result"] == "pong"

        _serve_scenario(handler)(tmp_path)

    def test_internal_errors_reply_typed(self, tmp_path):
        async def handler(server):
            # int("nope") raises a plain ValueError (not a ReproError);
            # the client must still get a reply, not a hung connection.
            reply = await request_over_socket(
                server.socket_path,
                {"op": "histogram", "image": {"pattern": 1, "size": 8},
                 "params": {"k": "nope"}},
            )
            assert not reply["ok"]
            assert "internal error" in reply["error"]["message"]
            assert (await request_over_socket(
                server.socket_path, {"op": "ping"}
            ))["result"] == "pong"

        _serve_scenario(handler)(tmp_path)

    def test_bad_levels_is_a_validation_error(self, tmp_path):
        async def handler(server):
            reply = await request_over_socket(
                server.socket_path,
                {"op": "histogram",
                 "image": {"pattern": 0, "size": 16, "levels": "many"}},
            )
            assert not reply["ok"]
            assert reply["error"]["type"] == "ValidationError"
            assert "levels" in reply["error"]["message"]

        _serve_scenario(handler)(tmp_path)

    def test_shutdown_request_stops_server(self, tmp_path):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            server = ServiceServer(service, str(tmp_path / "svc.sock"))
            await server.start()
            reply = await request_over_socket(server.socket_path, {"op": "shutdown"})
            assert reply["ok"]
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=10)
            assert not service.running

        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario())


class TestSocketPathValidation:
    """sun_path length is checked at *config* time, not at bind()."""

    def test_ok_path_round_trips(self, tmp_path):
        p = tmp_path / "svc.sock"
        assert check_socket_path(p) == str(p)

    def test_bytes_path_is_decoded(self):
        assert check_socket_path(b"/tmp/svc.sock") == "/tmp/svc.sock"

    def test_over_limit_is_a_typed_config_error(self):
        long_path = "/tmp/" + "x" * SUN_PATH_MAX
        with pytest.raises(ValidationError, match="sun_path"):
            check_socket_path(long_path)

    def test_limit_boundary(self):
        exactly = "/" + "x" * (SUN_PATH_MAX - 1)
        assert check_socket_path(exactly) == exactly
        with pytest.raises(ValidationError):
            check_socket_path(exactly + "x")

    def test_server_rejects_long_path_at_construction(self):
        service = BatchService(ServiceConfig(workers=1))
        with pytest.raises(ValidationError, match="sun_path"):
            ServiceServer(service, "/tmp/" + "y" * 200)


class TestDrainProtocol:
    def test_draining_sheds_new_submits_but_finishes_admitted(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                img = darpa_like(24, 256, seed=20)
                first = asyncio.ensure_future(
                    service.submit("histogram", img, k=256)
                )
                await asyncio.sleep(0.01)  # let it get admitted
                service.begin_drain()
                assert service.draining
                with pytest.raises(ServiceDrainingError):
                    await service.submit("histogram", img, k=2)
                # The already-admitted request still resolves normally.
                hist = await first
                assert np.array_equal(
                    hist, np.bincount(img.ravel(), minlength=256)
                )
                assert await service.drain() is True
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_drain_deadline_zero_reports_unfinished_work(self):
        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            await service.start()
            try:
                # Pin an open request deterministically (a real compute
                # can finish before a zero-budget drain even looks).
                service._open_requests += 1
                assert await service.drain(0.0) is False
                assert service.draining  # drain still flipped the gate
                service._open_requests -= 1
                assert await service.drain() is True
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_shutdown_op_drains_inflight_compute(self, tmp_path):
        """The shutdown/drain race regression: a compute already on the
        wire when ``shutdown`` lands must still get its typed reply."""

        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            server = ServiceServer(service, str(tmp_path / "svc.sock"))
            await server.start()
            img = darpa_like(64, 256, seed=22)
            inflight = asyncio.ensure_future(request_over_socket(
                server.socket_path,
                {"op": "histogram", "image": encode_array(img),
                 "params": {"k": 256}},
            ))
            await asyncio.sleep(0.01)
            reply = await request_over_socket(
                server.socket_path, {"op": "shutdown"}
            )
            assert reply["ok"] and reply["result"] == "draining"
            first = await inflight
            assert first["ok"]
            hist = decode_array(first["result"])
            assert np.array_equal(hist, np.bincount(img.ravel(), minlength=256))
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=15)
            assert not service.running

        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario())


class TestShmemWire:
    """Zero-copy wire lifetime rules at the server boundary."""

    def test_shmem_cache_hit_reads_zero_segments(self, tmp_path):
        """A repeated shmem request must be served from the cache
        without touching the segment at all.

        Proven destructively: after the first (miss) request the client
        *unlinks* the segment, so any server-side attach on the second
        request would fail with an unknown-segment error.  A successful
        bit-identical reply is therefore a proof of zero segment reads.
        """

        async def handler(server):
            img = darpa_like(24, 256, seed=9)
            expected = np.bincount(img.ravel(), minlength=256)
            seg, desc = mint_shared_image(img)
            async with WireClient(server.socket_path, wire="ndjson") as client:
                try:
                    first = await client.compute("histogram", desc, k=256)
                finally:
                    seg.close()
                    seg.unlink()  # the segment is now gone from /dev/shm
                second = await client.compute("histogram", desc, k=256)
                stats = (await client.request({"op": "stats"}))["result"]
            assert np.array_equal(first, expected)
            assert np.array_equal(second, expected)
            assert stats["cache"]["hits"] == 1

        _serve_scenario(handler)(tmp_path)

    def test_client_disconnect_mid_request_releases_reply_segments(self, tmp_path):
        """A client that vanishes without sending ``shm_release`` --
        before or after reading its shmem reply -- must not leak the
        server-minted reply segment; the connection teardown reclaims
        it (verified by the leak check around the scenario)."""

        async def handler(server):
            img = darpa_like(24, 256, seed=10)
            for read_reply in (True, False):
                seg, desc = mint_shared_image(img)
                try:
                    reader, writer = await asyncio.open_unix_connection(
                        server.socket_path)
                    try:
                        obj = {"op": "histogram",
                               "image": {"shm": desc.to_wire()},
                               "params": {"k": 256}, "wire": "shmem"}
                        writer.write((json.dumps(obj) + "\n").encode())
                        await writer.drain()
                        if read_reply:
                            reply = json.loads(await reader.readline())
                            assert reply["ok"] and "shm" in reply["result"]
                    finally:
                        # Vanish without releasing the reply segment.
                        writer.close()
                finally:
                    seg.close()
                    seg.unlink()
            # Give the server's connection teardown a beat, then prove
            # the arena is empty while the server is still running.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 2.0
            while len(server.arena) and loop.time() < deadline:
                await asyncio.sleep(0.02)
            assert len(server.arena) == 0

        _serve_scenario(handler)(tmp_path)

    def test_server_stop_sweeps_unreleased_reply_segments(self, tmp_path):
        """``stop()`` must reclaim reply segments a live client still
        holds -- shutdown beats politeness."""

        async def scenario():
            service = BatchService(ServiceConfig(workers=2))
            server = ServiceServer(service, str(tmp_path / "svc.sock"))
            await server.start()
            img = darpa_like(24, 256, seed=11)
            seg, desc = mint_shared_image(img)
            try:
                client = WireClient(server.socket_path, wire="shmem")
                await client.connect()
                reply = await client.request({
                    "op": "histogram", "image": {"shm": desc.to_wire()},
                    "params": {"k": 256}, "wire": "shmem",
                })
                assert reply["ok"] and "shm" in reply["result"]
                assert len(server.arena) == 1
                # Stop with the connection open and the reply unreleased.
                await server.stop()
                assert len(server.arena) == 0
                await client.aclose()
            finally:
                seg.close()
                seg.unlink()

        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario())

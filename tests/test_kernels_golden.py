"""Golden-fixture regression tests for the kernel layer.

``tests/golden/kernels_golden.json`` pins, for every Figure-1 pattern
generator and the DARPA-like scene at n=64, the expected histogram, the
component count, and a SHA-256 over the canonical little-endian int64
label image.  Each fixture is then checked against **every** runtime
backend (``serial``, ``process``) x kernel (``python``, ``numpy``)
combination, so a regression in any engine, any kernel backend, or the
merge machinery shows up as a digest mismatch against a value reviewed
into git -- not merely as two engines agreeing on a new wrong answer.

Regenerate (only when the convention intentionally changes) with::

    PYTHONPATH=src python tests/test_kernels_golden.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.images import binary_test_image, darpa_like
from repro.runtime import components, histogram

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "kernels_golden.json"

N = 64
DARPA_K = 256

BACKENDS = ("serial", "process")
KERNELS = ("python", "numpy")


def _cases() -> list[dict]:
    """The fixture inputs: 9 binary patterns + the grey DARPA scene."""
    cases = []
    for index in range(1, 10):
        cases.append(
            {
                "name": f"pattern{index}",
                "grey": False,
                "k": 2,
                "connectivity": 8,
            }
        )
    cases.append({"name": "darpa", "grey": True, "k": DARPA_K, "connectivity": 8})
    # one 4-connectivity row: the bar patterns differ between 4 and 8
    cases.append({"name": "pattern3@4conn", "grey": False, "k": 2, "connectivity": 4})
    return cases


def _case_image(name: str) -> np.ndarray:
    base = name.split("@")[0]
    if base == "darpa":
        return darpa_like(N, DARPA_K)
    return binary_test_image(int(base.removeprefix("pattern")), N)


def _label_digest(labels: np.ndarray) -> str:
    """SHA-256 of the canonical little-endian int64 label bytes."""
    return hashlib.sha256(
        np.ascontiguousarray(labels, dtype="<i8").tobytes()
    ).hexdigest()


def _measure(case: dict, *, backend: str, kernel: str, workers: int = 4) -> dict:
    image = _case_image(case["name"])
    labels = components(
        image,
        connectivity=case["connectivity"],
        grey=case["grey"],
        workers=workers if backend == "process" else None,
        backend=backend,
        kernel=kernel,
    )
    hist = histogram(image, case["k"], backend=backend, kernel=kernel,
                     workers=workers if backend == "process" else None)
    return {
        "histogram": [int(x) for x in hist],
        "n_components": int(np.unique(labels[labels != 0]).size),
        "label_sha256": _label_digest(labels),
    }


def regenerate() -> None:
    golden = {
        "n": N,
        "cases": {
            case["name"]: {
                **{k: v for k, v in case.items() if k != "name"},
                **_measure(case, backend="serial", kernel="numpy"),
            }
            for case in _cases()
        },
    }
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden['cases'])} cases)")


def _load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), "golden fixture missing; see module docstring"
    return _load_golden()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_all_cases(golden, backend, kernel):
    """Every fixture, against one (backend, kernel) combination."""
    assert golden["n"] == N
    for name, expected in golden["cases"].items():
        case = {"name": name, **{
            k: expected[k] for k in ("grey", "k", "connectivity")
        }}
        got = _measure(case, backend=backend, kernel=kernel)
        assert got["histogram"] == expected["histogram"], (name, backend, kernel)
        assert got["n_components"] == expected["n_components"], (name, backend, kernel)
        assert got["label_sha256"] == expected["label_sha256"], (name, backend, kernel)


def test_golden_covers_all_patterns(golden):
    names = set(golden["cases"])
    assert {f"pattern{i}" for i in range(1, 10)} <= names
    assert "darpa" in names
    assert any("4conn" in name for name in names)


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)

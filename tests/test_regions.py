"""Tests for region analysis (areas, bounding boxes, centroids, filters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.regions import (
    compact_labels,
    filter_small_regions,
    region_table,
)
from repro.baselines import sequential_components
from repro.images import four_corner_squares
from repro.utils.errors import ValidationError


def labeled(img):
    return sequential_components(np.asarray(img, dtype=np.int32))


class TestRegionTable:
    def test_empty(self):
        table = region_table(np.zeros((4, 4), dtype=np.int64))
        assert len(table) == 0

    def test_single_region(self):
        img = np.zeros((5, 5), dtype=np.int32)
        img[1:3, 2:4] = 1
        table = region_table(labeled(img))
        assert len(table) == 1
        assert table.areas[0] == 4
        assert np.array_equal(table.bbox[0], [1, 2, 2, 3])
        assert np.allclose(table.centroids[0], [1.5, 2.5])

    def test_areas_partition_foreground(self, small_binary):
        lab = labeled(small_binary)
        table = region_table(lab)
        assert table.areas.sum() == (lab != 0).sum()

    def test_four_squares(self):
        img = four_corner_squares(64)
        table = region_table(labeled(img))
        assert len(table) == 4
        assert (table.areas == table.areas[0]).all()  # identical squares

    def test_bbox_contains_centroid(self, small_binary):
        table = region_table(labeled(small_binary))
        for i in range(len(table)):
            r0, c0, r1, c1 = table.bbox[i]
            cy, cx = table.centroids[i]
            assert r0 <= cy <= r1
            assert c0 <= cx <= c1

    def test_colors_from_image(self):
        img = np.zeros((4, 4), dtype=np.int32)
        img[0, 0] = 5
        img[3, 3] = 9
        lab = sequential_components(img, grey=True)
        table = region_table(lab, img)
        assert sorted(table.colors.tolist()) == [5, 9]

    def test_colors_default_minus_one(self, small_binary):
        table = region_table(labeled(small_binary))
        assert (table.colors == -1).all()

    def test_image_shape_mismatch(self):
        with pytest.raises(ValidationError):
            region_table(np.zeros((4, 4), dtype=np.int64), np.zeros((5, 5), dtype=np.int32))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            region_table(np.zeros(4, dtype=np.int64))

    def test_largest(self):
        img = np.zeros((8, 8), dtype=np.int32)
        img[0, 0:3] = 1     # area 3
        img[4:6, 4:6] = 1   # area 4
        table = region_table(labeled(img)).largest(1)
        assert len(table) == 1
        assert table.areas[0] == 4


class TestCompactLabels:
    def test_dense_range(self, small_binary):
        lab = labeled(small_binary)
        compact = compact_labels(lab)
        values = np.unique(compact)
        n = len(np.unique(lab[lab != 0]))
        assert np.array_equal(values, np.arange(n + 1))

    def test_preserves_partition(self, small_binary):
        lab = labeled(small_binary)
        compact = compact_labels(lab)
        # same components, renamed
        for value in np.unique(lab[lab != 0]):
            masked = compact[lab == value]
            assert (masked == masked[0]).all()
        assert ((compact == 0) == (lab == 0)).all()

    def test_empty(self):
        lab = np.zeros((3, 3), dtype=np.int64)
        assert not compact_labels(lab).any()


class TestFilterSmall:
    def test_removes_below_threshold(self):
        img = np.zeros((8, 8), dtype=np.int32)
        img[0, 0] = 1           # area 1
        img[4:8, 4:8] = 1       # area 16
        lab = labeled(img)
        out = filter_small_regions(lab, 2)
        assert out[0, 0] == 0
        assert out[5, 5] != 0

    def test_zero_threshold_noop(self, small_binary):
        lab = labeled(small_binary)
        assert np.array_equal(filter_small_regions(lab, 0), lab)

    def test_negative_threshold(self):
        with pytest.raises(ValidationError):
            filter_small_regions(np.zeros((2, 2), dtype=np.int64), -1)


@settings(max_examples=30, deadline=None)
@given(arrays(np.int32, (10, 10), elements=st.integers(min_value=0, max_value=1)))
def test_property_region_table_consistent(img):
    lab = labeled(img)
    table = region_table(lab)
    assert len(table) == len(np.unique(lab[lab != 0]))
    assert int(table.areas.sum()) == int((img != 0).sum())
    for i, value in enumerate(table.labels):
        mask = lab == value
        rows, cols = np.nonzero(mask)
        assert table.areas[i] == mask.sum()
        assert np.array_equal(
            table.bbox[i], [rows.min(), cols.min(), rows.max(), cols.max()]
        )


class TestPerimeters:
    def test_single_square(self):
        from repro.analysis.regions import region_perimeters

        img = np.zeros((8, 8), dtype=np.int32)
        img[2:5, 2:5] = 1  # 3x3 square: perimeter 12
        lab = labeled(img)
        assert np.array_equal(region_perimeters(lab), [12])

    def test_single_pixel(self):
        from repro.analysis.regions import region_perimeters

        img = np.zeros((4, 4), dtype=np.int32)
        img[1, 1] = 1
        assert np.array_equal(region_perimeters(labeled(img)), [4])

    def test_border_touching_counts_image_edge(self):
        from repro.analysis.regions import region_perimeters

        img = np.ones((4, 4), dtype=np.int32)  # fills the image
        assert np.array_equal(region_perimeters(labeled(img)), [16])

    def test_multiple_regions_aligned_with_table(self):
        from repro.analysis.regions import region_perimeters, region_table

        img = four_corner_squares(32)
        lab = labeled(img)
        table = region_table(lab)
        perims = region_perimeters(lab)
        assert len(perims) == len(table)
        side = int(round(32 * 0.25))
        assert (perims == 4 * side).all()

    def test_empty(self):
        from repro.analysis.regions import region_perimeters

        assert region_perimeters(np.zeros((3, 3), dtype=np.int64)).size == 0

    def test_isoperimetric_sanity(self, small_binary):
        """perimeter^2 >= 4*pi*area... the digital version: p >= 4*sqrt(a)
        fails for ragged shapes; use the loose digital bound p^2 >= 16*a
        only for convex-ish shapes -- here just check p >= 4 and
        p <= 4*area (each pixel contributes at most 4 edges)."""
        from repro.analysis.regions import region_perimeters, region_table

        lab = labeled(small_binary)
        table = region_table(lab)
        perims = region_perimeters(lab)
        assert (perims >= 4).all() or len(perims) == 0
        assert (perims <= 4 * table.areas).all()

"""Tests for the observability layer on the simulated engine.

Covers the comm-matrix invariants against the cost counters for the
paper's two data-movement primitives, the Chrome trace-event exporter
(strict JSON round-trip, required keys, non-overlapping spans per
track), the metrics snapshot against ``Machine.report()``, and hazard
provenance landing in the event stream.
"""

import json

import numpy as np
import pytest

from repro.bdm import GlobalArray, Machine, broadcast, transpose
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, IDEAL
from repro.obs import (
    EventLog,
    MachineRecorder,
    chrome_trace,
    comm_heatmap,
    sim_metrics,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.utils.errors import HazardError, ValidationError


def _transpose_machine(p=4, q=16):
    machine = Machine(p, CM5)
    rec = MachineRecorder(machine)
    A = GlobalArray(machine, q, name="A")
    A.scatter_rows(np.arange(p * q).reshape(p, q))
    transpose(machine, A)
    return machine, rec


def _broadcast_machine(p=4, q=16):
    machine = Machine(p, CM5)
    rec = MachineRecorder(machine)
    A = GlobalArray(machine, q, name="A")
    A.scatter_rows(np.arange(p * q).reshape(p, q))
    broadcast(machine, A)
    return machine, rec


class TestCommMatrix:
    def test_transpose_row_sums_equal_words_served(self):
        machine, rec = _transpose_machine()
        served = np.array([proc.cost.words_served for proc in machine.procs])
        assert np.array_equal(rec.words_served_by, served)

    def test_transpose_column_sums_equal_words_moved(self):
        machine, rec = _transpose_machine()
        moved = np.array([proc.cost.words_moved for proc in machine.procs])
        assert np.array_equal(rec.words_moved_by, moved)

    def test_transpose_matrix_total_matches_report(self):
        machine, rec = _transpose_machine()
        assert int(rec.comm_matrix.sum()) == machine.report().words_moved

    def test_broadcast_row_sums_equal_words_served(self):
        machine, rec = _broadcast_machine()
        served = np.array([proc.cost.words_served for proc in machine.procs])
        assert np.array_equal(rec.words_served_by, served)

    def test_broadcast_column_sums_equal_words_moved(self):
        machine, rec = _broadcast_machine()
        moved = np.array([proc.cost.words_moved for proc in machine.procs])
        assert np.array_equal(rec.words_moved_by, moved)

    def test_transpose_diagonal_is_free(self):
        """Local block reads are not communication."""
        _, rec = _transpose_machine()
        assert np.array_equal(np.diag(rec.comm_matrix), np.zeros(4, dtype=np.int64))

    def test_point_to_point_transfer_recorded(self):
        machine = Machine(4, CM5)
        rec = MachineRecorder(machine)
        with machine.phase("xfer"):
            machine.transfer(1, 3, 7)
        assert rec.comm_matrix[1, 3] == 7
        assert rec.comm_matrix.sum() == 7

    def test_heatmap_mentions_totals(self):
        machine, rec = _transpose_machine()
        text = comm_heatmap(rec.comm_matrix)
        assert "P0" in text and "moved" in text


class TestChromeTrace:
    def _cc_recorder(self):
        machine = Machine(4, CM5)
        rec = MachineRecorder(machine)
        parallel_components(binary_test_image(9, 32), 4, machine=machine)
        return machine, rec

    def test_round_trips_strict_json(self):
        _, rec = self._cc_recorder()
        obj = chrome_trace(rec.log)
        again = json.loads(json.dumps(obj))
        assert again["traceEvents"]
        validate_chrome_trace(again)

    def test_required_keys_present(self):
        _, rec = self._cc_recorder()
        for ev in chrome_trace(rec.log)["traceEvents"]:
            assert "ph" in ev and "pid" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))

    def test_spans_non_overlapping_per_processor(self):
        _, rec = self._cc_recorder()
        obj = chrome_trace(rec.log)
        tracks = {}
        for ev in obj["traceEvents"]:
            if ev["ph"] == "X":
                tracks.setdefault((ev["pid"], ev["tid"]), []).append(
                    (ev["ts"], ev["dur"])
                )
        assert tracks
        for spans in tracks.values():
            spans.sort()
            for (t0, d0), (t1, _) in zip(spans, spans[1:]):
                assert t1 >= t0 + d0 - 1e-6

    def test_every_processor_has_a_span(self):
        machine, rec = self._cc_recorder()
        lanes = {s.lane for s in rec.log.spans}
        assert set(range(machine.p)) <= lanes

    def test_validator_rejects_overlap(self):
        log = EventLog()
        log.add_span("a", 0, 0.0, 2.0)
        log.add_span("b", 0, 1.0, 2.0)
        with pytest.raises(ValidationError, match="overlap"):
            validate_chrome_trace(chrome_trace(log))

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValidationError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValidationError):
            validate_chrome_trace([1, 2, 3])

    def test_validator_rejects_non_json(self):
        log = EventLog()
        log.add_span("a", 0, 0.0, 1.0, payload=object())
        with pytest.raises(ValidationError, match="JSON"):
            validate_chrome_trace(chrome_trace(log))

    def test_write_chrome_trace(self, tmp_path):
        _, rec = self._cc_recorder()
        path = tmp_path / "t.json"
        write_chrome_trace(path, rec.log)
        validate_chrome_trace(json.loads(path.read_text()))


class TestMetricsSnapshot:
    def test_per_phase_words_moved_match_report(self):
        machine = Machine(4, CM5)
        rec = MachineRecorder(machine)
        img = random_greyscale(32, 16, seed=3)
        parallel_histogram(img, 16, 4, machine=machine)
        snap = sim_metrics(rec)
        report = machine.report()
        assert [ph["words_moved"] for ph in snap["phases"]] == [
            ph.words_moved for ph in report.phases
        ]
        assert snap["totals"]["words_moved"] == report.words_moved
        assert snap["totals"]["messages"] == report.messages
        assert snap["totals"]["elapsed_s"] == pytest.approx(report.elapsed_s)

    def test_snapshot_is_json_serializable(self, tmp_path):
        machine = Machine(4, CM5)
        rec = MachineRecorder(machine)
        parallel_components(binary_test_image(5, 32), 4, machine=machine)
        path = tmp_path / "m.json"
        write_metrics(path, sim_metrics(rec))
        again = json.loads(path.read_text())
        assert again["schema"] == "repro-obs-metrics/v1"
        assert again["p"] == 4
        assert len(again["comm_matrix"]) == 4

    def test_utilization_bounds(self):
        machine = Machine(4, CM5)
        rec = MachineRecorder(machine)
        parallel_components(binary_test_image(9, 32), 4, machine=machine)
        snap = sim_metrics(rec)
        for ph in snap["phases"]:
            assert 0.0 < ph["utilization"] <= 1.0
            assert ph["imbalance"] >= 1.0


class TestHazardEvents:
    def test_hazard_lands_in_event_stream(self):
        machine = Machine(4, IDEAL, check_hazards=True)
        rec = MachineRecorder(machine)
        arr = GlobalArray(machine, 4, name="h")
        with pytest.raises(HazardError):
            with machine.phase("racy"):
                arr.write(machine.procs[1], 0, [1, 2, 3, 4])  # remote write
                arr.read(machine.procs[2], 0)  # remote read of the same words
        hazards = [i for i in rec.log.instants if i.name.startswith("hazard:")]
        assert hazards
        args = hazards[0].args
        assert args["array"] == "h"
        assert args["kind"] == "read-after-write"
        assert args["phase"] == "racy"


class TestRecorderLifecycle:
    def test_reset_clears_recorder(self):
        machine = Machine(2, CM5)
        rec = MachineRecorder(machine)
        with machine.phase("a"):
            machine.procs[0].charge_comp(10)
        machine.reset()
        assert len(rec.log) == 0
        assert rec.comm_matrix.sum() == 0
        assert rec.phase_records == []

    def test_detach_stops_recording(self):
        machine = Machine(2, CM5)
        rec = MachineRecorder(machine)
        with machine.phase("a"):
            machine.procs[0].charge_comp(10)
        rec.detach()
        with machine.phase("b"):
            machine.procs[0].charge_comp(10)
        assert [r.name for r, _ in rec.phase_records] == ["a"]

    def test_multiple_recorders_coexist(self):
        machine = Machine(2, CM5)
        rec1 = MachineRecorder(machine)
        rec2 = MachineRecorder(machine)
        with machine.phase("a"):
            machine.transfer(0, 1, 5)
        assert rec1.comm_matrix[0, 1] == 5
        assert rec2.comm_matrix[0, 1] == 5

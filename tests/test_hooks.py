"""Tests for tile hooks (Procedure 2) and the final interior update."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import run_label
from repro.core.change_array import ChangeArray, apply_changes
from repro.core.hooks import TileHooks, apply_hooks, apply_hooks_bfs, create_tile_hooks, hook_ops
from repro.core.tiles import perimeter_indices
from repro.utils.errors import ValidationError


def labeled_tile(img: np.ndarray) -> np.ndarray:
    return run_label(img, label_stride=1000)


class TestCreate:
    def test_empty_tile(self):
        hooks = create_tile_hooks(np.zeros((4, 4), dtype=np.int64))
        assert len(hooks) == 0

    def test_one_hook_per_border_component(self):
        img = np.array(
            [
                [1, 0, 1],
                [0, 0, 0],
                [1, 0, 0],
            ],
            dtype=np.int32,
        )
        hooks = create_tile_hooks(labeled_tile(img))
        assert len(hooks) == 3

    def test_interior_component_has_no_hook(self):
        img = np.zeros((5, 5), dtype=np.int32)
        img[2, 2] = 1  # strictly interior
        hooks = create_tile_hooks(labeled_tile(img))
        assert len(hooks) == 0

    def test_labels_sorted_strictly(self):
        rng = np.random.default_rng(0)
        img = (rng.random((8, 8)) < 0.5).astype(np.int32)
        hooks = create_tile_hooks(labeled_tile(img))
        assert (np.diff(hooks.labels) > 0).all()

    def test_offsets_point_to_border_pixels_with_label(self):
        rng = np.random.default_rng(1)
        img = (rng.random((6, 10)) < 0.5).astype(np.int32)
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        border = set(perimeter_indices(6, 10).tolist())
        flat = lab.ravel()
        for label, off in zip(hooks.labels, hooks.offsets):
            assert off in border
            assert flat[off] == label

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            create_tile_hooks(np.zeros(5, dtype=np.int64))

    def test_hook_ops_perimeter_sizes(self):
        assert hook_ops(5, 7) == 2 * (5 + 7) - 4
        assert hook_ops(1, 7) == 7
        assert hook_ops(7, 1) == 7
        assert hook_ops(0, 3) == 0


class TestApply:
    def test_no_changes_no_op(self):
        img = np.array([[1, 1], [0, 1]], dtype=np.int32)
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        assert np.array_equal(apply_hooks(lab, hooks), lab)

    def test_changed_hook_renames_whole_component(self):
        img = np.array(
            [
                [1, 1, 1],
                [0, 1, 0],
                [0, 1, 0],
            ],
            dtype=np.int32,
        )
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        # Simulate a merge renaming the border pixels to a global label.
        merged = lab.copy()
        border = perimeter_indices(3, 3)
        flat = merged.ravel()
        changes = ChangeArray(np.array([1]), np.array([99999]))
        flat[border] = apply_changes(flat[border], changes)
        out = apply_hooks(merged, hooks)
        assert (out[img != 0] == 99999).all()
        assert (out[img == 0] == 0).all()

    def test_only_matching_components_renamed(self):
        img = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
            ],
            dtype=np.int32,
        )
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        merged = lab.copy()
        left_label = lab[0, 0]
        merged[lab == left_label] = 777  # pretend the border update ran
        out = apply_hooks(merged, hooks)
        assert (out[:, 0] == 777).all()
        assert (out[:, 2] == lab[0, 2]).all()

    def test_empty_hooks(self):
        lab = np.zeros((3, 3), dtype=np.int64)
        out = apply_hooks(lab, TileHooks(np.empty(0, np.int64), np.empty(0, np.int64)))
        assert np.array_equal(out, lab)


class TestBfsReferenceEquivalence:
    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_mapping_equals_bfs(self, connectivity, rng):
        """The vectorized mapping update equals the paper's BFS relabel."""
        for _trial in range(10):
            img = (rng.random((8, 8)) < 0.5).astype(np.int32)
            lab = run_label(img, connectivity=connectivity, label_stride=1000)
            hooks = create_tile_hooks(lab)
            if len(hooks) == 0:
                continue
            # Rename a random subset of hooked components on the border,
            # as a merge iteration would.
            pick = hooks.labels[:: max(1, len(hooks) // 2)]
            changes = ChangeArray(np.sort(pick), np.sort(pick) + 10_000_000)
            merged = lab.copy()
            border = perimeter_indices(*lab.shape)
            flat = merged.ravel()
            flat[border] = apply_changes(flat[border], changes)
            fast = apply_hooks(merged, hooks)
            slow = apply_hooks_bfs(merged, hooks, connectivity=connectivity)
            assert np.array_equal(fast, slow)


@settings(max_examples=40, deadline=None)
@given(arrays(np.int32, (7, 7), elements=st.integers(min_value=0, max_value=1)))
def test_property_hooks_cover_exactly_border_components(img):
    lab = run_label(img, label_stride=100)
    hooks = create_tile_hooks(lab)
    border_labels = set(lab.ravel()[perimeter_indices(7, 7)].tolist()) - {0}
    assert set(hooks.labels.tolist()) == border_labels


class TestIsolatedFinalUpdate:
    """apply_hooks_isolated: the final update when a tile was spilled.

    An out-of-core shard holds *initial* labels everywhere (the merge
    rounds only touched its resident perimeter vector), whereas the
    all-resident path holds a tile whose perimeter pixels were updated
    in place.  The two final updates must agree exactly.
    """

    @staticmethod
    def _case(seed, h, w):
        from repro.core.hooks import apply_hooks_isolated

        rng = np.random.default_rng(seed)
        img = (rng.random((h, w)) < 0.55).astype(np.int32)
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        perim = perimeter_indices(h, w)
        border = lab.ravel()[perim]
        # A synthetic merge outcome: remap every other border label.
        present = np.unique(border[border != 0])
        if present.size == 0:
            pytest.skip("tile has no border components")
        alphas = present[::2]
        changes = ChangeArray(alphas, alphas + 10_000)
        new_border = apply_changes(border, changes)

        resident = lab.ravel().copy()
        resident[perim] = new_border
        expected = apply_hooks(resident.reshape(h, w), hooks)
        got = apply_hooks_isolated(lab, hooks, new_border)
        return expected, got

    @pytest.mark.parametrize("seed,h,w", [(0, 6, 6), (1, 8, 10), (2, 5, 12), (3, 16, 16)])
    def test_matches_all_resident_path(self, seed, h, w):
        expected, got = self._case(seed, h, w)
        assert np.array_equal(expected, got)

    def test_identity_changes_reproduce_apply_hooks(self):
        from repro.core.hooks import apply_hooks_isolated

        rng = np.random.default_rng(9)
        img = (rng.random((7, 7)) < 0.5).astype(np.int32)
        lab = labeled_tile(img)
        hooks = create_tile_hooks(lab)
        border = lab.ravel()[perimeter_indices(7, 7)]
        assert np.array_equal(
            apply_hooks_isolated(lab, hooks, border), apply_hooks(lab, hooks)
        )

    def test_rejects_wrong_border_length(self):
        from repro.core.hooks import apply_hooks_isolated

        lab = labeled_tile(np.ones((4, 4), dtype=np.int32))
        hooks = create_tile_hooks(lab)
        with pytest.raises(ValidationError):
            apply_hooks_isolated(lab, hooks, np.zeros(5, dtype=np.int64))

    def test_rejects_non_2d(self):
        from repro.core.hooks import apply_hooks_isolated

        lab = labeled_tile(np.ones((4, 4), dtype=np.int32))
        hooks = create_tile_hooks(lab)
        with pytest.raises(ValidationError):
            apply_hooks_isolated(lab.ravel(), hooks, np.zeros(12, dtype=np.int64))

"""Tests for the two-pass (raster + union-find) labeling engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import bfs_label, sequential_components, two_pass_label
from repro.utils.errors import ValidationError


class TestBasics:
    def test_empty(self):
        out = two_pass_label(np.zeros((4, 4), dtype=np.int32))
        assert not out.any()

    def test_registered_as_engine(self, small_binary):
        via_registry = sequential_components(small_binary, engine="twopass")
        direct = two_pass_label(small_binary)
        assert np.array_equal(via_registry, direct)

    def test_stairs_pattern_needs_merging(self):
        """A pattern where raster scanning creates provisional labels
        that must be merged (the classic two-pass stress shape)."""
        img = np.array(
            [
                [1, 0, 1, 0, 1],
                [1, 0, 1, 0, 1],
                [1, 1, 1, 1, 1],
            ],
            dtype=np.int32,
        )
        out = two_pass_label(img, connectivity=4)
        fg = out[img != 0]
        assert (fg == fg[0]).all()  # one component after equivalences

    def test_u_shape_4conn(self):
        img = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=np.int32,
        )
        out = two_pass_label(img, connectivity=4)
        assert len(np.unique(out[out != 0])) == 1

    def test_invalid_connectivity(self):
        with pytest.raises(ValidationError):
            two_pass_label(np.ones((2, 2), dtype=np.int32), connectivity=6)

    def test_offsets(self):
        img = np.ones((2, 2), dtype=np.int32)
        out = two_pass_label(img, label_stride=50, row_offset=1, col_offset=2)
        assert out[0, 0] == 1 + 1 * 50 + 2

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_matches_bfs_random(self, connectivity, rng):
        for trial in range(8):
            img = (rng.random((18, 18)) < 0.5).astype(np.int32)
            assert np.array_equal(
                bfs_label(img, connectivity=connectivity),
                two_pass_label(img, connectivity=connectivity),
            ), (trial, connectivity)

    def test_matches_bfs_grey(self, small_grey):
        assert np.array_equal(
            bfs_label(small_grey, grey=True), two_pass_label(small_grey, grey=True)
        )


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.int32, (12, 12), elements=st.integers(min_value=0, max_value=2)),
    st.sampled_from([4, 8]),
    st.booleans(),
)
def test_property_two_pass_equals_bfs(img, connectivity, grey):
    a = bfs_label(img, connectivity=connectivity, grey=grey)
    b = two_pass_label(img, connectivity=connectivity, grey=grey)
    assert np.array_equal(a, b)

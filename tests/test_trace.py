"""Tests for the per-processor tracer and Gantt rendering."""

import numpy as np
import pytest

from repro.bdm import Machine, Tracer
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, IDEAL
from repro.utils.errors import ConfigurationError


class TestTracer:
    def test_records_phases(self):
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("alpha"):
            m.procs[0].charge_comp(100)
        with m.phase("beta"):
            m.procs[1].charge_comp(200)
        assert [ph.name for ph in tracer.phases] == ["alpha", "beta"]

    def test_busy_attribution(self):
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("x"):
            m.procs[2].charge_comp(1000)
        busy = tracer.phases[0].busy_s
        assert busy[2] > 0
        assert busy[0] == busy[1] == busy[3] == 0

    def test_utilization_balanced_phase(self):
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("x"):
            for proc in m.procs:
                proc.charge_comp(500)
        assert tracer.phases[0].utilization == pytest.approx(1.0)

    def test_utilization_single_worker(self):
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("x"):
            m.procs[0].charge_comp(500)
        assert tracer.phases[0].utilization == pytest.approx(0.25)

    def test_report_still_correct_when_traced(self):
        """Tracing must not change the machine's cost accounting."""
        img = random_greyscale(32, 16, seed=1)
        plain = parallel_histogram(img, 16, 4, CM5)
        m = Machine(4, CM5)
        Tracer(m)
        traced = parallel_histogram(img, 16, 4, CM5, machine=m)
        assert traced.elapsed_s == pytest.approx(plain.elapsed_s)
        assert np.array_equal(traced.histogram, plain.histogram)

    def test_double_attach_rejected(self):
        m = Machine(2, IDEAL)
        Tracer(m)
        with pytest.raises(ConfigurationError):
            Tracer(m)

    def test_attach_after_phases_rejected(self):
        m = Machine(2, IDEAL)
        with m.phase("early"):
            pass
        with pytest.raises(ConfigurationError):
            Tracer(m)


class TestRendering:
    def _traced_cc(self):
        m = Machine(8, CM5)
        tracer = Tracer(m)
        img = binary_test_image(9, 64)
        parallel_components(img, 8, machine=m)
        return tracer

    def test_gantt_shape(self):
        tracer = self._traced_cc()
        lines = tracer.gantt(width=40).splitlines()
        assert len(lines) == 9  # header + 8 processors
        assert lines[1].startswith("P0")

    def test_gantt_empty(self):
        m = Machine(2, IDEAL)
        tracer = Tracer(m)
        assert "no phases" in tracer.gantt()

    def test_imbalance_table_contains_phases(self):
        tracer = self._traced_cc()
        table = tracer.imbalance_table()
        assert "cc:label" in table
        assert "%" in table

    def test_merge_phases_show_imbalance(self):
        """Solve phases run on managers only: utilization well below 1."""
        tracer = self._traced_cc()
        solves = [ph for ph in tracer.phases if "solve" in ph.name]
        assert solves
        assert min(ph.utilization for ph in solves) < 0.7

    def test_label_phase_balanced(self):
        tracer = self._traced_cc()
        label = next(ph for ph in tracer.phases if ph.name == "cc:label")
        assert label.utilization > 0.95

    def test_overall_utilization_bounds(self):
        tracer = self._traced_cc()
        u = tracer.utilization()
        assert 0.0 < u <= 1.0


class TestResetAndDetach:
    def test_reset_clears_tracer_phases(self):
        """A stale tracer must not keep phases from before the reset."""
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("before"):
            m.procs[0].charge_comp(100)
        m.reset()
        assert tracer.phases == []
        with m.phase("after"):
            m.procs[0].charge_comp(100)
        assert [ph.name for ph in tracer.phases] == ["after"]

    def test_detach_stops_recording(self):
        m = Machine(4, CM5)
        tracer = Tracer(m)
        with m.phase("a"):
            m.procs[0].charge_comp(100)
        tracer.detach()
        with m.phase("b"):
            m.procs[0].charge_comp(100)
        assert [ph.name for ph in tracer.phases] == ["a"]
        # the machine still accounts phases normally after the detach
        assert [ph.name for ph in m.report().phases] == ["a", "b"]

    def test_detach_frees_tracer_slot(self):
        m = Machine(2, IDEAL)
        Tracer(m).detach()
        Tracer(m)  # no ConfigurationError: slot was released

    def test_detach_is_idempotent(self):
        m = Machine(2, IDEAL)
        tracer = Tracer(m)
        tracer.detach()
        tracer.detach()


class TestGanttWidth:
    def _run_phases(self, elapsed):
        """One phase per entry of ``elapsed`` (abstract op counts)."""
        m = Machine(2, CM5)
        tracer = Tracer(m)
        for i, ops in enumerate(elapsed):
            with m.phase(f"ph{i}"):
                m.procs[0].charge_comp(ops)
        return tracer

    def _bar_lengths(self, gantt):
        rows = gantt.splitlines()[1:]
        return [len(r.split("|", 1)[1].replace("|", "")) for r in rows]

    @pytest.mark.parametrize("width", [7, 13, 40, 60])
    def test_rows_never_exceed_width(self, width):
        """Regression: per-phase int(round()) spans used to sum past width."""
        # Many near-equal phases maximize rounding accumulation.
        tracer = self._run_phases([10, 11, 10, 12, 11, 10, 13, 11, 10, 12])
        for length in self._bar_lengths(tracer.gantt(width=width)):
            assert length <= width

    def test_rows_fill_width_exactly(self):
        tracer = self._run_phases([100, 200, 300])
        assert self._bar_lengths(tracer.gantt(width=30)) == [30, 30]

    def test_rows_equal_length(self):
        tracer = self._run_phases([7, 91, 23, 5, 44])
        lengths = self._bar_lengths(tracer.gantt(width=33))
        assert len(set(lengths)) == 1

    def test_tiny_phase_dropped_not_overflowing(self):
        """A phase far below one column's worth of time may be dropped,
        but must never push the row past the requested width."""
        tracer = self._run_phases([1, 10000, 10000])
        for length in self._bar_lengths(tracer.gantt(width=10)):
            assert length <= 10


class TestMachineParameterPassing:
    def test_wrong_p_rejected(self):
        from repro.utils.errors import ValidationError

        img = random_greyscale(32, 16, seed=0)
        m = Machine(8, CM5)
        with pytest.raises(ValidationError, match="processors"):
            parallel_histogram(img, 16, 4, machine=m)

    def test_cc_accepts_machine(self):
        img = binary_test_image(5, 32)
        m = Machine(4, CM5)
        res = parallel_components(img, 4, machine=m)
        assert res.report.machine_name == "TMC CM-5"

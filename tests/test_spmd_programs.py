"""Tests: the SPMD listings match the phase-style implementations."""

import numpy as np
import pytest

from repro.baselines import sequential_histogram
from repro.bdm import GlobalArray, Machine, broadcast, transpose
from repro.core.histogram import parallel_histogram
from repro.core.spmd_programs import spmd_broadcast, spmd_histogram, spmd_transpose
from repro.images import random_greyscale
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError


class TestSpmdTransposeProgram:
    @pytest.mark.parametrize("p,q", [(2, 4), (4, 16), (8, 32)])
    def test_matches_phase_layout(self, p, q):
        mat = np.arange(p * q).reshape(p, q)
        m1 = Machine(p, IDEAL)
        A = GlobalArray(m1, q)
        A.scatter_rows(mat)
        expected = transpose(m1, A).gather_rows()
        got = spmd_transpose(Machine(p, IDEAL), mat)
        assert np.array_equal(got, expected)

    def test_divisibility(self):
        with pytest.raises(ValidationError):
            spmd_transpose(Machine(4, IDEAL), np.zeros((4, 6)))

    def test_wrong_row_count(self):
        with pytest.raises(ValidationError):
            spmd_transpose(Machine(4, IDEAL), np.zeros((3, 8)))


class TestSpmdBroadcastProgram:
    @pytest.mark.parametrize("root", [0, 2])
    def test_everyone_gets_payload(self, root):
        p, q = 4, 12
        payload = np.arange(1, q + 1)
        got = spmd_broadcast(Machine(p, IDEAL), payload, root=root)
        for pid in range(p):
            assert np.array_equal(got[pid], payload)

    def test_comm_cost_matches_phase_broadcast(self):
        p, q = 4, 32
        m1 = Machine(p, CM5)
        A = GlobalArray(m1, q)
        broadcast(m1, A)
        phase_comm = m1.report().comm_s

        m2 = Machine(p, CM5)
        spmd_broadcast(m2, np.zeros(q, dtype=np.int64))
        assert m2.report().comm_s == pytest.approx(phase_comm)


class TestSpmdHistogramProgram:
    @pytest.mark.parametrize("k,p", [(16, 4), (256, 16), (64, 64)])
    def test_matches_sequential(self, k, p):
        img = random_greyscale(32, k, seed=k + p)
        hist, machine = spmd_histogram(img, k, p, IDEAL)
        assert np.array_equal(hist, sequential_histogram(img, k))

    def test_comm_cost_matches_phase_histogram(self):
        img = random_greyscale(64, 64, seed=2)
        phase_res = parallel_histogram(img, 64, 16, CM5)
        hist, machine = spmd_histogram(img, 64, 16, CM5)
        assert np.array_equal(hist, phase_res.histogram)
        assert machine.report().comm_s == pytest.approx(
            phase_res.report.comm_s, rel=0.01
        )

    @pytest.mark.parametrize("k,p", [(4, 16), (8, 64), (2, 4)])
    def test_truncated_transpose_path(self, k, p):
        """k < p: grey level i is gathered onto processor i."""
        img = random_greyscale(32, k, seed=k + p)
        hist, machine = spmd_histogram(img, k, p, IDEAL)
        assert np.array_equal(hist, sequential_histogram(img, k))

    def test_truncated_matches_phase_cost(self):
        img = random_greyscale(64, 8, seed=7)
        phase = parallel_histogram(img, 8, 32, CM5)
        hist, machine = spmd_histogram(img, 8, 32, CM5)
        assert np.array_equal(hist, phase.histogram)
        assert machine.report().comm_s == pytest.approx(
            phase.report.comm_s, rel=0.10
        )

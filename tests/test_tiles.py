"""Tests for the processor grid and tile geometry (Section 3)."""

import numpy as np
import pytest

from repro.core.tiles import ProcessorGrid, edge_indices, perimeter_indices
from repro.utils.errors import ConfigurationError


class TestGridShape:
    @pytest.mark.parametrize(
        "p,v,w",
        [(1, 1, 1), (2, 1, 2), (4, 2, 2), (8, 2, 4), (16, 4, 4), (32, 4, 8), (64, 8, 8), (128, 8, 16)],
    )
    def test_paper_grid_shapes(self, p, v, w):
        """v = 2^floor(d/2), w = 2^ceil(d/2) -- wider than tall for odd d."""
        g = ProcessorGrid(p, 256)
        assert (g.v, g.w) == (v, w)

    def test_tile_dims(self):
        g = ProcessorGrid(32, 512)
        assert (g.q, g.r) == (128, 64)  # the paper's Figure 4 example

    def test_rejects_non_power_p(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(6, 64)

    def test_rejects_indivisible_n(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(8, 30)  # w = 4 does not divide 30

    def test_rejects_p_above_pixels(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(16, 2)


class TestCoordinates:
    def test_row_major_assignment(self):
        g = ProcessorGrid(8, 64)  # 2 x 4 grid
        assert g.coords(0) == (0, 0)
        assert g.coords(3) == (0, 3)
        assert g.coords(4) == (1, 0)
        assert g.coords(7) == (1, 3)

    def test_pid_at_inverse(self):
        g = ProcessorGrid(32, 512)
        for pid in range(32):
            assert g.pid_at(*g.coords(pid)) == pid

    def test_bounds_checked(self):
        g = ProcessorGrid(4, 64)
        with pytest.raises(ConfigurationError):
            g.coords(4)
        with pytest.raises(ConfigurationError):
            g.pid_at(2, 0)

    def test_tile_origin(self):
        g = ProcessorGrid(32, 512)
        assert g.tile_origin(0) == (0, 0)
        assert g.tile_origin(9) == (128, 64)  # grid (1,1): I*q, J*r


class TestScatterGather:
    def test_roundtrip(self):
        g = ProcessorGrid(8, 32)
        img = np.arange(32 * 32, dtype=np.int32).reshape(32, 32)
        tiles = g.scatter(img)
        assert len(tiles) == 8
        assert tiles[0].shape == (g.q, g.r)
        assert np.array_equal(g.gather(tiles), img)

    def test_tiles_partition_image(self):
        g = ProcessorGrid(16, 64)
        img = np.ones((64, 64), dtype=np.int32)
        tiles = g.scatter(img)
        assert sum(t.sum() for t in tiles) == img.sum()

    def test_scatter_checks_size(self):
        g = ProcessorGrid(4, 64)
        with pytest.raises(ConfigurationError):
            g.scatter(np.ones((32, 32), dtype=np.int32))

    def test_gather_checks_tile_shape(self):
        g = ProcessorGrid(4, 64)
        bad = [np.ones((4, 4), dtype=np.int32)] * 4
        with pytest.raises(ConfigurationError):
            g.gather(bad)

    def test_gather_checks_count(self):
        g = ProcessorGrid(4, 64)
        with pytest.raises(ConfigurationError):
            g.gather([np.ones((32, 32), dtype=np.int32)] * 3)

    def test_scatter_copies(self):
        g = ProcessorGrid(4, 8)
        img = np.zeros((8, 8), dtype=np.int32)
        tiles = g.scatter(img)
        tiles[0][:] = 9
        assert img.sum() == 0


class TestEdges:
    def test_edge_contents(self):
        # 3x4 tile, flat indices 0..11
        assert np.array_equal(edge_indices(3, 4, "top"), [0, 1, 2, 3])
        assert np.array_equal(edge_indices(3, 4, "bottom"), [8, 9, 10, 11])
        assert np.array_equal(edge_indices(3, 4, "left"), [0, 4, 8])
        assert np.array_equal(edge_indices(3, 4, "right"), [3, 7, 11])

    def test_unknown_edge(self):
        with pytest.raises(ConfigurationError):
            edge_indices(3, 4, "diagonal")

    def test_perimeter_count(self):
        per = perimeter_indices(5, 7)
        assert len(per) == 2 * (5 + 7) - 4

    def test_perimeter_degenerate_row(self):
        assert np.array_equal(perimeter_indices(1, 4), [0, 1, 2, 3])

    def test_perimeter_degenerate_col(self):
        assert np.array_equal(perimeter_indices(4, 1), [0, 1, 2, 3])

    def test_perimeter_sorted_unique(self):
        per = perimeter_indices(6, 6)
        assert np.array_equal(per, np.unique(per))

    def test_perimeter_is_boundary_of_mask(self):
        q, r = 6, 9
        mask = np.zeros((q, r), dtype=bool)
        mask.ravel()[perimeter_indices(q, r)] = True
        expected = np.zeros((q, r), dtype=bool)
        expected[0, :] = expected[-1, :] = True
        expected[:, 0] = expected[:, -1] = True
        assert np.array_equal(mask, expected)


class TestRectangularGrids:
    def test_rect_construction(self):
        g = ProcessorGrid(8, (32, 64))  # 2x4 grid
        assert (g.rows, g.cols) == (32, 64)
        assert (g.q, g.r) == (16, 16)

    def test_n_alias_square_only(self):
        assert ProcessorGrid(4, (16, 16)).n == 16
        with pytest.raises(ConfigurationError):
            _ = ProcessorGrid(4, (16, 32)).n

    def test_rect_scatter_gather(self):
        g = ProcessorGrid(8, (16, 32))
        img = np.arange(16 * 32, dtype=np.int32).reshape(16, 32)
        assert np.array_equal(g.gather(g.scatter(img)), img)

    def test_rect_divisibility(self):
        # (30, 32) is fine with the 2x4 grid (30%2 == 0, 32%4 == 0) ...
        ProcessorGrid(8, (30, 32))
        # ... but the transpose is not: w=4 does not divide 30.
        with pytest.raises(ConfigurationError):
            ProcessorGrid(8, (32, 30))

    def test_bad_shape_arg(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(4, "16x16")
        with pytest.raises(ConfigurationError):
            ProcessorGrid(4, (16, 0))


class TestBalancedPartition:
    """Non-strict (balanced) tilings: n need not divide by v or w."""

    def test_strict_default_still_rejects(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(8, 30)
        with pytest.raises(ConfigurationError):
            ProcessorGrid(8, 30, strict=True)

    def test_balanced_accepts_indivisible(self):
        g = ProcessorGrid(8, 30, strict=False)  # 2x4 grid over 30x30
        assert (g.v, g.w) == (2, 4)
        assert not g.uniform

    @pytest.mark.parametrize("p,rows,cols", [(8, 30, 30), (4, 7, 9), (16, 17, 23), (2, 5, 3)])
    def test_tiles_partition_exactly(self, p, rows, cols):
        g = ProcessorGrid(p, (rows, cols), strict=False)
        seen = np.zeros((rows, cols), dtype=np.int64)
        for pid in range(p):
            sl = g.tile_slices(pid)
            seen[sl] += 1
            assert g.tile_shape(pid) == seen[sl].shape
        assert (seen == 1).all()

    @pytest.mark.parametrize("p,rows,cols", [(8, 30, 30), (16, 17, 23)])
    def test_tile_shapes_within_one_pixel(self, p, rows, cols):
        g = ProcessorGrid(p, (rows, cols), strict=False)
        hs = {g.tile_shape(pid)[0] for pid in range(p)}
        ws = {g.tile_shape(pid)[1] for pid in range(p)}
        assert max(hs) - min(hs) <= 1
        assert max(ws) - min(ws) <= 1

    def test_uniform_accessors_raise_on_balanced(self):
        g = ProcessorGrid(8, 30, strict=False)
        with pytest.raises(ConfigurationError, match="non-uniform"):
            g.q
        with pytest.raises(ConfigurationError, match="non-uniform"):
            g.r

    def test_uniform_accessors_work_when_divisible(self):
        # strict=False on a divisible image still yields uniform tiles.
        g = ProcessorGrid(8, 32, strict=False)
        assert g.uniform
        assert (g.q, g.r) == (16, 8)

    def test_rejects_empty_tiles(self):
        # 2x4 grid needs at least 2 rows and 4 cols.
        with pytest.raises(ConfigurationError, match="empty"):
            ProcessorGrid(8, (1, 16), strict=False)

    def test_scatter_gather_roundtrip_balanced(self):
        rng = np.random.default_rng(3)
        img = rng.integers(0, 9, size=(13, 21))
        g = ProcessorGrid(4, img.shape, strict=False)
        assert np.array_equal(g.gather(g.scatter(img)), img)


class TestShapeOverride:
    """Explicit (v, w) grids: strips and columns."""

    def test_row_strip_1xp(self):
        g = ProcessorGrid(4, (8, 64), shape=(1, 4))
        assert (g.v, g.w) == (1, 4)
        assert g.tile_shape(0) == (8, 16)

    def test_column_strip_px1(self):
        g = ProcessorGrid(4, (64, 8), shape=(4, 1))
        assert (g.v, g.w) == (4, 1)
        assert g.tile_shape(0) == (16, 8)

    def test_strip_balanced_indivisible(self):
        g = ProcessorGrid(4, (10, 64), shape=(4, 1), strict=False)
        assert sum(g.tile_shape(pid)[0] for pid in range(4)) == 10

    def test_shape_product_must_be_p(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(4, 64, shape=(2, 4))

    def test_strict_strip_must_divide(self):
        with pytest.raises(ConfigurationError):
            ProcessorGrid(4, (10, 64), shape=(4, 1))

"""Tests for the shard router: ring, breakers, routing, failover.

The expensive multi-process paths (spawned shards, SIGKILL chaos) live
in the CLI selftest and chaos drill; everything here runs shards
*in-process* -- ``RouterConfig(shard_sockets=[...])`` -- so one event
loop hosts the router and its shards and the suite stays fast.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, assert_no_shm_leak
from repro.faults.inject import install_plan
from repro.images import darpa_like
from repro.service import (
    BatchService,
    CircuitBreaker,
    HashRing,
    RouterConfig,
    ServiceConfig,
    ServiceServer,
    encode_array,
    request_over_socket,
)
from repro.service.health import CLOSED, HALF_OPEN, OPEN, probe_timeout
from repro.service.router import ShardRouter, request_op, routing_key
from repro.utils.aio import cancel_and_reap
from repro.utils.errors import ValidationError


class TestRoutingKey:
    def test_digest_wins_over_everything(self):
        digest = "ab" * 32
        line = (
            b'{"op": "histogram", "image": {"shm": {"digest": "%s"}},'
            b' "data_b64": "QUJD"}' % digest.encode()
        )
        assert routing_key(line) == digest.encode()

    def test_payload_bytes_key_ndjson(self):
        a = b'{"op": "histogram", "image": {"data_b64": "QUJDRA=="}}'
        b = b'{"id": 9, "op": "histogram", "image": {"data_b64": "QUJDRA=="}}'
        # Same pixels, different envelope -> same affinity key.
        assert routing_key(a) == routing_key(b)

    def test_whole_line_fallback_is_stable(self):
        line = b'{"op": "components", "image": {"pattern": 3, "size": 16}}'
        assert routing_key(line) == routing_key(line)
        other = b'{"op": "components", "image": {"pattern": 4, "size": 16}}'
        assert routing_key(line) != routing_key(other)

    def test_request_op(self):
        assert request_op(b'{"op": "ping"}') == "ping"
        assert request_op(b'{"id": 1, "op": "stats"}') == "stats"
        assert request_op(b"not json at all") is None


class TestHashRing:
    def test_route_is_deterministic(self):
        a = HashRing([0, 1, 2])
        b = HashRing([2, 0, 1])  # order must not matter
        for i in range(50):
            key = f"key-{i}".encode()
            assert a.route(key) == b.route(key)

    def test_walk_covers_every_shard_once(self):
        ring = HashRing([0, 1, 2, 3])
        for i in range(20):
            order = ring.walk(f"key-{i}".encode())
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == ring.route(f"key-{i}".encode())

    def test_partition_is_reasonably_balanced(self):
        ring = HashRing([0, 1, 2], vnodes=64)
        counts = {0: 0, 1: 0, 2: 0}
        for i in range(600):
            counts[ring.route(f"image-{i}".encode())] += 1
        # 64 vnodes/shard keeps the spread well inside 2x of fair share.
        assert min(counts.values()) > 0
        assert max(counts.values()) < 2 * (600 / 3)

    def test_single_shard_ring(self):
        ring = HashRing([7])
        assert ring.walk(b"anything") == [7]

    def test_rejects_empty_and_bad_vnodes(self):
        with pytest.raises(ValidationError):
            HashRing([])
        with pytest.raises(ValidationError):
            HashRing([0], vnodes=0)


class _Clock:
    """Deterministic monotonic clock for breaker cooldown tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def _tripped(self, clock, **kw):
        b = CircuitBreaker(0, fail_threshold=3, open_s=0.5, clock=clock, **kw)
        for _ in range(3):
            b.record_failure()
        return b

    def test_trips_after_threshold_consecutive_failures(self):
        clock = _Clock()
        b = CircuitBreaker(0, fail_threshold=3, open_s=0.5, clock=clock)
        b.record_failure()
        b.record_failure()
        b.record_success()  # success resets the consecutive count
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()

    def test_half_open_trial_after_cooldown_then_close(self):
        clock = _Clock()
        b = self._tripped(clock)
        clock.now += 0.6  # past open_s
        assert b.allow()  # the single half-open trial
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED
        assert b.recovered()

    def test_failed_trial_doubles_the_cooldown(self):
        clock = _Clock()
        b = self._tripped(clock)
        clock.now += 0.6
        assert b.allow()
        b.record_failure()  # trial failed: re-open, cooldown doubles
        assert b.state == OPEN
        assert b.cooldown_s == pytest.approx(1.0)
        clock.now += 0.6  # inside the doubled cooldown
        assert not b.allow()
        clock.now += 0.6  # now past it
        assert b.allow()
        assert b.state == HALF_OPEN

    def test_cooldown_is_capped(self):
        clock = _Clock()
        b = self._tripped(clock)
        for _ in range(12):  # keep failing every trial
            clock.now += 100.0
            assert b.allow()
            b.record_failure()
        assert b.cooldown_s == pytest.approx(8.0)  # MAX_OPEN_S

    def test_recovered_needs_the_full_arc(self):
        clock = _Clock()
        b = CircuitBreaker(0, fail_threshold=1, open_s=0.5, clock=clock)
        assert not b.recovered()  # never opened
        b.record_failure()
        assert not b.recovered()  # open, not yet back
        clock.now += 1.0
        b.allow()
        assert not b.recovered()  # half-open, not yet closed
        b.record_success()
        assert b.recovered()

    def test_snapshot_shape(self):
        b = CircuitBreaker(0)
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failures"] == 1
        assert "cooldown_s" in snap and "recovered" in snap

    def test_probe_timeout_clamps(self):
        assert probe_timeout(None) <= 0.5
        assert probe_timeout(0.1) == pytest.approx(0.1)


def _router_scenario(handler, *, shards=3, **config_kw):
    """Run ``handler(router, servers)`` against in-process shards.

    Each shard is a real :class:`ServiceServer` (own BatchService, own
    cache) on a temp socket; the router fronts them in the external
    (``spawn=False``) mode.  The whole scenario runs under the shm leak
    check.
    """

    async def scenario(tmp_path):
        servers = []
        for sid in range(shards):
            service = BatchService(ServiceConfig(workers=1))
            server = ServiceServer(
                service, str(tmp_path / f"shard-{sid}.sock"), shard_id=sid
            )
            await server.start()
            servers.append(server)
        config_kw.setdefault("probe_interval_s", 0.02)
        config_kw.setdefault("open_s", 0.1)
        router = ShardRouter(
            str(tmp_path / "router.sock"),
            RouterConfig(
                shard_sockets=[s.socket_path for s in servers], **config_kw
            ),
        )
        await router.start()
        try:
            await handler(router, servers)
        finally:
            await router.stop()
            for server in servers:
                await server.stop()

    def run(tmp_path):
        with assert_no_shm_leak(grace_s=2.0):
            asyncio.run(scenario(tmp_path))

    return run


async def _raw_request(path: str, line: bytes) -> dict:
    reader, writer = await asyncio.open_unix_connection(path)
    try:
        writer.write(line)
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()


def _compute_line(pattern: int, size: int = 16) -> bytes:
    obj = {"op": "components", "image": {"pattern": pattern, "size": size}}
    return (json.dumps(obj) + "\n").encode()


class TestShardRouter:
    def test_digest_affinity_lands_on_the_home_shard(self, tmp_path):
        async def handler(router, servers):
            for pattern in range(1, 7):
                line = _compute_line(pattern)
                home = router.ring.route(routing_key(line))
                before = router.snapshot()["shards"][str(home)]["forwards"]
                reply = await _raw_request(router.socket_path, line)
                assert reply["ok"]
                after = router.snapshot()["shards"][str(home)]["forwards"]
                assert after == before + 1  # served exactly by its home
            snap = router.snapshot()["router"]
            assert snap["completed"] == 6
            assert snap["reroutes"] == 0

        _router_scenario(handler)(tmp_path)

    def test_repeat_image_hits_the_same_shards_cache(self, tmp_path):
        async def handler(router, servers):
            img = darpa_like(24, 256, seed=31)
            req = {"op": "histogram", "image": encode_array(img),
                   "params": {"k": 256}}
            first = await request_over_socket(router.socket_path, req)
            second = await request_over_socket(router.socket_path, req)
            assert first["ok"] and second["ok"]
            assert first["result"] == second["result"]
            hits = sum(
                s.service.cache.stats.hits for s in servers
                if s.service.cache is not None
            )
            assert hits == 1  # repeat routed to the shard holding it

        _router_scenario(handler)(tmp_path)

    def test_router_ping_and_stats_answer_locally(self, tmp_path):
        async def handler(router, servers):
            pong = await request_over_socket(router.socket_path, {"op": "ping"})
            assert pong["result"]["router"] is True
            assert pong["result"]["shards"] == 3
            assert pong["result"]["healthy"] == 3
            stats = await request_over_socket(router.socket_path, {"op": "stats"})
            assert stats["result"]["schema"] == "repro-router-stats/v1"
            assert set(stats["result"]["shards"]) == {"0", "1", "2"}

        _router_scenario(handler)(tmp_path)

    def test_dead_shard_reroutes_to_ring_successor(self, tmp_path):
        async def handler(router, servers):
            line = _compute_line(2, size=24)
            home = router.ring.route(routing_key(line))
            expected = await _raw_request(router.socket_path, line)
            await servers[home].stop()  # the home shard goes away
            reply = await _raw_request(router.socket_path, line)
            assert reply["ok"]
            assert reply["result"] == expected["result"]  # bit-identical
            assert router.stats.reroutes >= 1

        _router_scenario(handler)(tmp_path)

    def test_open_breaker_skips_the_shard_without_an_attempt(self, tmp_path):
        async def handler(router, servers):
            line = _compute_line(3)
            home = router.ring.route(routing_key(line))
            await servers[home].stop()
            # Let the probes trip the breaker all the way open.
            deadline = asyncio.get_running_loop().time() + 5.0
            while (router.breakers[home].state != OPEN
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.02)
            assert router.breakers[home].state == OPEN
            reply = await _raw_request(router.socket_path, line)
            assert reply["ok"]
            assert router.snapshot()["shards"][str(home)]["forwards"] == 0

        _router_scenario(handler)(tmp_path)

    def test_all_shards_down_is_a_typed_error(self, tmp_path):
        async def handler(router, servers):
            for server in servers:
                await server.stop()
            reply = await _raw_request(
                router.socket_path, _compute_line(1)
            )
            assert not reply["ok"]
            assert reply["error"]["type"] == "ShardDownError"

        _router_scenario(handler, shards=2)(tmp_path)

    def test_hedged_request_wins_on_the_successor(self, tmp_path):
        async def handler(router, servers):
            line = _compute_line(5, size=24)
            home = router.ring.route(routing_key(line))
            expected = await _raw_request(router.socket_path, line)
            # Hang the *forward* to the home shard (router-side fault
            # site); the hedge fires after hedge_s and wins.
            install_plan(FaultPlan(seed=1, faults=(
                FaultSpec("svc:route", "hang", task=home),
            )))
            try:
                reply = await asyncio.wait_for(
                    _raw_request(router.socket_path, line), timeout=10
                )
            finally:
                install_plan(None)
            assert reply["ok"]
            assert reply["result"] == expected["result"]
            assert router.stats.hedges == 1
            assert router.stats.hedge_wins == 1

        _router_scenario(handler, hedge_s=0.05)(tmp_path)

    def test_shutdown_op_drains_new_requests(self, tmp_path):
        async def handler(router, servers):
            reply = await request_over_socket(
                router.socket_path, {"op": "shutdown"}
            )
            assert reply["ok"] and reply["result"] == "draining"
            pong = await request_over_socket(router.socket_path, {"op": "ping"})
            assert pong["result"]["draining"] is True
            shed = await _raw_request(router.socket_path, _compute_line(1))
            assert not shed["ok"]
            assert shed["error"]["type"] == "ServiceDrainingError"

        _router_scenario(handler, shards=2)(tmp_path)

    def test_metrics_op_exposes_router_series(self, tmp_path):
        async def handler(router, servers):
            await _raw_request(router.socket_path, _compute_line(4))
            text = (await request_over_socket(
                router.socket_path, {"op": "metrics"}
            ))["result"]
            assert "repro_router_requests_total" in text
            assert "repro_router_healthy_shards" in text

        _router_scenario(handler, shards=2)(tmp_path)


class TestCancelAndReap:
    """Teardown robustness: stop() must survive a swallowed cancel.

    ``asyncio.wait_for`` on 3.11 can consume an external cancellation
    that lands as its inner future settles; a monitor/batcher loop then
    keeps running with the cancel request spent and a bare
    ``task.cancel(); await task`` hangs forever (the flake this guards
    against showed up as a 60s timeout in ``ShardRouter.stop()``).
    """

    def test_reaps_a_task_that_swallows_the_first_cancel(self):
        async def scenario():
            swallowed = asyncio.Event()

            async def stubborn():
                # Model of the wait_for race: the first cancellation is
                # absorbed and the loop keeps going; only a *second*
                # cancel terminates it.
                absorbed = False
                while True:
                    try:
                        await asyncio.sleep(3600)
                    except asyncio.CancelledError:
                        if absorbed:
                            raise
                        absorbed = True
                        swallowed.set()

            task = asyncio.ensure_future(stubborn())
            await asyncio.sleep(0)  # let it park in the sleep
            await asyncio.wait_for(
                cancel_and_reap(task, poke_s=0.01), timeout=5.0
            )
            assert task.done()
            assert swallowed.is_set()  # the race actually happened

        asyncio.run(scenario())

    def test_plain_task_is_reaped_on_the_first_cancel(self):
        async def scenario():
            task = asyncio.ensure_future(asyncio.sleep(3600))
            await asyncio.sleep(0)
            await asyncio.wait_for(cancel_and_reap(task), timeout=5.0)
            assert task.cancelled()

        asyncio.run(scenario())


class TestRouterConfig:
    def test_shard_sockets_fix_the_shard_count(self):
        cfg = RouterConfig(shards=5, shard_sockets=["/tmp/a", "/tmp/b"])
        assert cfg.shards == 2
        assert not cfg.spawn

    def test_spawn_mode_by_default(self):
        assert RouterConfig().spawn

    def test_validation(self):
        with pytest.raises(ValidationError):
            RouterConfig(shards=0)
        with pytest.raises(ValidationError):
            RouterConfig(hedge_s=0.0)
        with pytest.raises(ValidationError):
            RouterConfig(workers_per_shard=0)
        with pytest.raises(ValidationError):
            RouterConfig(drain_deadline_s=-1.0)

    def test_long_shard_socket_fails_at_construction(self, tmp_path):
        long_path = "/tmp/" + "x" * 120
        with pytest.raises(ValidationError, match="sun_path"):
            ShardRouter(
                str(tmp_path / "r.sock"),
                RouterConfig(shard_sockets=[long_path]),
            )


class TestAdmissionExpiryVsShed:
    """The documented race between deadline expiry and load shedding:
    expiry is settled at *dequeue* time, so an expired-but-undequeued
    request still occupies its admission slot and new arrivals shed."""

    def test_expired_residents_still_hold_their_slots(self):
        from repro.service import AdmissionQueue, MicroBatcher, PendingRequest
        from repro.utils.errors import ServiceOverloadError, TaskTimeoutError

        async def scenario():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(depth=2, timeout_s=0.01)
            r1 = PendingRequest("histogram", None, (), loop.create_future())
            r2 = PendingRequest("histogram", None, (), loop.create_future())
            queue.admit(r1)
            queue.admit(r2)
            await asyncio.sleep(0.05)  # both expire *while queued*
            assert r1.expired() and r2.expired()
            # Shedding is depth-based, not expiry-aware: the expired
            # residents are not silently evicted to make room.
            shed = PendingRequest("histogram", None, (), loop.create_future())
            with pytest.raises(ServiceOverloadError):
                queue.admit(shed)
            assert queue.stats.shed == 1
            assert len(queue) == 2

            # The consumer settles the race: both residents fail with
            # the timeout (never dispatched), freeing their slots.
            dispatched = []

            async def execute(key, reqs):
                dispatched.append(reqs)

            batcher = MicroBatcher(queue, execute)
            batcher._absorb(await queue.get())
            batcher._absorb(await queue.get())
            assert batcher.stats.expired == 2
            assert not dispatched
            with pytest.raises(TaskTimeoutError):
                r1.future.result()
            with pytest.raises(TaskTimeoutError):
                r2.future.result()
            # Admission resumes immediately on the freed slots.
            fresh = PendingRequest("histogram", None, (), loop.create_future())
            queue.admit(fresh)
            assert queue.stats.admitted == 3

        asyncio.run(scenario())

    def test_expiry_does_not_count_as_shed(self):
        from repro.service import AdmissionQueue, MicroBatcher, PendingRequest

        async def scenario():
            loop = asyncio.get_running_loop()
            queue = AdmissionQueue(depth=4, timeout_s=0.01)
            req = PendingRequest("histogram", None, (), loop.create_future())
            queue.admit(req)
            await asyncio.sleep(0.05)

            async def execute(key, reqs):
                pass

            batcher = MicroBatcher(queue, execute)
            batcher._absorb(await queue.get())
            # The two overload paths stay distinct in the stats.
            assert queue.stats.shed == 0
            assert queue.stats.expired == 0  # queue never saw the expiry
            assert batcher.stats.expired == 1

        asyncio.run(scenario())


class TestCacheByteBounds:
    """A single result larger than ``max_bytes`` must be refused
    outright -- not admitted at the cost of evicting every resident."""

    def test_oversized_entry_is_uncacheable_not_an_eviction_storm(self):
        from repro.service import ResultCache

        cache = ResultCache(max_entries=8, max_bytes=64)
        small = np.zeros(8, dtype=np.uint8)  # 8 bytes each
        assert cache.put("a", small)
        assert cache.put("b", small)
        big = np.zeros(128, dtype=np.uint8)  # 128 > 64
        assert not cache.put("big", big)
        assert "big" not in cache
        assert cache.stats.uncacheable == 1
        assert cache.stats.evictions == 0  # residents untouched
        assert len(cache) == 2
        assert cache.get("a") is not None
        assert cache.get("b") is not None
        assert cache.stats.bytes == 16

    def test_exactly_at_limit_is_admitted_and_evicts_lru(self):
        from repro.service import ResultCache

        cache = ResultCache(max_entries=8, max_bytes=64)
        small = np.zeros(8, dtype=np.uint8)
        cache.put("a", small)
        cache.put("b", small)
        exact = np.zeros(64, dtype=np.uint8)  # == max_bytes: cacheable
        assert cache.put("exact", exact)
        assert "exact" in cache
        # Fitting it required evicting both LRU residents.
        assert cache.stats.evictions == 2
        assert len(cache) == 1
        assert cache.stats.bytes == 64

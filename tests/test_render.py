"""Tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.baselines import sequential_components
from repro.images import filled_disc, four_corner_squares
from repro.utils.errors import ValidationError
from repro.utils.render import ascii_image, ascii_labels


class TestAsciiImage:
    def test_all_zero(self):
        out = ascii_image(np.zeros((8, 8), dtype=np.int32))
        assert set(out) <= {" ", "\n"}

    def test_bright_pixels_brighter(self):
        img = np.zeros((4, 4), dtype=np.int32)
        img[0, 0] = 255
        out = ascii_image(img, width=4).splitlines()
        assert out[0][0] == "@"

    def test_width_respected(self):
        img = np.arange(64 * 64, dtype=np.int32).reshape(64, 64)
        out = ascii_image(img, width=16)
        assert max(len(line) for line in out.splitlines()) <= 16

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_image(np.zeros(4, dtype=np.int32))
        with pytest.raises(ValidationError):
            ascii_image(np.zeros((4, 4), dtype=np.int32), width=0)


class TestAsciiLabels:
    def test_background_dots(self):
        out = ascii_labels(np.zeros((4, 4), dtype=np.int64), width=4)
        assert set(out) <= {".", "\n"}

    def test_distinct_components_distinct_chars(self):
        lab = sequential_components(four_corner_squares(32))
        out = ascii_labels(lab, width=32)
        chars = set(out) - {".", "\n"}
        assert len(chars) == 4

    def test_single_component_single_char(self):
        lab = sequential_components(filled_disc(32))
        out = ascii_labels(lab, width=32)
        chars = set(out) - {".", "\n"}
        assert len(chars) == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            ascii_labels(np.zeros((4,), dtype=np.int64))

"""Tests for parallel histogram equalization (the Section-4 application)."""

import numpy as np
import pytest

from repro.baselines import sequential_histogram
from repro.core.equalization import equalization_lut, parallel_equalize
from repro.images import darpa_like, grey_quadrants, random_greyscale
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError


class TestLut:
    def test_identity_on_uniform(self):
        """A perfectly flat histogram maps ~linearly (idempotent-ish)."""
        hist = np.full(16, 100, dtype=np.int64)
        lut = equalization_lut(hist, preserve_background=False)
        assert lut[0] == 0
        assert lut[-1] == 15
        assert (np.diff(lut) >= 0).all()

    def test_monotone(self):
        rng = np.random.default_rng(0)
        hist = rng.integers(0, 1000, 64)
        lut = equalization_lut(hist)
        assert (np.diff(lut) >= 0).all() or lut[0] == 0  # background clamp

    def test_full_range_used(self):
        hist = np.zeros(16, dtype=np.int64)
        hist[3] = 50
        hist[4] = 50
        lut = equalization_lut(hist, preserve_background=False)
        assert lut[4] == 15  # highest occupied level maps to top

    def test_empty_histogram(self):
        lut = equalization_lut(np.zeros(8, dtype=np.int64))
        assert np.array_equal(lut, np.arange(8))

    def test_background_preserved(self):
        hist = np.array([100, 1, 1, 1], dtype=np.int64)
        lut = equalization_lut(hist, preserve_background=True)
        assert lut[0] == 0


class TestParallelEqualize:
    @pytest.mark.parametrize("p", [1, 4, 16, 64])
    def test_matches_sequential_pipeline(self, p):
        img = darpa_like(64, 32, seed=5)
        res = parallel_equalize(img, 32, p, IDEAL)
        lut = equalization_lut(sequential_histogram(img, 32))
        assert np.array_equal(res.image, lut[img].astype(img.dtype))
        assert np.array_equal(res.lut, lut)

    def test_p_exceeds_k(self):
        img = random_greyscale(64, 8, seed=1)
        res = parallel_equalize(img, 8, 64, IDEAL)
        lut = equalization_lut(sequential_histogram(img, 8))
        assert np.array_equal(res.image, lut[img].astype(img.dtype))

    def test_improves_contrast_of_clumped_image(self):
        """The paper's stated purpose: spread out clumped levels."""
        rng = np.random.default_rng(2)
        img = (rng.integers(100, 116, (64, 64))).astype(np.int32)  # clumped
        res = parallel_equalize(img, 256, 16, IDEAL)
        spread_before = int(img.max() - img.min())
        spread_after = int(res.image.max() - res.image.min())
        assert spread_after > spread_before * 3

    def test_phase_structure_includes_broadcast(self):
        img = random_greyscale(32, 16, seed=3)
        res = parallel_equalize(img, 16, 4, CM5)
        names = [ph.name for ph in res.report.phases]
        assert "eq:broadcast:spread" in names
        assert "eq:broadcast:collect" in names
        assert names[-1] == "eq:apply"

    def test_histogram_returned(self):
        img = random_greyscale(32, 16, seed=4)
        res = parallel_equalize(img, 16, 4, IDEAL)
        assert np.array_equal(res.histogram, sequential_histogram(img, 16))

    def test_background_zero_stays_zero(self):
        img = grey_quadrants(32, 16)
        res = parallel_equalize(img, 16, 4, IDEAL)
        assert (res.image[img == 0] == 0).all()

    def test_level_validation(self):
        img = np.full((8, 8), 20, dtype=np.int32)
        with pytest.raises(ValidationError):
            parallel_equalize(img, 16, 4, IDEAL)

    def test_comm_independent_of_n(self):
        k, p = 64, 16
        comms = []
        for n in (64, 128):
            img = random_greyscale(n, k, seed=n)
            comms.append(parallel_equalize(img, k, p, CM5).report.comm_s)
        assert comms[0] == pytest.approx(comms[1])

"""Tests for repro.utils: validation helpers and the error hierarchy."""

import numpy as np
import pytest

from repro.utils import (
    ConfigurationError,
    HazardError,
    ReproError,
    ValidationError,
    check_image,
    check_positive,
    check_power_of_two,
    ilog2,
    is_power_of_two,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for x in (0, -1, -4, 3, 6, 12, 1023):
            assert not is_power_of_two(x)

    def test_rejects_non_integers(self):
        assert not is_power_of_two(2.0)
        assert not is_power_of_two("4")

    def test_accepts_numpy_integers(self):
        assert is_power_of_two(np.int64(64))

    def test_ilog2_values(self):
        for exp in range(16):
            assert ilog2(1 << exp) == exp

    def test_ilog2_rejects(self):
        with pytest.raises(ValidationError):
            ilog2(6)

    def test_check_power_of_two_returns_int(self):
        out = check_power_of_two("p", np.int64(8))
        assert out == 8 and isinstance(out, int)

    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValidationError):
            check_positive("x", 0)
        with pytest.raises(ValidationError):
            check_positive("x", -2)


class TestCheckImage:
    def test_accepts_square_int(self):
        img = np.zeros((4, 4), dtype=np.int32)
        assert check_image(img) is img

    def test_rejects_non_array(self):
        with pytest.raises(ValidationError):
            check_image([[1, 2], [3, 4]])

    def test_rejects_float_dtype(self):
        with pytest.raises(ValidationError):
            check_image(np.zeros((4, 4)))

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_image(np.zeros((4, 4, 3), dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_image(np.zeros((0, 0), dtype=np.int32))

    def test_rejects_negative_levels(self):
        img = np.array([[0, -1], [0, 0]], dtype=np.int32)
        with pytest.raises(ValidationError):
            check_image(img)

    def test_square_flag(self):
        rect = np.zeros((2, 4), dtype=np.int32)
        with pytest.raises(ValidationError):
            check_image(rect, square=True)
        assert check_image(rect, square=False) is rect


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, ValidationError, HazardError):
            assert issubclass(exc, ReproError)

    def test_value_error_compat(self):
        # Config/validation errors double as ValueError for idiomatic catching.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ValidationError, ValueError)

    def test_hazard_is_runtime_error(self):
        assert issubclass(HazardError, RuntimeError)

"""Tests for the deadline-aware dispatcher (repro.runtime.dispatch)."""

import multiprocessing as mp
import os
import time

import pytest

from repro.obs import FAULT_RESPAWN, FAULT_RETRY, FAULT_TIMEOUT, WallRecorder
from repro.runtime.dispatch import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    ENV_RETRIES,
    ENV_TIMEOUT,
    PoolSupervisor,
    resolve_retries,
    resolve_timeout,
    run_tasks,
)
from repro.utils.errors import (
    RecoveryExhaustedError,
    TaskTimeoutError,
    TransientTaskError,
    ValidationError,
)


def _ctx():
    return mp.get_context("fork")


# Task functions must be module-level (pickled by name into workers).
# Each receives ``(payload, attempt)`` per the dispatch contract.

def _double(arg):
    (x, attempt) = arg
    return 2 * x


def _flaky_first_attempt(arg):
    (x, attempt) = arg
    if attempt == 0:
        raise TransientTaskError(f"transient on task {x}", site="test")
    return 2 * x


def _always_transient(arg):
    raise TransientTaskError("never succeeds", site="test")


def _real_bug(arg):
    raise ValueError("a genuine defect")


def _crash_first_attempt(arg):
    (x, attempt) = arg
    if x == 1 and attempt == 0:
        os._exit(70)
    return 2 * x


def _hang_first_attempt(arg):
    (x, attempt) = arg
    if x == 0 and attempt == 0:
        time.sleep(3600)
    return 2 * x


class TestResolveKnobs:
    def test_timeout_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "7.0")
        assert resolve_timeout(1.5) == 1.5

    def test_timeout_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "7.5")
        assert resolve_timeout() == 7.5

    def test_timeout_default(self, monkeypatch):
        monkeypatch.delenv(ENV_TIMEOUT, raising=False)
        assert resolve_timeout() == DEFAULT_TIMEOUT_S

    def test_timeout_garbage_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "soon")
        with pytest.raises(ValidationError):
            resolve_timeout()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValidationError):
            resolve_timeout(0)

    def test_retries_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_RETRIES, "5")
        assert resolve_retries() == 5

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv(ENV_RETRIES, raising=False)
        assert resolve_retries() == DEFAULT_RETRIES

    def test_retries_garbage_env(self, monkeypatch):
        monkeypatch.setenv(ENV_RETRIES, "many")
        with pytest.raises(ValidationError):
            resolve_retries()

    def test_retries_non_negative(self):
        with pytest.raises(ValidationError):
            resolve_retries(-1)

    # -- environment-variable edge cases ----------------------------------
    # An unset knob and a set-but-empty knob must behave identically
    # (shells export empty strings more easily than they unset), while
    # anything non-empty must either parse or fail loudly -- a typo'd
    # deadline silently becoming the default would mask a config error.

    @pytest.mark.parametrize("raw", ["", "   ", "\t"])
    def test_timeout_empty_env_is_default(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_TIMEOUT, raw)
        assert resolve_timeout() == DEFAULT_TIMEOUT_S

    @pytest.mark.parametrize("raw", ["", "   ", "\t"])
    def test_retries_empty_env_is_default(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_RETRIES, raw)
        assert resolve_retries() == DEFAULT_RETRIES

    @pytest.mark.parametrize("raw", ["soon", "1.5s", "1,5", "0x10", "nan km"])
    def test_timeout_non_numeric_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_TIMEOUT, raw)
        with pytest.raises(ValidationError, match=ENV_TIMEOUT):
            resolve_timeout()

    @pytest.mark.parametrize("raw", ["many", "2.5", "1e2", "two"])
    def test_retries_non_integer_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_RETRIES, raw)
        with pytest.raises(ValidationError, match=ENV_RETRIES):
            resolve_retries()

    @pytest.mark.parametrize("raw", ["-1", "-0.5", "0"])
    def test_timeout_non_positive_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_TIMEOUT, raw)
        with pytest.raises(ValidationError, match="positive"):
            resolve_timeout()

    def test_retries_negative_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_RETRIES, "-3")
        with pytest.raises(ValidationError, match="non-negative"):
            resolve_retries()

    def test_retries_zero_env_is_valid(self, monkeypatch):
        # Zero retries is a legitimate budget (fail fast), not an error.
        monkeypatch.setenv(ENV_RETRIES, "0")
        assert resolve_retries() == 0

    def test_argument_bypasses_garbage_env(self, monkeypatch):
        # An explicit argument must win without even parsing the env.
        monkeypatch.setenv(ENV_TIMEOUT, "soon")
        monkeypatch.setenv(ENV_RETRIES, "many")
        assert resolve_timeout(2.0) == 2.0
        assert resolve_retries(1) == 1


class TestRunTasks:
    def test_results_in_payload_order(self):
        with PoolSupervisor(_ctx(), 2) as sup:
            out = run_tasks(sup, _double, [3, 1, 4, 1, 5], site="test", timeout=30)
        assert out == [6, 2, 8, 2, 10]

    def test_transient_error_is_retried(self):
        rec = WallRecorder()
        with PoolSupervisor(_ctx(), 2, recorder=rec) as sup:
            out = run_tasks(
                sup, _flaky_first_attempt, [0, 1], site="test",
                timeout=30, backoff_s=0.01, recorder=rec,
            )
        assert out == [0, 2]
        retries = [i for i in rec.fault_events() if i.name == FAULT_RETRY]
        assert len(retries) == 2
        assert sup.respawns == 0  # a clean exception does not nuke the pool

    def test_transient_budget_exhausted(self):
        rec = WallRecorder()
        with PoolSupervisor(_ctx(), 2, recorder=rec) as sup:
            with pytest.raises(RecoveryExhaustedError) as err:
                run_tasks(
                    sup, _always_transient, [0], site="test",
                    timeout=30, max_retries=1, backoff_s=0.01, recorder=rec,
                )
        assert err.value.site == "test"
        names = [i.name for i in rec.fault_events()]
        assert names.count(FAULT_RETRY) == 1
        assert "fault:giveup" in names

    def test_real_bug_propagates_unwrapped(self):
        with PoolSupervisor(_ctx(), 2) as sup:
            with pytest.raises(ValueError, match="genuine defect"):
                run_tasks(sup, _real_bug, [0], site="test", timeout=30)

    def test_crashed_worker_detected_and_retried(self):
        rec = WallRecorder()
        with PoolSupervisor(_ctx(), 2, recorder=rec) as sup:
            out = run_tasks(
                sup, _crash_first_attempt, [0, 1], site="test",
                timeout=1.0, backoff_s=0.01, recorder=rec,
            )
        assert out == [0, 2]
        assert sup.respawns == 1
        names = [i.name for i in rec.fault_events()]
        assert FAULT_TIMEOUT in names
        assert FAULT_RESPAWN in names
        assert FAULT_RETRY in names

    def test_hung_task_cut_off_at_deadline(self):
        rec = WallRecorder()
        t0 = time.monotonic()
        with PoolSupervisor(_ctx(), 2, recorder=rec) as sup:
            out = run_tasks(
                sup, _hang_first_attempt, [0, 1], site="test",
                timeout=0.8, backoff_s=0.01, recorder=rec,
            )
        assert out == [0, 2]
        assert time.monotonic() - t0 < 30  # nowhere near the 3600s sleep
        assert sup.respawns == 1

    def test_deadline_exhaustion_raises_timeout_error(self):
        with PoolSupervisor(_ctx(), 1) as sup:
            with pytest.raises(TaskTimeoutError) as err:
                run_tasks(
                    sup, _hang_first_attempt, [(0)], site="test",
                    timeout=0.4, max_retries=0, backoff_s=0.01,
                )
        assert err.value.site == "test"

    def test_empty_payloads(self):
        with PoolSupervisor(_ctx(), 1) as sup:
            assert run_tasks(sup, _double, [], site="test", timeout=5) == []


class TestPoolSupervisor:
    def test_pool_is_lazy(self):
        sup = PoolSupervisor(_ctx(), 1)
        assert sup._pool is None
        sup.pool  # touch -> builds
        assert sup._pool is not None
        sup.close()
        assert sup._pool is None

    def test_respawn_replaces_pool(self):
        with PoolSupervisor(_ctx(), 1) as sup:
            first = sup.pool
            sup.respawn(reason="test")
            assert sup.pool is not first
            assert sup.respawns == 1

    def test_initializer_reruns_after_respawn(self):
        # _flaky_first_attempt needs no initializer state; instead prove
        # the respawned pool still runs tasks end to end.
        with PoolSupervisor(_ctx(), 2) as sup:
            sup.respawn(reason="test")
            out = run_tasks(sup, _double, [1, 2], site="test", timeout=30)
        assert out == [2, 4]

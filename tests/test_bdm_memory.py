"""Tests for GlobalArray: access semantics, charging, hazard detection."""

import numpy as np
import pytest

from repro.bdm import GlobalArray, Machine, distribute_sequence
from repro.machines import CM5, IDEAL
from repro.utils.errors import HazardError, ValidationError


@pytest.fixture
def machine():
    return Machine(4, IDEAL)


class TestStructure:
    def test_uniform_lengths(self, machine):
        arr = GlobalArray(machine, 10)
        assert arr.p == 4
        assert all(arr.block_length(i) == 10 for i in range(4))
        assert arr.total_length() == 40

    def test_per_proc_lengths(self, machine):
        arr = GlobalArray(machine, [1, 0, 3, 2])
        assert [arr.block_length(i) for i in range(4)] == [1, 0, 3, 2]

    def test_length_count_mismatch(self, machine):
        with pytest.raises(ValidationError):
            GlobalArray(machine, [1, 2])

    def test_negative_length(self, machine):
        with pytest.raises(ValidationError):
            GlobalArray(machine, [1, -1, 2, 3])

    def test_initial_zeros(self, machine):
        arr = GlobalArray(machine, 5)
        assert not arr.local(2).any()


class TestReadWrite:
    def test_roundtrip_local(self, machine):
        arr = GlobalArray(machine, 4)
        proc = machine.procs[1]
        arr.write(proc, 1, [5, 6, 7, 8])
        assert np.array_equal(arr.read(proc, 1), [5, 6, 7, 8])

    def test_read_returns_copy(self, machine):
        arr = GlobalArray(machine, 4)
        proc = machine.procs[0]
        arr.write(proc, 0, [1, 2, 3, 4])
        got = arr.read(proc, 0)
        got[:] = 0
        assert np.array_equal(arr.read(proc, 0), [1, 2, 3, 4])

    def test_partial_write_offset(self, machine):
        arr = GlobalArray(machine, 6)
        proc = machine.procs[0]
        arr.write(proc, 0, [9, 9], start=2)
        assert np.array_equal(arr.local(0), [0, 0, 9, 9, 0, 0])

    def test_out_of_bounds(self, machine):
        arr = GlobalArray(machine, 4)
        proc = machine.procs[0]
        with pytest.raises(ValidationError):
            arr.read(proc, 0, 2, 6)
        with pytest.raises(ValidationError):
            arr.write(proc, 0, [1, 2, 3], start=2)
        with pytest.raises(ValidationError):
            arr.read(proc, 7)

    def test_local_view_is_readonly(self, machine):
        arr = GlobalArray(machine, 4)
        view = arr.local(0)
        with pytest.raises(ValueError):
            view[0] = 1

    def test_read_indices(self, machine):
        arr = GlobalArray(machine, 6)
        proc = machine.procs[0]
        arr.write(proc, 2, np.arange(6))
        got = arr.read_indices(proc, 2, np.array([0, 2, 5]))
        assert np.array_equal(got, [0, 2, 5])

    def test_write_indices(self, machine):
        arr = GlobalArray(machine, 6)
        proc = machine.procs[0]
        arr.write_indices(proc, 0, np.array([1, 3]), [7, 8])
        assert np.array_equal(arr.local(0), [0, 7, 0, 8, 0, 0])

    def test_write_indices_shape_mismatch(self, machine):
        arr = GlobalArray(machine, 6)
        with pytest.raises(ValidationError):
            arr.write_indices(machine.procs[0], 0, np.array([1, 3]), [7])


class TestCharging:
    def test_local_access_free(self):
        machine = Machine(4, CM5)
        arr = GlobalArray(machine, 8)
        proc = machine.procs[0]
        with machine.phase("x"):
            arr.write(proc, 0, np.arange(8))
            arr.read(proc, 0)
        assert proc.cost.comm_s == 0.0
        assert proc.cost.words_moved == 0

    def test_remote_read_charges_reader_and_server(self):
        machine = Machine(4, CM5)
        arr = GlobalArray(machine, 8)
        reader = machine.procs[1]
        with machine.phase("x"):
            arr.read(reader, 0)
        assert reader.cost.comm_s == pytest.approx(CM5.latency_s + 8 * CM5.word_time_s())
        assert reader.cost.words_moved == 8
        # Owner's send port was occupied (no latency on its side).
        owner = machine.procs[0]
        assert owner.cost.serve_s == pytest.approx(8 * CM5.word_time_s())
        assert owner.cost.words_served == 8

    def test_batched_reads_single_latency(self):
        machine = Machine(4, CM5)
        arr = GlobalArray(machine, 8)
        proc = machine.procs[0]
        with machine.phase("x"):
            with proc.prefetch_batch():
                arr.read(proc, 1)
                arr.read(proc, 2)
                arr.read(proc, 3)
        expected = CM5.latency_s + 24 * CM5.word_time_s()
        assert proc.cost.comm_s == pytest.approx(expected)
        assert proc.cost.messages == 1

    def test_unbatched_reads_pay_latency_each(self):
        machine = Machine(4, CM5)
        arr = GlobalArray(machine, 8)
        proc = machine.procs[0]
        with machine.phase("x"):
            arr.read(proc, 1)
            arr.read(proc, 2)
        assert proc.cost.messages == 2

    def test_read_indices_charges_word_count(self):
        machine = Machine(4, CM5)
        arr = GlobalArray(machine, 100)
        proc = machine.procs[1]
        with machine.phase("x"):
            arr.read_indices(proc, 0, np.array([0, 50, 99]))
        assert proc.cost.words_moved == 3


class TestHazards:
    def test_same_phase_remote_read_after_write(self):
        machine = Machine(2, IDEAL, check_hazards=True)
        arr = GlobalArray(machine, 4)
        with pytest.raises(HazardError):
            with machine.phase("bad"):
                arr.write(machine.procs[0], 0, [1, 2, 3, 4])
                arr.read(machine.procs[1], 0)

    def test_disjoint_ranges_allowed(self, machine):
        arr = GlobalArray(machine, 8)
        with machine.phase("ok"):
            arr.write(machine.procs[0], 0, [1, 2], start=0)
            got = arr.read(machine.procs[1], 0, 4, 8)
        assert np.array_equal(got, [0, 0, 0, 0])

    def test_barrier_clears_hazard(self, machine):
        arr = GlobalArray(machine, 4)
        with machine.phase("write"):
            arr.write(machine.procs[0], 0, [1, 2, 3, 4])
        with machine.phase("read"):
            got = arr.read(machine.procs[1], 0)
        assert np.array_equal(got, [1, 2, 3, 4])

    def test_checker_can_be_disabled(self):
        machine = Machine(2, IDEAL, check_hazards=False)
        arr = GlobalArray(machine, 4)
        with machine.phase("racy"):
            arr.write(machine.procs[0], 0, [1, 2, 3, 4])
            got = arr.read(machine.procs[1], 0)
        assert np.array_equal(got, [1, 2, 3, 4])

    def test_own_writes_visible_same_phase(self, machine):
        arr = GlobalArray(machine, 4)
        with machine.phase("local"):
            arr.write(machine.procs[0], 0, [1, 2, 3, 4])
            got = arr.read(machine.procs[0], 0)
        assert np.array_equal(got, [1, 2, 3, 4])

    def test_remote_write_then_write_conflict(self, machine):
        arr = GlobalArray(machine, 4)
        with pytest.raises(HazardError):
            with machine.phase("bad"):
                arr.write(machine.procs[0], 0, [1, 2, 3, 4])
                arr.write(machine.procs[1], 0, [5, 6], start=1)


class TestBulkHelpers:
    def test_scatter_gather_roundtrip(self, machine):
        arr = GlobalArray(machine, 3)
        mat = np.arange(12).reshape(4, 3)
        arr.scatter_rows(mat)
        assert np.array_equal(arr.gather_rows(), mat)

    def test_scatter_shape_check(self, machine):
        arr = GlobalArray(machine, 3)
        with pytest.raises(ValidationError):
            arr.scatter_rows(np.zeros((3, 3)))
        with pytest.raises(ValidationError):
            arr.scatter_rows(np.zeros((4, 2)))

    def test_gather_requires_equal_lengths(self, machine):
        arr = GlobalArray(machine, [1, 2, 3, 4])
        with pytest.raises(ValidationError):
            arr.gather_rows()

    def test_distribute_sequence(self, machine):
        arr = distribute_sequence(machine, [[1], [2, 3], [], [4, 5, 6]])
        assert [arr.block_length(i) for i in range(4)] == [1, 2, 0, 3]
        assert np.array_equal(arr.local(3), [4, 5, 6])

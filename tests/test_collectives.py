"""Tests for the additional BDM collectives."""

import numpy as np
import pytest

from repro.bdm import (
    GlobalArray,
    Machine,
    allgather,
    allreduce,
    prefix_sum,
    reduce_cost_model,
    reduce_to,
)
from repro.machines import CM5, IDEAL
from repro.utils.errors import ValidationError


def machine_with(p, mat, params=IDEAL):
    m = Machine(p, params)
    A = GlobalArray(m, mat.shape[1])
    A.scatter_rows(mat)
    return m, A


class TestReduce:
    @pytest.mark.parametrize("op,npop", [("sum", np.sum), ("min", np.min), ("max", np.max)])
    def test_ops(self, op, npop, rng):
        mat = rng.integers(0, 100, (4, 8))
        m, A = machine_with(4, mat)
        out = reduce_to(m, A, op=op)
        assert np.array_equal(out, npop(mat, axis=0))

    def test_nonzero_root(self, rng):
        mat = rng.integers(0, 50, (8, 16))
        m, A = machine_with(8, mat)
        out = reduce_to(m, A, root=5)
        assert np.array_equal(out, mat.sum(axis=0))

    def test_unknown_op(self, rng):
        m, A = machine_with(4, rng.integers(0, 5, (4, 8)))
        with pytest.raises(ValidationError):
            reduce_to(m, A, op="mean")

    def test_divisibility(self):
        m = Machine(4, IDEAL)
        A = GlobalArray(m, 6)
        with pytest.raises(ValidationError):
            reduce_to(m, A)

    def test_cost_within_model(self):
        p, q = 8, 64
        m = Machine(p, CM5)
        A = GlobalArray(m, q)
        reduce_to(m, A)
        model = reduce_cost_model(CM5, q, p)
        rep = m.report()
        assert rep.comm_s == pytest.approx(model["comm_s"], rel=0.05)

    def test_cost_model_divisibility(self):
        with pytest.raises(ValidationError):
            reduce_cost_model(CM5, 6, 4)


class TestAllreduce:
    def test_every_processor_gets_result(self, rng):
        mat = rng.integers(0, 100, (4, 12))
        m, A = machine_with(4, mat)
        out = allreduce(m, A)
        for pid in range(4):
            assert np.array_equal(out.local(pid), mat.sum(axis=0))

    def test_max(self, rng):
        mat = rng.integers(0, 100, (8, 8))
        m, A = machine_with(8, mat)
        out = allreduce(m, A, op="max")
        assert np.array_equal(out.local(3), mat.max(axis=0))


class TestAllgather:
    def test_concatenation_everywhere(self, rng):
        mat = rng.integers(0, 9, (4, 3))
        m, A = machine_with(4, mat)
        out = allgather(m, A)
        for pid in range(4):
            assert np.array_equal(out.local(pid), mat.ravel())

    def test_unequal_blocks(self):
        m = Machine(4, IDEAL)
        from repro.bdm import distribute_sequence

        A = distribute_sequence(m, [[1, 2], [], [3], [4, 5, 6]])
        out = allgather(m, A)
        for pid in range(4):
            assert np.array_equal(out.local(pid), [1, 2, 3, 4, 5, 6])


class TestPrefixSum:
    @pytest.mark.parametrize("p", [1, 2, 8, 16])
    def test_exclusive_scan(self, p, rng):
        values = rng.integers(0, 100, p)
        m = Machine(p, CM5)
        out = prefix_sum(m, values)
        expected = np.concatenate([[0], np.cumsum(values)[:-1]])
        assert np.array_equal(out, expected)

    def test_log_p_rounds(self):
        p = 16
        m = Machine(p, CM5)
        prefix_sum(m, np.ones(p, dtype=np.int64))
        read_phases = [ph for ph in m.report().phases if "round" in ph.name]
        assert len(read_phases) == 4  # log2(16)

    def test_shape_validation(self):
        m = Machine(4, IDEAL)
        with pytest.raises(ValidationError):
            prefix_sum(m, [1, 2, 3])


class TestScatter:
    def test_slices_delivered(self, rng):
        from repro.bdm import scatter_from

        values = rng.integers(0, 100, 16)
        m = Machine(4, IDEAL)
        out = scatter_from(m, values)
        for pid in range(4):
            assert np.array_equal(out.local(pid), values[pid * 4 : (pid + 1) * 4])

    def test_nonzero_root(self, rng):
        from repro.bdm import scatter_from

        values = rng.integers(0, 9, 8)
        m = Machine(4, IDEAL)
        out = scatter_from(m, values, root=2)
        assert np.array_equal(out.local(3), values[6:8])

    def test_divisibility(self):
        from repro.bdm import scatter_from

        m = Machine(4, IDEAL)
        with pytest.raises(ValidationError):
            scatter_from(m, np.arange(6))

    def test_root_serves_all_slices(self):
        from repro.bdm import scatter_from

        m = Machine(4, CM5)
        scatter_from(m, np.arange(16))
        # root serves 3 remote slices of 4 words
        assert m.procs[0].cost.words_served == 12

    def test_inverse_of_gather(self, rng):
        from repro.bdm import scatter_from
        from repro.bdm.transpose import gather_to

        values = rng.integers(0, 50, 32)
        m = Machine(8, IDEAL)
        out = scatter_from(m, values)
        assert np.array_equal(gather_to(m, out, 0), values)

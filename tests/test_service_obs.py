"""End-to-end tests for the service tier's observability plane.

The tentpole contract: one request through the service yields one
*connected* span tree -- request, queue wait, batch, dispatch, worker
task, kernel -- even though those spans are produced by three different
layers and two different processes.  Plus the metrics plane around it:
instrument counts, the Prometheus ``metrics`` control op, the ``trace``
control op, the v2 stats schema, and the ``repro top`` / ``repro trace
--follow`` CLI views over a live socket.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.images import darpa_like
from repro.obs import (
    CLIENT_REQUEST,
    SVC_BATCH,
    SVC_QUEUE_SPAN,
    SVC_REQUEST,
    TraceContext,
    WallRecorder,
    chrome_trace,
    parse_prometheus_text,
    validate_chrome_trace,
)
from repro.service import (
    BatchService,
    ServiceConfig,
    ServiceInstruments,
    ServiceServer,
    encode_array,
    request_over_socket,
)

def spans_of_trace(log, trace_id):
    return [s for s in log.spans if s.args.get("trace") == trace_id]


def assert_connected(spans):
    """Every span except the root parents onto another span in the set."""
    by_id = {s.args["span"]: s for s in spans}
    roots = []
    for s in spans:
        parent = s.args.get("parent")
        if parent is None or parent not in by_id:
            roots.append(s)
    assert len(roots) == 1, (
        f"expected one root, got {[(s.name, s.args.get('parent')) for s in roots]}"
    )
    return roots[0]


class TestServiceSpanTree:
    def test_one_request_yields_one_connected_tree(self):
        recorder = WallRecorder(source="test-svc")
        service = BatchService(ServiceConfig(workers=2), recorder=recorder)

        async def scenario():
            await service.start()
            try:
                image = darpa_like(32, 256, seed=5)
                await service.submit("components", image, connectivity=8)
            finally:
                await service.stop()

        asyncio.run(scenario())
        recorder.drain()
        traces = {s.args["trace"] for s in recorder.log.spans
                  if s.args.get("trace")}
        assert len(traces) == 1
        spans = spans_of_trace(recorder.log, traces.pop())
        names = {s.name for s in spans}
        assert SVC_REQUEST in names
        assert SVC_QUEUE_SPAN in names
        assert SVC_BATCH in names
        assert "dispatch:svc:exec" in names
        assert "svc:components[0]" in names
        assert "kernel:tile_label" in names
        root = assert_connected(spans)
        assert root.name == SVC_REQUEST
        # worker spans crossed the process boundary onto an OS-pid lane
        worker = next(s for s in spans if s.name == "svc:components[0]")
        assert isinstance(worker.lane, int)
        # the export is a valid, nesting-clean Chrome trace
        validate_chrome_trace(chrome_trace(recorder.log))

    def test_coalesced_request_links_to_lead_span(self):
        recorder = WallRecorder(source="test-svc")
        service = BatchService(
            ServiceConfig(workers=2, max_delay_s=0.05), recorder=recorder
        )

        async def scenario():
            await service.start()
            try:
                image = darpa_like(32, 256, seed=6)
                await asyncio.gather(
                    service.submit("histogram", image, k=256),
                    service.submit("histogram", image, k=256),
                )
            finally:
                await service.stop()

        asyncio.run(scenario())
        recorder.drain()
        spans = [s for s in recorder.log.spans if s.args.get("trace")]
        requests = [s for s in spans if s.name == SVC_REQUEST]
        assert len(requests) == 2
        coalesced = [s for s in requests if s.args.get("coalesced_onto")]
        assert len(coalesced) == 1
        lead = next(s for s in requests if s is not coalesced[0])
        assert coalesced[0].args["coalesced_onto"] == lead.args["span"]
        batch = next(s for s in spans if s.name == SVC_BATCH)
        assert lead.args["span"] in batch.args["links"]

    def test_untraced_service_records_nothing(self):
        service = BatchService(ServiceConfig(workers=2))

        async def scenario():
            await service.start()
            try:
                await service.submit(
                    "histogram", darpa_like(16, 256, seed=7), k=256
                )
            finally:
                await service.stop()

        asyncio.run(scenario())
        assert service.recorder is None


class TestSnapshotV2:
    def run_requests(self, config=None):
        service = BatchService(config or ServiceConfig(workers=2))

        async def scenario():
            await service.start()
            try:
                image = darpa_like(24, 256, seed=8)
                await service.submit("histogram", image, k=256)
                await service.submit("histogram", image, k=256)  # cache hit
            finally:
                await service.stop()

        asyncio.run(scenario())
        return service

    def test_schema_hit_rate_and_highwater(self):
        snap = self.run_requests().snapshot()
        assert snap["schema"] == "repro-service-stats/v2"
        assert snap["cache"]["hit_rate"] == pytest.approx(0.5)
        assert snap["admission"]["depth_highwater"] >= 1

    def test_latency_quantiles_present(self):
        snap = self.run_requests().snapshot()
        lat = snap["latency"]["histogram"]
        assert lat["count"] == 2
        assert 0 < lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"]

    def test_metrics_disabled_omits_latency(self):
        snap = self.run_requests(
            ServiceConfig(workers=2, metrics=False)
        ).snapshot()
        assert "latency" not in snap
        assert snap["schema"] == "repro-service-stats/v2"


class TestInstruments:
    def test_request_lifecycle_counts(self):
        from repro.obs import MetricsRegistry
        from repro.service.instruments import M_ERRORS, M_INFLIGHT, M_REQUESTS

        reg = MetricsRegistry()
        ins = ServiceInstruments(reg)
        ins.request_started("histogram")
        assert reg.gauge(M_INFLIGHT).value == 1
        ins.request_finished("histogram", 0.01)
        assert reg.gauge(M_INFLIGHT).value == 0
        ins.request_error("histogram", ValueError("x"))
        assert reg.counter(M_REQUESTS, labels={"op": "histogram"}).value == 1
        fam = reg.family(M_ERRORS)
        assert sum(c.value for c in fam.children.values()) == 1

    def test_unknown_op_clamped_to_other(self):
        from repro.obs import MetricsRegistry
        from repro.service.instruments import M_REQUESTS, op_label

        assert op_label("histogram") == "histogram"
        assert op_label("__proto__") == "other"
        reg = MetricsRegistry()
        ins = ServiceInstruments(reg)
        ins.request_started("nonsense")
        assert reg.counter(M_REQUESTS, labels={"op": "other"}).value == 1

    def test_latency_summary_quantiles(self):
        from repro.obs import MetricsRegistry

        ins = ServiceInstruments(MetricsRegistry())
        for _ in range(20):
            ins.request_finished("histogram", 0.010)
        summary = ins.latency_summary()
        assert summary["histogram"]["count"] == 20
        assert summary["histogram"]["p50_ms"] == pytest.approx(10.0, rel=0.10)


class _LiveServer:
    """A socket server on its own thread, for CLI- and client-side tests."""

    def __init__(self, tmp_path, config=None, recorder=None):
        self.socket_path = str(tmp_path / "svc.sock")
        self.config = config or ServiceConfig(workers=2)
        self.recorder = recorder
        self.service = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.service = BatchService(self.config, recorder=self.recorder)
            server = ServiceServer(self.service, self.socket_path)
            await server.start()
            self._ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not come up"
        return self

    def __exit__(self, *exc):
        self.ask({"op": "shutdown"})
        self._thread.join(timeout=30)

    def ask(self, obj, **kw):
        return asyncio.run(
            request_over_socket(self.socket_path, obj, **kw)
        )


class TestSocketObservability:
    def test_metrics_op_exposes_latency_histogram(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            img = encode_array(darpa_like(24, 256, seed=9))
            reply = live.ask(
                {"op": "histogram", "image": img, "params": {"k": 256}}
            )
            assert reply["ok"]
            text = live.ask({"op": "metrics"})["result"]
            families = parse_prometheus_text(text)
            lat = families["repro_request_latency_seconds"]
            assert lat["type"] == "histogram"
            counts = [
                s for s in lat["samples"]
                if s["name"].endswith("_count")
                and s["labels"].get("op") == "histogram"
            ]
            assert counts and counts[0]["value"] >= 1

    def test_metrics_disabled_is_a_typed_error(self, tmp_path):
        config = ServiceConfig(workers=2, metrics=False)
        with _LiveServer(tmp_path, config=config) as live:
            reply = live.ask({"op": "metrics"})
            assert not reply["ok"]
            assert reply["error"]["type"] == "ValidationError"

    def test_trace_id_echoed_and_client_context_honored(self, tmp_path):
        recorder = WallRecorder(source="test-serve")
        with _LiveServer(tmp_path, recorder=recorder) as live:
            ctx = TraceContext.mint()
            reply = live.ask(
                {"op": "components", "image": {"pattern": 3, "size": 24},
                 "trace": ctx.to_wire()},
            )
            assert reply["ok"]
            assert reply["trace_id"] == ctx.trace_id
            exported = live.ask({"op": "trace"})["result"]
            validate_chrome_trace(exported)
            mine = [
                e for e in exported["traceEvents"]
                if e.get("ph") == "X"
                and e.get("args", {}).get("trace") == ctx.trace_id
            ]
            names = {e["name"] for e in mine}
            assert CLIENT_REQUEST in names and SVC_REQUEST in names

    def test_minted_trace_id_when_client_sends_none(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            reply = live.ask(
                {"op": "components", "image": {"pattern": 1, "size": 16}}
            )
            assert reply["ok"]
            assert len(reply["trace_id"]) == 32

    def test_trace_inside_params_rejected(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            reply = live.ask(
                {"op": "components", "image": {"pattern": 1, "size": 16},
                 "params": {"trace": {"trace_id": "x"}}},
            )
            assert not reply["ok"]
            assert reply["error"]["type"] == "ValidationError"
            assert "top-level" in reply["error"]["message"]

    def test_trace_op_without_recorder_is_a_typed_error(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            reply = live.ask({"op": "trace"})
            assert not reply["ok"]
            assert reply["error"]["type"] == "ValidationError"


class TestCliViews:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_top_renders_one_frame(self, tmp_path, capsys):
        with _LiveServer(tmp_path) as live:
            img = encode_array(darpa_like(24, 256, seed=10))
            req = {"op": "histogram", "image": img, "params": {"k": 256}}
            live.ask(req)
            live.ask(req)
            out = self.run_cli(
                capsys, "top", "--socket", live.socket_path,
                "--count", "1", "--no-clear",
            )
        assert "requests 2" in out
        assert "hit-rate 50.0%" in out
        assert "p99" in out and "histogram" in out

    def test_follow_prints_the_span_tree(self, tmp_path, capsys):
        recorder = WallRecorder(source="test-serve")
        with _LiveServer(tmp_path, recorder=recorder) as live:
            reply = live.ask(
                {"op": "components", "image": {"pattern": 2, "size": 24}}
            )
            out = self.run_cli(
                capsys, "trace", "--follow", reply["trace_id"][:8],
                "--socket", live.socket_path,
            )
        assert f"trace {reply['trace_id']}" in out
        for name in (CLIENT_REQUEST, SVC_REQUEST, "kernel:tile_label"):
            assert name in out

    def test_follow_unknown_id_errors_with_known_ids(self, tmp_path, capsys):
        from repro.cli import main

        recorder = WallRecorder(source="test-serve")
        with _LiveServer(tmp_path, recorder=recorder) as live:
            live.ask({"op": "components", "image": {"pattern": 1, "size": 16}})
            code = main(
                ["trace", "--follow", "feedfeed",
                 "--socket", live.socket_path]
            )
        err = capsys.readouterr().err
        assert code != 0
        assert "known trace(s)" in err


class TestWireTraceStamping:
    def test_compute_requests_are_stamped(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            ctx = TraceContext.mint()
            reply = live.ask(
                {"op": "components", "image": {"pattern": 1, "size": 16}},
                trace=ctx,
            )
            assert reply["trace_id"] == ctx.trace_id

    def test_control_ops_are_not_stamped(self, tmp_path):
        with _LiveServer(tmp_path) as live:
            reply = live.ask({"op": "ping"}, trace=TraceContext.mint())
            assert reply["ok"] and "trace_id" not in reply


def test_numpy_results_survive_tracing(tmp_path):
    """Tracing must not perturb results: traced == untraced output."""
    image = darpa_like(32, 256, seed=11)

    def run(recorder):
        service = BatchService(ServiceConfig(workers=2), recorder=recorder)

        async def scenario():
            await service.start()
            try:
                return await service.submit("components", image, grey=True)
            finally:
                await service.stop()

        return asyncio.run(scenario())

    untraced = run(None)
    traced = run(WallRecorder(source="check"))
    assert np.array_equal(untraced, traced)

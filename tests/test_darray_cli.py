"""CLI tests for --engine darray / --transport on components and histogram."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.images import binary_test_image
from repro.images.io import write_pgm


def run_cli(capsys, *argv) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


@pytest.fixture(scope="module")
def pgm_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "img.pgm"
    write_pgm(path, binary_test_image(4, 64))
    return str(path)


class TestComponentsDarray:
    @pytest.mark.parametrize("transport", ["local", "shmem", "mmap"])
    def test_transport_matrix(self, capsys, pgm_path, transport):
        out = run_cli(
            capsys, "components", pgm_path, "-p", "4",
            "--engine", "darray", "--transport", transport,
        )
        assert f"darray/{transport}: 64x64" in out
        assert "components (8-connectivity, binary)" in out
        assert "darray stats:" in out

    def test_matches_sim_engine_count(self, capsys, pgm_path):
        sim = run_cli(capsys, "components", pgm_path, "-p", "4")
        dar = run_cli(
            capsys, "components", pgm_path, "-p", "4", "--engine", "darray"
        )
        n_sim = next(l for l in sim.splitlines() if "components (" in l).split()[0]
        n_dar = next(l for l in dar.splitlines() if "components (" in l).split()[0]
        assert n_sim == n_dar

    def test_mmap_reports_bounded_residency(self, capsys, pgm_path):
        out = run_cli(
            capsys, "components", pgm_path, "-p", "16",
            "--engine", "darray", "--transport", "mmap", "--resident-tiles", "2",
        )
        stats = next(l for l in out.splitlines() if l.startswith("darray stats:"))
        highwater = int(stats.rsplit("resident highwater ", 1)[1])
        assert 0 < highwater <= 2

    def test_spill_dir_option(self, capsys, tmp_path, pgm_path):
        spill = tmp_path / "spill"
        run_cli(
            capsys, "components", pgm_path, "-p", "4",
            "--engine", "darray", "--transport", "mmap",
            "--spill-dir", str(spill),
        )
        assert (spill / "labels.bin").exists()

    def test_pattern_input(self, capsys):
        out = run_cli(
            capsys, "components", "--pattern", "4", "--size", "64", "-p", "4",
            "--engine", "darray", "--transport", "mmap",
        )
        assert "darray/mmap: 64x64" in out

    def test_output_written(self, capsys, tmp_path, pgm_path):
        out_path = tmp_path / "labels.pgm"
        out = run_cli(
            capsys, "components", pgm_path, "-p", "4",
            "--engine", "darray", "-o", str(out_path),
        )
        assert "label map written" in out
        assert out_path.exists()

    def test_runtime_flag_still_works(self, capsys, pgm_path):
        out = run_cli(capsys, "components", pgm_path, "-p", "4", "--runtime")
        assert "runtime backend: 64x64" in out

    def test_trace_export(self, capsys, tmp_path, pgm_path):
        trace = tmp_path / "trace.json"
        run_cli(
            capsys, "components", pgm_path, "-p", "4",
            "--engine", "darray", "--trace-out", str(trace),
        )
        data = json.loads(trace.read_text())
        names = {ev.get("name") for ev in data["traceEvents"]}
        assert "darray:label" in names

    def test_shmem_fault_plan(self, capsys, tmp_path, pgm_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "schema": "repro-faults/v1",
            "seed": 0,
            "faults": [{
                "site": "darray:border", "kind": "corrupt",
                "round": 0, "group": 0, "times": 1,
            }],
        }))
        out = run_cli(
            capsys, "components", pgm_path, "-p", "4",
            "--engine", "darray", "--transport", "shmem",
            "--fault-plan", str(plan),
        )
        assert "fault events:" in out


class TestHistogramDarray:
    @pytest.mark.parametrize("transport", ["local", "mmap"])
    def test_transport_matrix(self, capsys, pgm_path, transport):
        out = run_cli(
            capsys, "histogram", pgm_path, "-p", "4", "-k", "2",
            "--engine", "darray", "--transport", transport,
        )
        assert f"histogram k=2 via darray/{transport}" in out
        assert "occupied levels: 2/2" in out

    def test_matches_sim_engine(self, capsys, pgm_path):
        sim = run_cli(capsys, "histogram", pgm_path, "-p", "4", "-k", "2")
        dar = run_cli(
            capsys, "histogram", pgm_path, "-p", "4", "-k", "2",
            "--engine", "darray",
        )
        def levels(out):
            return sorted(l.strip() for l in out.splitlines() if l.startswith("  level"))
        assert levels(sim) == levels(dar)

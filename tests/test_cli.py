"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.images import darpa_like, write_pgm
from repro.images.io import read_pnm


def run_cli(capsys, *argv) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


class TestMachines:
    def test_lists_all(self, capsys):
        out = run_cli(capsys, "machines")
        for name in ("cm5", "sp1", "sp2", "cs2", "paragon"):
            assert name in out


class TestGenerate:
    def test_pattern_pbm(self, capsys, tmp_path):
        path = tmp_path / "img.pbm"
        run_cli(capsys, "generate", "--pattern", "5", "--size", "64", str(path))
        img = read_pnm(path)
        assert img.shape == (64, 64)
        assert set(np.unique(img)) <= {0, 1}

    def test_darpa_pgm(self, capsys, tmp_path):
        path = tmp_path / "scene.pgm"
        run_cli(capsys, "generate", "--pattern", "0", "--size", "64", str(path))
        img = read_pnm(path)
        assert img.max() > 1


class TestHistogram:
    def test_on_pattern(self, capsys):
        out = run_cli(
            capsys, "histogram", "--pattern", "6", "--size", "64", "-k", "2", "-p", "4"
        )
        assert "simulated time" in out
        assert "occupied levels: 2/2" in out

    def test_on_file_with_equalize(self, capsys, tmp_path):
        src = tmp_path / "in.pgm"
        write_pgm(src, darpa_like(64, 32, seed=9))
        eq = tmp_path / "eq.pgm"
        out = run_cli(capsys, "histogram", str(src), "-k", "32", "-p", "4", "--equalize", str(eq))
        assert "equalized image written" in out
        assert read_pnm(eq).shape == (64, 64)

    def test_missing_input_errors(self, capsys):
        code = main(["histogram"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestComponents:
    def test_simulated(self, capsys):
        out = run_cli(
            capsys, "components", "--pattern", "8", "--size", "64", "-p", "16"
        )
        assert "4 components" in out

    def test_runtime_backend(self, capsys):
        out = run_cli(
            capsys, "components", "--pattern", "6", "--size", "64", "--runtime"
        )
        assert "1 components" in out

    def test_grey_with_output(self, capsys, tmp_path):
        # Small enough that the compacted map fits an 8-bit PGM.
        src = tmp_path / "g.pgm"
        write_pgm(src, darpa_like(32, 16, seed=4))
        dst = tmp_path / "labels.pgm"
        out = run_cli(
            capsys, "components", str(src), "--grey", "-p", "4", "-o", str(dst)
        )
        assert "label map written" in out
        labels = read_pnm(dst)
        assert labels.shape == (32, 32)

    def test_output_rejects_overdeep_label_map(self, capsys, tmp_path):
        # A 64x64 16-level scene has ~400 grey components: too many for
        # 8-bit PGM, so the CLI must refuse with a clear error rather
        # than write a file its own reader rejects.
        src = tmp_path / "g.pgm"
        write_pgm(src, darpa_like(64, 16, seed=4))
        code = main(
            ["components", str(src), "--grey", "-p", "4",
             "-o", str(tmp_path / "labels.pgm")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "does not fit an 8-bit PGM" in captured.err
        assert not (tmp_path / "labels.pgm").exists()

    def test_ascii_rendering(self, capsys):
        out = run_cli(
            capsys, "components", "--pattern", "5", "--size", "64",
            "-p", "4", "--ascii", "32",
        )
        assert "a" in out  # the cross rendered as component 'a'

    def test_connectivity_flag(self, capsys):
        # Diagonal-only pattern: 4-connectivity splits it apart.
        out8 = run_cli(capsys, "components", "--pattern", "3", "--size", "64", "-p", "4")
        out4 = run_cli(
            capsys, "components", "--pattern", "3", "--size", "64", "-p", "4",
            "--connectivity", "4",
        )
        n8 = int(out8.split(" components")[0].split()[-1])
        n4 = int(out4.split(" components")[0].split()[-1])
        assert n4 >= n8


class TestReportFlag:
    def test_components_report(self, capsys):
        out = run_cli(
            capsys, "components", "--pattern", "6", "--size", "64",
            "-p", "4", "--report",
        )
        assert "simulated run on TMC CM-5" in out
        assert "cc:label" in out

    def test_histogram_report(self, capsys):
        out = run_cli(
            capsys, "histogram", "--pattern", "6", "--size", "64",
            "-k", "2", "-p", "4", "--report",
        )
        assert "hist:tally" in out


class TestVerifyCommand:
    def test_roundtrip_ok(self, capsys, tmp_path):
        img_path = tmp_path / "img.pbm"
        run_cli(capsys, "generate", "--pattern", "8", "--size", "64", str(img_path))
        lab_path = tmp_path / "labels.pgm"
        run_cli(
            capsys, "components", str(img_path), "-p", "4", "-o", str(lab_path)
        )
        out = run_cli(capsys, "verify", str(img_path), str(lab_path))
        assert "OK" in out

    def test_detects_corruption(self, capsys, tmp_path):
        from repro.images import write_pgm
        import numpy as np

        img_path = tmp_path / "img.pbm"
        run_cli(capsys, "generate", "--pattern", "8", "--size", "64", str(img_path))
        lab_path = tmp_path / "labels.pgm"
        run_cli(capsys, "components", str(img_path), "-p", "4", "-o", str(lab_path))
        # Corrupt: merge two labels
        from repro.images import read_pnm

        labels = read_pnm(lab_path)
        labels[labels == labels.max()] = 1
        write_pgm(lab_path, labels)
        code = main(["verify", str(img_path), str(lab_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.out


class TestCustomMachineSpec:
    def test_json_machine(self, capsys, tmp_path):
        import json

        spec = tmp_path / "mymachine.json"
        spec.write_text(json.dumps({
            "name": "MyCluster",
            "latency_s": 1e-6,
            "bandwidth_Bps": 1e9,
            "op_ns": 2.0,
        }))
        out = run_cli(
            capsys, "components", "--pattern", "6", "--size", "64",
            "-p", "4", "--machine", str(spec),
        )
        assert "MyCluster" in out

    def test_bad_json_machine(self, capsys, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text("{not json")
        code = main([
            "components", "--pattern", "6", "--size", "64", "--machine", str(spec)
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err


class TestReportCommand:
    def test_assembles_from_artifacts(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_histogramming.txt").write_text("TABLE ONE CONTENT")
        (results / "custom_extra.txt").write_text("EXTRA CONTENT")
        out = run_cli(capsys, "report", "--results", str(results))
        assert "REPRODUCTION REPORT" in out
        assert "TABLE ONE CONTENT" in out
        assert "EXTRA CONTENT" in out
        assert "not regenerated in this run" in out  # most sections absent

    def test_writes_file(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig10_darpa.txt").write_text("DARPA")
        dest = tmp_path / "report.txt"
        run_cli(capsys, "report", "--results", str(results), "-o", str(dest))
        assert "DARPA" in dest.read_text()

    def test_missing_results_dir_errors(self, capsys, tmp_path):
        code = main(["report", "--results", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err

    def test_empty_results_dir_errors(self, capsys, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        code = main(["report", "--results", str(empty)])
        assert code == 2


class TestFaultPlanFlags:
    def _write_plan(self, tmp_path, faults):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"schema": "repro-faults/v1", "faults": faults}))
        return str(path)

    def test_components_sim_failover(self, capsys, tmp_path):
        plan = self._write_plan(
            tmp_path,
            [{"site": "sim:merge", "kind": "crash", "round": 0, "group": 0}],
        )
        out = run_cli(
            capsys, "components", "--pattern", "4", "--size", "64", "-p", "16",
            "--fault-plan", plan,
        )
        assert "merge-round failovers: 1" in out
        assert "fault:failover" in out

    def test_components_runtime_retry(self, capsys, tmp_path):
        plan = self._write_plan(
            tmp_path,
            [{"site": "cc:merge", "kind": "exception", "round": 0, "group": 0}],
        )
        out = run_cli(
            capsys, "components", "--pattern", "4", "--size", "64", "-p", "4",
            "--runtime", "--fault-plan", plan,
        )
        assert "fault:retry" in out

    def test_histogram_sim_rejects_plan(self, capsys, tmp_path):
        plan = self._write_plan(
            tmp_path, [{"site": "hist:band", "kind": "exception", "task": 0}]
        )
        code = main(
            ["histogram", "--pattern", "6", "--size", "64",
             "--fault-plan", plan]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "use --runtime" in captured.err

    def test_histogram_runtime_with_plan(self, capsys, tmp_path):
        plan = self._write_plan(
            tmp_path, [{"site": "hist:band", "kind": "exception", "task": 0}]
        )
        out = run_cli(
            capsys, "histogram", "--pattern", "0", "--size", "64", "-p", "4",
            "-k", "256", "--runtime", "--fault-plan", plan,
        )
        assert "fault:retry" in out

    def test_bad_plan_file_is_a_cli_error(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        code = main(
            ["components", "--pattern", "4", "--size", "64",
             "--fault-plan", str(path)]
        )
        assert code == 2


class TestChaosCommand:
    def test_list_prints_matrix_without_running(self, capsys):
        out = run_cli(
            capsys, "chaos", "--pattern", "4", "--size", "64", "-p", "4",
            "--engine", "sim", "--list",
        )
        assert "single-fault plan(s)" in out
        assert "crash@sim:merge" in out

    def test_sim_matrix_recovers(self, capsys):
        out = run_cli(
            capsys, "chaos", "--pattern", "4", "--size", "64", "-p", "4",
            "--engine", "sim",
        )
        assert "all plans recovered" in out
        assert "fault:failover" in out
        assert "MISMATCH" not in out

    def test_sim_histogram_rejected(self, capsys):
        code = main(
            ["chaos", "--pattern", "4", "--size", "64",
             "--workload", "histogram", "--engine", "sim"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "components only" in captured.err

    def test_process_histogram_exception_plans(self, capsys, monkeypatch):
        # Keep the CLI-level process test cheap: histogram's matrix is
        # small and its exception plans need no deadline waits.  The
        # full matrix runs in tests/test_faults_runtime.py.
        out = run_cli(
            capsys, "chaos", "--pattern", "0", "--size", "64", "-p", "4",
            "--workload", "histogram", "--timeout", "1.5",
        )
        assert "all plans recovered" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {repro.__version__}"


class TestServe:
    def test_selftest_round_trip(self, capsys):
        out = run_cli(capsys, "serve", "--selftest", "--workers", "2")
        assert "selftest OK" in out
        assert "cache hit" in out

    def test_selftest_without_cache(self, capsys):
        out = run_cli(capsys, "serve", "--selftest", "--no-cache")
        assert "selftest OK" in out
        assert "0 cache hit(s)" in out

    def test_socket_required_without_selftest(self, capsys):
        code = main(["serve"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--socket" in captured.err

    def test_selftest_with_fault_plan(self, capsys, tmp_path):
        import json as _json

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(_json.dumps({
            "schema": "repro-faults/v1",
            "seed": 1,
            "faults": [{"site": "svc:exec", "kind": "exception", "times": 1}],
        }))
        out = run_cli(
            capsys, "serve", "--selftest", "--fault-plan", str(plan_path),
            "--timeout", "30",
        )
        assert "fault plan:" in out
        assert "selftest OK" in out

"""Out-of-core contract of the mmap transport.

The paper's communication structure (border-only merges, hook-based
final update) means labeling memory is bounded by the resident-tile
budget, not the image: these tests pin the enforced working set, the
spill accounting, the memmap result surface, and spill-file hygiene.
"""

import os

import numpy as np
import pytest

from repro.baselines.sequential import sequential_components
from repro.darray import darray_components, darray_histogram
from repro.images import binary_test_image
from repro.images.io import write_pgm

N = 64
P = 16  # 4x4 grid: a budget of 1 is a 16x ratio


@pytest.fixture(scope="module")
def image():
    return binary_test_image(4, N)


@pytest.fixture(scope="module")
def serial_labels(image):
    return sequential_components(image, connectivity=8)


@pytest.fixture(scope="module")
def image_path(tmp_path_factory, image):
    path = tmp_path_factory.mktemp("ooc") / "img.pgm"
    write_pgm(path, image)
    return str(path)


class TestWorkingSet:
    def test_highwater_never_exceeds_budget(self, image_path, serial_labels):
        for budget in (1, 2, 5):
            res = darray_components(
                image_path, p=P, transport="mmap", resident_tiles=budget
            )
            assert np.array_equal(np.asarray(res.labels), serial_labels)
            assert 0 < res.stats.resident_highwater <= budget

    def test_sixteen_x_ratio(self, image_path, serial_labels):
        # 16 tiles through a 1-tile budget: the image is 16x larger
        # than the enforced label working set.
        res = darray_components(
            image_path, p=P, transport="mmap", resident_tiles=1
        )
        assert np.array_equal(np.asarray(res.labels), serial_labels)
        assert res.stats.resident_highwater == 1
        assert P // res.stats.resident_highwater >= 16

    def test_spills_counted(self, image_path):
        res = darray_components(
            image_path, p=P, transport="mmap", resident_tiles=1
        )
        # Every tile spills at least once during labeling (bar the one
        # still resident) and is read back for finalize and gather.
        assert res.stats.spill_writes >= P - 1
        assert res.stats.spill_reads >= P

    def test_generous_budget_still_spills_for_gather(self, image_path):
        res = darray_components(
            image_path, p=P, transport="mmap", resident_tiles=P
        )
        assert res.stats.resident_highwater == P
        assert res.stats.spill_reads >= P  # gather streams from spill

    def test_rejects_non_positive_budget(self, image_path):
        from repro.utils.errors import ReproError

        with pytest.raises(ReproError):
            darray_components(
                image_path, p=P, transport="mmap", resident_tiles=0
            )


class TestResultSurface:
    def test_labels_are_read_only_memmap(self, image_path):
        res = darray_components(image_path, p=P, transport="mmap")
        assert isinstance(res.labels, np.memmap)
        assert not res.labels.flags.writeable

    def test_streaming_count_matches_unique(self, image_path):
        res = darray_components(image_path, p=P, transport="mmap")
        lab = np.asarray(res.labels)
        assert res.n_components == int(np.unique(lab[lab != 0]).size)


class TestSpillHygiene:
    def test_owned_spill_dir_removed(self, image_path):
        import repro.darray.mmap_transport as mt

        created = []
        original = mt.tempfile.mkdtemp

        def spy(**kw):
            path = original(**kw)
            created.append(path)
            return path

        mt.tempfile.mkdtemp = spy
        try:
            res = darray_components(image_path, p=P, transport="mmap")
        finally:
            mt.tempfile.mkdtemp = original
        assert len(created) == 1
        # The result memmap is gone with the directory: the transport
        # owns the spill dir, so close() removed everything.
        assert not os.path.exists(created[0])
        assert res.stats.spill_writes > 0

    def test_caller_spill_dir_keeps_labels_only(self, tmp_path, image_path):
        spill = tmp_path / "spill"
        res = darray_components(
            image_path, p=P, transport="mmap", spill_dir=str(spill)
        )
        left = sorted(p.name for p in spill.iterdir())
        assert left == ["labels.bin"]  # tile shards cleaned up
        assert np.asarray(res.labels).shape == (N, N)

    def test_ndarray_input_staged_and_cleaned(self, tmp_path, image, serial_labels):
        spill = tmp_path / "spill"
        res = darray_components(
            image, p=P, transport="mmap", spill_dir=str(spill)
        )
        assert np.array_equal(np.asarray(res.labels), serial_labels)
        assert not (spill / "image.pgm").exists()

    def test_ascii_pgm_staged(self, tmp_path, image, serial_labels):
        # A non-P5 file cannot be mapped; the transport decodes and
        # stages it, and the result is still bit-identical.
        path = tmp_path / "ascii.pgm"
        write_pgm(path, image, binary=False)
        res = darray_components(str(path), p=P, transport="mmap")
        assert np.array_equal(np.asarray(res.labels), serial_labels)


class TestHistogramOutOfCore:
    def test_parity(self, image_path, image):
        expect = np.bincount(image.ravel(), minlength=2).astype(np.int64)
        got = darray_histogram(image_path, 2, p=P, transport="mmap")
        assert np.array_equal(got, expect)

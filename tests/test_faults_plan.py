"""Tests for the declarative fault-plan model (repro.faults.plan)."""

import json

import pytest

from repro.faults import (
    KINDS,
    SCHEMA,
    SITES,
    FaultPlan,
    FaultSpec,
    single_fault_plans,
)
from repro.utils.errors import ValidationError


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(site="cc:merge", kind="crash")
        assert spec.round is None and spec.group is None and spec.task is None
        assert spec.times == 1
        assert spec.probability == 1.0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="cc:nope", kind="crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="cc:merge", kind="melt")

    def test_corrupt_only_at_merge(self):
        FaultSpec(site="cc:merge", kind="corrupt")  # fine
        with pytest.raises(ValidationError):
            FaultSpec(site="cc:label", kind="corrupt")

    def test_sim_merge_is_crash_only(self):
        FaultSpec(site="sim:merge", kind="crash", target="shadow")  # fine
        with pytest.raises(ValidationError):
            FaultSpec(site="sim:merge", kind="hang")

    def test_bad_target(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="sim:merge", kind="crash", target="everyone")

    def test_times_zero_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="cc:label", kind="crash", times=0)

    def test_probability_bounds(self):
        with pytest.raises(ValidationError):
            FaultSpec(site="cc:label", kind="crash", probability=1.5)

    def test_wildcard_selectors_match_everything(self):
        spec = FaultSpec(site="cc:merge", kind="exception")
        assert spec.matches("cc:merge", round=0, group=0)
        assert spec.matches("cc:merge", round=3, group=7)
        assert not spec.matches("cc:label", task=0)

    def test_pinned_selectors(self):
        spec = FaultSpec(site="cc:merge", kind="exception", round=1, group=2)
        assert spec.matches("cc:merge", round=1, group=2)
        assert not spec.matches("cc:merge", round=1, group=0)
        assert not spec.matches("cc:merge", round=0, group=2)

    def test_times_bounds_attempts(self):
        spec = FaultSpec(site="cc:label", kind="exception", task=0, times=2)
        assert spec.matches("cc:label", task=0, attempt=0)
        assert spec.matches("cc:label", task=0, attempt=1)
        assert not spec.matches("cc:label", task=0, attempt=2)

    def test_times_minus_one_is_every_attempt(self):
        spec = FaultSpec(site="cc:label", kind="exception", task=0, times=-1)
        for attempt in range(10):
            assert spec.matches("cc:label", task=0, attempt=attempt)

    def test_describe_mentions_kind_site_and_selectors(self):
        spec = FaultSpec(site="cc:merge", kind="crash", round=1, group=0)
        text = spec.describe()
        assert "crash" in text and "cc:merge" in text
        assert "round=1" in text and "group=0" in text


class TestFaultPlanMatching:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.match("cc:label", task=0) is None
        assert plan.match_all("cc:label", task=0) == []

    def test_first_hit_wins(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="cc:label", kind="exception", task=0),
            FaultSpec(site="cc:label", kind="crash", task=0),
        ))
        assert plan.match("cc:label", task=0).kind == "exception"
        assert [s.kind for s in plan.match_all("cc:label", task=0)] == [
            "exception", "crash",
        ]

    def test_probability_is_deterministic(self):
        plan = FaultPlan(seed=3, faults=(
            FaultSpec(site="cc:label", kind="exception", probability=0.5),
        ))
        draws = [
            plan.match("cc:label", task=t, attempt=0) is not None
            for t in range(64)
        ]
        again = [
            plan.match("cc:label", task=t, attempt=0) is not None
            for t in range(64)
        ]
        assert draws == again  # same seed, same decisions
        assert any(draws) and not all(draws)  # ~half fire

    def test_probability_depends_on_seed(self):
        spec = FaultSpec(site="cc:label", kind="exception", probability=0.5)
        a = [FaultPlan(seed=0, faults=(spec,)).match("cc:label", task=t) for t in range(64)]
        b = [FaultPlan(seed=1, faults=(spec,)).match("cc:label", task=t) for t in range(64)]
        assert [x is None for x in a] != [x is None for x in b]

    def test_sites(self):
        plan = FaultPlan(faults=(
            FaultSpec(site="cc:label", kind="crash"),
            FaultSpec(site="cc:merge", kind="corrupt"),
        ))
        assert plan.sites() == {"cc:label", "cc:merge"}


class TestFaultPlanSerialization:
    def test_json_roundtrip(self):
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(site="cc:merge", kind="crash", round=1, group=0),
            FaultSpec(site="sim:merge", kind="crash", target="shadow", times=-1),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_to_json_has_schema(self):
        assert FaultPlan().to_json()["schema"] == SCHEMA

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(site="hist:band", kind="hang", task=2, delay_s=0.5),
        ))
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan
        # and it is real, human-editable JSON
        obj = json.loads(path.read_text())
        assert obj["faults"][0]["site"] == "hist:band"

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_json({"schema": "repro-faults/v999", "faults": []})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_json(
                {"faults": [{"site": "cc:label", "kind": "crash", "color": "red"}]}
            )

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError):
            FaultPlan.load(path)

    def test_non_object_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_json([1, 2, 3])

    def test_plan_is_picklable(self):
        # it must cross the pool-initializer boundary into workers
        import pickle

        plan = FaultPlan(faults=(FaultSpec(site="cc:label", kind="crash"),))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSingleFaultPlans:
    def test_process_components_matrix(self):
        plans = single_fault_plans(
            workload="components", engine="process", n_rounds=2, n_tasks=4
        )
        descrs = [p.describe() for p in plans]
        assert len(plans) == len(set(descrs))  # no duplicates
        assert all(len(p.faults) == 1 for p in plans)
        kinds = {p.faults[0].kind for p in plans}
        assert kinds == {"crash", "hang", "exception", "corrupt"}
        merge_rounds = {
            p.faults[0].round for p in plans if p.faults[0].site == "cc:merge"
        }
        assert merge_rounds == {0, 1}  # every merge round covered

    def test_process_histogram_matrix(self):
        plans = single_fault_plans(
            workload="histogram", engine="process", n_rounds=0, n_tasks=4
        )
        assert {p.faults[0].site for p in plans} == {"hist:band"}
        assert {p.faults[0].kind for p in plans} == {"crash", "hang", "exception"}

    def test_sim_matrix_covers_both_targets_every_round(self):
        plans = single_fault_plans(
            workload="components", engine="sim", n_rounds=3, n_tasks=16
        )
        combos = {(p.faults[0].round, p.faults[0].target) for p in plans}
        assert combos == {(r, t) for r in range(3) for t in ("manager", "shadow")}

    def test_sim_histogram_rejected(self):
        with pytest.raises(ValidationError):
            single_fault_plans(
                workload="histogram", engine="sim", n_rounds=0, n_tasks=4
            )

    def test_unknown_workload(self):
        with pytest.raises(ValidationError):
            single_fault_plans(
                workload="sorting", engine="process", n_rounds=0, n_tasks=4
            )


def test_public_site_and_kind_catalogs():
    assert "sim:merge" in SITES
    assert set(KINDS) == {"crash", "hang", "exception", "corrupt"}

"""Tests for the verification module (and via it, failure injection)."""

import numpy as np
import pytest

from repro.analysis.verification import (
    VerificationError,
    verify_area_fractions,
    verify_histogram,
    verify_labels,
)
from repro.baselines import sequential_components, sequential_histogram
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, darpa_like, horizontal_bars


class TestVerifyHistogram:
    def test_accepts_correct(self, small_grey):
        verify_histogram(small_grey, sequential_histogram(small_grey, 8))

    def test_accepts_parallel_output(self, small_grey):
        res = parallel_histogram(small_grey, 8, 4)
        verify_histogram(small_grey, res.histogram)

    def test_rejects_wrong_total(self, small_grey):
        hist = sequential_histogram(small_grey, 8)
        hist[0] += 1
        with pytest.raises(VerificationError, match="sum"):
            verify_histogram(small_grey, hist)

    def test_rejects_swapped_bins(self, small_grey):
        hist = sequential_histogram(small_grey, 8)
        hist[1], hist[2] = hist[2], hist[1]
        if hist[1] != hist[2]:
            with pytest.raises(VerificationError, match="expected"):
                verify_histogram(small_grey, hist)

    def test_rejects_2d(self, small_grey):
        with pytest.raises(VerificationError):
            verify_histogram(small_grey, np.zeros((2, 2), dtype=np.int64))


class TestVerifyLabels:
    def test_accepts_all_engines(self, small_binary):
        for engine in ("bfs", "runs", "sv", "twopass"):
            labels = sequential_components(small_binary, engine=engine)
            verify_labels(small_binary, labels, reference_engine="runs")

    def test_accepts_parallel_output(self, small_binary):
        res = parallel_components(small_binary, 16)
        verify_labels(small_binary, res.labels)

    def test_accepts_grey(self, small_grey):
        labels = sequential_components(small_grey, grey=True)
        verify_labels(small_grey, labels, grey=True)

    def test_rejects_labeled_background(self, small_binary):
        labels = sequential_components(small_binary)
        bg = np.argwhere(small_binary == 0)[0]
        labels[bg[0], bg[1]] = 7
        with pytest.raises(VerificationError, match="background"):
            verify_labels(small_binary, labels)

    def test_rejects_unlabeled_foreground(self, small_binary):
        labels = sequential_components(small_binary)
        fgpos = np.argwhere(small_binary != 0)[0]
        labels[fgpos[0], fgpos[1]] = 0
        with pytest.raises(VerificationError, match="label 0"):
            verify_labels(small_binary, labels)

    def test_rejects_under_merging(self):
        """Split one component in half: adjacent pixels differ."""
        img = np.ones((4, 4), dtype=np.int32)
        labels = np.ones((4, 4), dtype=np.int64)
        labels[:, 2:] = 99
        with pytest.raises(VerificationError, match="different labels"):
            verify_labels(img, labels)

    def test_rejects_over_merging(self):
        """Two separate components sharing one label."""
        img = np.zeros((3, 5), dtype=np.int32)
        img[:, 0] = 1
        img[:, 4] = 1
        labels = np.zeros((3, 5), dtype=np.int64)
        labels[:, 0] = 1
        labels[:, 4] = 1  # same label, disconnected
        with pytest.raises(VerificationError, match="canonical"):
            verify_labels(img, labels)

    def test_rejects_wrong_convention(self, small_binary):
        labels = sequential_components(small_binary)
        labels[labels != 0] += 1000  # consistent partition, wrong names
        with pytest.raises(VerificationError, match="canonical"):
            verify_labels(small_binary, labels)

    def test_shape_mismatch(self, small_binary):
        with pytest.raises(VerificationError, match="shape"):
            verify_labels(small_binary, np.zeros((4, 4), dtype=np.int64))

    def test_connectivity_matters(self):
        img = np.eye(4, dtype=np.int32)
        lab8 = sequential_components(img, connectivity=8)
        verify_labels(img, lab8, connectivity=8)
        with pytest.raises(VerificationError):
            verify_labels(img, lab8, connectivity=4)


class TestVerifyAreaFractions:
    def test_bars_cover_half(self):
        img = horizontal_bars(64, thickness=8)
        hist = sequential_histogram(img, 2)
        verify_area_fractions(img, hist, {0: 0.5, 1: 0.5})

    def test_disc_area(self):
        img = binary_test_image(6, 128)
        hist = sequential_histogram(img, 2)
        expected = np.pi * 0.375 ** 2
        verify_area_fractions(img, hist, {1: expected}, tol=0.01)

    def test_rejects_wrong_fraction(self):
        img = horizontal_bars(64, thickness=8)
        hist = sequential_histogram(img, 2)
        with pytest.raises(VerificationError):
            verify_area_fractions(img, hist, {1: 0.25})

    def test_rejects_bad_level(self):
        img = horizontal_bars(16, thickness=2)
        hist = sequential_histogram(img, 2)
        with pytest.raises(VerificationError, match="outside"):
            verify_area_fractions(img, hist, {5: 0.5})


class TestEndToEndVerification:
    """The verifier certifies every execution path of the library."""

    def test_certifies_full_pipeline(self):
        img = darpa_like(64, 32, seed=6)
        hist = parallel_histogram(img, 32, 16)
        verify_histogram(img, hist.histogram)
        for options in (
            {},
            {"grey": True},
            {"connectivity": 4},
            {"limited_updating": False},
            {"distribution": "transpose"},
        ):
            res = parallel_components(img, 16, **options)
            verify_labels(
                img,
                res.labels,
                connectivity=options.get("connectivity", 8),
                grey=options.get("grey", False),
            )


class TestCanonicalOption:
    def test_compacted_labels_accepted_relaxed(self, small_binary):
        from repro.analysis.regions import compact_labels
        from repro.baselines import sequential_components

        compacted = compact_labels(sequential_components(small_binary))
        with pytest.raises(VerificationError):
            verify_labels(small_binary, compacted)  # strict mode fails
        verify_labels(small_binary, compacted, canonical=False)  # relaxed ok

    def test_relaxed_still_catches_wrong_partition(self, small_binary):
        from repro.analysis.regions import compact_labels
        from repro.baselines import sequential_components

        compacted = compact_labels(sequential_components(small_binary))
        # merge two components
        if compacted.max() >= 2:
            compacted[compacted == 2] = 1
            with pytest.raises(VerificationError):
                verify_labels(small_binary, compacted, canonical=False)

    def test_canonicalize_idempotent(self, small_binary):
        from repro.analysis.verification import canonicalize_labels
        from repro.baselines import sequential_components

        lab = sequential_components(small_binary)
        assert np.array_equal(canonicalize_labels(lab), lab)

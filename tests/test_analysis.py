"""Tests for complexity predictions, efficiency metrics, and the tables."""

import numpy as np
import pytest

from repro.analysis import (
    TABLE1_HISTOGRAMMING,
    TABLE2_COMPONENTS,
    TableEntry,
    bandwidth_Bps,
    efficiency,
    format_table,
    normalized_work_per_pixel_s,
    predict_broadcast,
    predict_components,
    predict_histogram,
    predict_transpose,
    speedup,
    work_per_pixel_s,
)
from repro.analysis.complexity import scalability_exponent
from repro.bdm import GlobalArray, Machine, broadcast, transpose
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, SP2
from repro.utils.errors import ValidationError


class TestPredictionsTrackSimulation:
    def test_transpose_exact(self):
        p, q = 8, 512
        m = Machine(p, CM5)
        A = GlobalArray(m, q)
        transpose(m, A)
        ph = m.report().phases[0]
        pred = predict_transpose(CM5, q, p)
        assert ph.comm_s == pytest.approx(pred["comm_s"])
        assert ph.comp_s == pytest.approx(pred["comp_s"])

    def test_broadcast_exact(self):
        p, q = 8, 256
        m = Machine(p, SP2)
        A = GlobalArray(m, q)
        broadcast(m, A)
        rep = m.report()
        pred = predict_broadcast(SP2, q, p)
        assert rep.comm_s == pytest.approx(pred["comm_s"])

    def test_histogram_within_bound(self):
        n, k, p = 128, 64, 16
        img = random_greyscale(n, k, seed=9)
        res = parallel_histogram(img, k, p, CM5)
        pred = predict_histogram(CM5, n, k, p)
        # eq. (3) is an upper bound on comm; comp should track closely.
        assert res.report.comm_s <= pred["comm_s"] * 1.25
        assert res.report.comp_s <= pred["comp_s"] * 1.25

    def test_components_comm_within_bound(self):
        n, p = 128, 16
        img = binary_test_image(5, n)
        res = parallel_components(img, p, CM5)
        pred = predict_components(CM5, n, p)
        assert res.report.comm_s <= pred["comm_s"] * 1.5

    def test_components_comp_tracks_tile_size(self):
        n, p = 128, 16
        img = binary_test_image(6, n)
        res = parallel_components(img, p, CM5)
        pred = predict_components(CM5, n, p)
        assert res.report.comp_s == pytest.approx(pred["comp_s"], rel=0.6)

    def test_scalability_exponent_quadratic(self):
        ns = np.array([64, 128, 256, 512])
        times = 3.0 * ns.astype(float) ** 2
        assert scalability_exponent(ns, times) == pytest.approx(2.0)

    def test_scalability_exponent_needs_points(self):
        with pytest.raises(ValueError):
            scalability_exponent([64], [1.0])


class TestEfficiencyMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_efficiency_perfect(self):
        assert efficiency(16.0, 1.0, 16) == pytest.approx(1.0)

    def test_efficiency_validation(self):
        with pytest.raises(ValidationError):
            efficiency(1.0, 1.0, 0)
        with pytest.raises(ValidationError):
            speedup(1.0, 0.0)

    def test_work_per_pixel_coarse(self):
        # 12 ms * 16 procs / 512^2 pixels = 732 ns (Table 1's CM-5 row)
        w = work_per_pixel_s(12.0e-3, 16, 512)
        assert w == pytest.approx(732e-9, rel=0.01)

    def test_work_per_pixel_fine_grained(self):
        # Marks 1980: 17.25 ms, 1024 PEs / 32, 32x32 -> 539 us
        w = work_per_pixel_s(17.25e-3, 1024, 32, fine_grained=True)
        assert w == pytest.approx(539e-6, rel=0.01)

    def test_bandwidth(self):
        # 1e6 words * 4 B in 1 s = 4 MB/s
        assert bandwidth_Bps(1e6, 1.0) == pytest.approx(4e6)
        with pytest.raises(ValidationError):
            bandwidth_Bps(10, 0.0)


class TestTables:
    def test_table1_reported_work_consistent(self):
        """Reported work/pixel matches recomputation from raw fields."""
        for e in TABLE1_HISTOGRAMMING:
            if e.researchers == "Nudd, et al.":
                continue  # the paper's row uses an effective PE count
            assert normalized_work_per_pixel_s(e) == pytest.approx(
                e.work_per_pixel_s, rel=0.02
            ), e

    def test_table2_our_rows_consistent(self):
        for e in TABLE2_COMPONENTS:
            if not e.ours:
                continue
            assert normalized_work_per_pixel_s(e) == pytest.approx(
                e.work_per_pixel_s, rel=0.02
            ), e

    def test_table2_literature_rows_consistent(self):
        """Every encoded historical row's reported work/pixel matches a
        recomputation from its (time, PEs, image) fields."""
        for e in TABLE2_COMPONENTS:
            if e.ours:
                continue
            assert normalized_work_per_pixel_s(e) == pytest.approx(
                e.work_per_pixel_s, rel=0.03
            ), e

    def test_paper_beats_prior_histogramming_work(self):
        """Table 1's headline: the paper's rows have the lowest work/pixel."""
        ours = min(e.work_per_pixel_s for e in TABLE1_HISTOGRAMMING if e.ours)
        prior = min(e.work_per_pixel_s for e in TABLE1_HISTOGRAMMING if not e.ours)
        assert ours < prior

    def test_paper_beats_choudhary_on_darpa(self):
        """Table 2: 368 ms vs Choudhary/Thakur's 398-456 ms on CM-5/32."""
        ours = [
            e for e in TABLE2_COMPONENTS
            if e.ours and e.machine == "TMC CM-5" and "DARPA" in e.note
        ]
        theirs = [
            e for e in TABLE2_COMPONENTS
            if not e.ours and e.machine == "TMC CM-5" and "DARPA" in e.note
        ]
        assert ours and theirs
        assert min(e.time_s for e in ours) < min(e.time_s for e in theirs)

    def test_format_table_renders(self):
        text = format_table(TABLE1_HISTOGRAMMING, title="Table 1")
        assert "Table 1" in text
        assert "TMC CM-5" in text
        assert len(text.splitlines()) == len(TABLE1_HISTOGRAMMING) + 3

    def test_format_table_marks_extra_rows(self):
        extra = [
            TableEntry(2026, "repro", "simulated CM-5", 16, 512, 12e-3, 732e-9)
        ]
        text = format_table(TABLE1_HISTOGRAMMING, extra=extra)
        assert text.rstrip().endswith("*")

    def test_format_table_empty_rejected(self):
        with pytest.raises(ValidationError):
            format_table([])

"""Tests for Otsu thresholding and its pipeline integration."""

import numpy as np
import pytest

from repro.analysis.threshold import apply_threshold, otsu_threshold
from repro.baselines import count_components, sequential_components
from repro.core.histogram import parallel_histogram
from repro.utils.errors import ValidationError


def bimodal_image(n, lo, hi, seed=0):
    """Half the pixels near `lo`, half near `hi` (clearly separable)."""
    rng = np.random.default_rng(seed)
    img = np.where(
        rng.random((n, n)) < 0.5,
        rng.integers(lo, lo + 5, (n, n)),
        rng.integers(hi, hi + 5, (n, n)),
    )
    return img.astype(np.int32)


class TestOtsu:
    def test_separates_bimodal(self):
        img = bimodal_image(64, 10, 200)
        hist = np.bincount(img.ravel(), minlength=256)
        t = otsu_threshold(hist)
        # low mode occupies 10..14, high mode 200..204; any t in between
        # (inclusive of the low mode's top level) separates them.
        assert 14 <= t < 200

    def test_classification_is_clean(self):
        img = bimodal_image(64, 10, 200)
        hist = np.bincount(img.ravel(), minlength=256)
        binary = apply_threshold(img, otsu_threshold(hist))
        # No pixel of the low mode is classified as foreground and v.v.
        assert (binary[img < 20] == 0).all()
        assert (binary[img > 190] == 1).all()

    def test_two_spikes_exact(self):
        hist = np.zeros(8, dtype=np.int64)
        hist[1] = 100
        hist[6] = 100
        t = otsu_threshold(hist)
        assert 1 <= t < 6

    def test_single_level(self):
        hist = np.zeros(8, dtype=np.int64)
        hist[3] = 50
        assert otsu_threshold(hist) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            otsu_threshold(np.zeros(8))
        with pytest.raises(ValidationError):
            otsu_threshold(np.array([5]))
        with pytest.raises(ValidationError):
            otsu_threshold(np.array([1, -2, 3]))

    def test_scale_invariance(self):
        rng = np.random.default_rng(4)
        hist = rng.integers(0, 100, 32)
        assert otsu_threshold(hist) == otsu_threshold(hist * 7)


class TestPipeline:
    def test_parallel_histogram_to_otsu_to_components(self):
        """histogram -> threshold -> binary CC: the recognition pipeline."""
        img = bimodal_image(64, 5, 50, seed=3)
        res = parallel_histogram(img, 64, 16)
        t = otsu_threshold(res.histogram)
        binary = apply_threshold(img, t)
        labels = sequential_components(binary)
        assert count_components(labels) >= 1
        # foreground mass roughly half the image (the bimodal split)
        assert 0.35 < binary.mean() < 0.65

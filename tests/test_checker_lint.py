"""Tests for the static SPMD lint pass and its entry points.

One positive and one negative case per rule, plus the seeded buggy
program from the acceptance criteria, the live-callable path, the CLI,
and the strict pytest fixture.
"""

import textwrap

import numpy as np
import pytest

from repro.bdm import Machine
from repro.bdm.spmd import run_spmd
from repro.checker.lint import lint_callable, lint_paths, lint_source
from repro.checker.rules import RULES, format_catalog
from repro.cli import main as cli_main
from repro.machines import IDEAL
from repro.utils.errors import LintError


def rules_of(diags):
    return sorted({d.rule for d in diags})


def lint(snippet):
    return lint_source(textwrap.dedent(snippet))


class TestSpmd001UnyieldedSync:
    def test_bare_sync_statement_flagged(self):
        diags = lint(
            """
            def program(ctx):
                ctx.sync()
                yield ctx.barrier()
            """
        )
        assert rules_of(diags) == ["SPMD001"]

    def test_assigned_token_never_yielded_flagged(self):
        diags = lint(
            """
            def program(ctx):
                t = ctx.barrier()
                yield ctx.sync()
            """
        )
        assert "SPMD001" in rules_of(diags)

    def test_yielded_tokens_clean(self):
        diags = lint(
            """
            def program(ctx):
                yield ctx.sync()
                t = ctx.barrier()
                yield t
            """
        )
        assert diags == []


class TestSpmd002ReadBeforeSync:
    def test_value_before_sync_flagged(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                h = ctx.prefetch(A, 0)
                v = h.value
                yield ctx.sync()
            """
        )
        assert "SPMD002" in rules_of(diags)

    def test_value_after_sync_clean(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                h = ctx.prefetch(A, 0)
                yield ctx.sync()
                v = h.value
            """
        )
        assert diags == []

    def test_sync_on_one_path_only_flagged(self):
        """'No intervening sync on any path' -- the else path is bare."""
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                h = ctx.prefetch(A, 0)
                if A.total_length() > 4:
                    yield ctx.sync()
                v = h.value
                yield ctx.barrier()
            """
        )
        assert "SPMD002" in rules_of(diags)

    def test_barrier_does_not_count_as_sync(self):
        """Only sync() services prefetches in the runner."""
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                h = ctx.prefetch(A, 0)
                yield ctx.barrier()
                v = h.value
                yield ctx.sync()
            """
        )
        assert "SPMD002" in rules_of(diags)


class TestSpmd003BarrierDivergence:
    def test_pid_branch_flagged(self):
        diags = lint(
            """
            def program(ctx):
                if ctx.pid == 0:
                    yield ctx.barrier()
                yield ctx.sync()
            """
        )
        assert "SPMD003" in rules_of(diags)

    def test_taint_propagates_through_assignment(self):
        diags = lint(
            """
            def program(ctx):
                boss = ctx.pid == 0
                if boss:
                    yield ctx.barrier()
                yield ctx.sync()
            """
        )
        assert "SPMD003" in rules_of(diags)

    def test_top_level_barrier_clean(self):
        diags = lint(
            """
            def program(ctx):
                for _ in range(ctx.p):
                    yield ctx.barrier()
            """
        )
        assert diags == []

    def test_sync_in_pid_branch_allowed(self):
        """sync() is a local wait; divergence is harmless."""
        diags = lint(
            """
            def program(ctx):
                if ctx.pid == 0:
                    yield ctx.sync()
                yield ctx.barrier()
            """
        )
        assert diags == []


class TestSpmd004NonCollectiveArray:
    def test_pid_dependent_allocation_flagged(self):
        diags = lint(
            """
            def program(ctx):
                if ctx.pid == 0:
                    A = ctx.array("A", 4)
                yield ctx.barrier()
            """
        )
        assert "SPMD004" in rules_of(diags)

    def test_collective_allocation_clean(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                yield ctx.barrier()
            """
        )
        assert diags == []


class TestSpmd005DroppedHandle:
    def test_bare_prefetch_flagged(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                ctx.prefetch(A, 0)
                yield ctx.sync()
            """
        )
        assert "SPMD005" in rules_of(diags)

    def test_assigned_but_never_read_flagged(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                h = ctx.prefetch(A, 0)
                yield ctx.sync()
            """
        )
        assert "SPMD005" in rules_of(diags)

    def test_consumed_handle_clean(self):
        diags = lint(
            """
            def program(ctx):
                A = ctx.array("A", 4)
                handles = []
                for r in range(ctx.p):
                    handles.append(ctx.prefetch(A, r))
                h = ctx.prefetch(A, 0)
                yield ctx.sync()
                return h.value
            """
        )
        assert diags == []

    def test_severity_is_warning(self):
        assert RULES["SPMD005"].severity == "warning"


class TestSeededBuggyProgram:
    """The acceptance scenario: unyielded sync + barrier divergence."""

    SOURCE = """
        def buggy(ctx):
            A = ctx.array("A", 8)
            h = ctx.prefetch(A, (ctx.pid + 1) % ctx.p)
            ctx.sync()                      # BUG: token not yielded
            if ctx.pid == 0:
                yield ctx.barrier()         # BUG: barrier divergence
            yield ctx.sync()
            return h.value
    """

    def test_both_bugs_flagged_with_rule_ids(self):
        diags = lint(self.SOURCE)
        assert "SPMD001" in rules_of(diags)
        assert "SPMD003" in rules_of(diags)

    def test_diagnostics_carry_location_and_function(self):
        diags = lint(self.SOURCE)
        d = next(d for d in diags if d.rule == "SPMD001")
        assert d.function == "buggy"
        assert d.line == 5
        assert "SPMD001" in d.format()


class TestEntryPoints:
    def test_lint_callable_on_live_function(self):
        def program(ctx):
            A = ctx.array("A", 4)
            h = ctx.prefetch(A, 0)
            v = h.value  # read before sync
            yield ctx.sync()
            return v

        diags = lint_callable(program)
        assert "SPMD002" in rules_of(diags)
        assert all(d.function == "program" for d in diags)

    def test_lint_callable_non_program_returns_empty(self):
        assert lint_callable(len) == []
        assert lint_callable(lambda x: x) == []

    def test_lint_source_syntax_error(self):
        diags = lint_source("def broken(:\n", "bad.py")
        assert rules_of(diags) == ["SPMD000"]
        assert diags[0].file == "bad.py"

    def test_repo_sources_are_clean(self):
        """Guards the CI gate: `repro check src examples` must stay green."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        diags = lint_paths([str(root / "src"), str(root / "examples")])
        assert [d.format() for d in diags if d.severity == "error"] == []

    def test_catalog_lists_every_rule(self):
        text = format_catalog()
        for rule_id in RULES:
            assert rule_id in text


class TestCli:
    def test_check_flags_buggy_file(self, tmp_path, capsys):
        bad = tmp_path / "bad_program.py"
        bad.write_text(
            textwrap.dedent(
                """
                def program(ctx):
                    ctx.sync()
                    if ctx.pid == 0:
                        yield ctx.barrier()
                """
            )
        )
        rc = cli_main(["check", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SPMD001" in out
        assert "SPMD003" in out

    def test_check_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good_program.py"
        good.write_text(
            textwrap.dedent(
                """
                def program(ctx):
                    A = ctx.array("A", 4)
                    h = ctx.prefetch(A, 0)
                    yield ctx.sync()
                    return h.value
                """
            )
        )
        rc = cli_main(["check", str(good)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_check_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad_program.py"
        bad.write_text("def program(ctx):\n    ctx.sync()\n    yield ctx.barrier()\n")
        rc = cli_main(["check", str(bad), "--select", "SPMD003"])
        out = capsys.readouterr().out
        assert rc == 0  # the only finding (SPMD001) was filtered out
        assert "SPMD001" not in out

    def test_check_unknown_rule_errors(self, tmp_path):
        rc = cli_main(["check", str(tmp_path), "--select", "SPMD999"])
        assert rc == 2

    def test_check_missing_path_errors(self, tmp_path, capsys):
        """A typo'd path must not silently pass the CI gate."""
        rc = cli_main(["check", str(tmp_path / "no_such_dir")])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = cli_main(["check", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SPMD001" in out


class TestStrictFixture:
    def test_strict_mode_blocks_buggy_program(self, spmd_strict):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            h = ctx.prefetch(A, 0)
            v = h.value  # lint error: read before sync
            yield ctx.sync()

        with pytest.raises(LintError, match="SPMD002"):
            run_spmd(m, program)

    def test_strict_mode_passes_clean_program(self, spmd_strict):
        m = Machine(2, IDEAL)

        def program(ctx):
            A = ctx.array("A", 4)
            ctx.write(A, np.arange(4))
            yield ctx.barrier()
            h = ctx.prefetch(A, (ctx.pid + 1) % 2)
            yield ctx.sync()
            return int(h.value[0])

        assert run_spmd(m, program) == [0, 0]

"""Figure 11: histogramming computation vs communication time.

The paper separates the histogramming algorithm's computation and
communication components for k = 32 and k = 256 grey levels over a
range of image and machine sizes, demonstrating the algorithm's key
property: communication cost is independent of the image size (it
depends only on tau, k and p), while computation grows as n^2/p.
"""

from benchmarks.conftest import emit, fmt_seconds
from repro.core.histogram import parallel_histogram
from repro.images import random_greyscale
from repro.machines import CM5

NS = (128, 256, 512, 1024)
KS = (32, 256)
P = 32


def _sweep():
    out = {}
    for k in KS:
        rows = []
        for n in NS:
            img = random_greyscale(n, k, seed=n + k)
            rep = parallel_histogram(img, k, P, CM5).report
            rows.append((n, rep.comp_s, rep.comm_s))
        out[k] = rows
    return out


def test_fig11_comp_vs_comm(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"Figure 11: histogramming comp vs comm on CM-5 (p={P}) -- simulated"]
    for k, rows in data.items():
        lines.append(f"k = {k}:")
        lines.append(f"{'n':>6} {'computation':>12} {'communication':>14}")
        for n, comp, comm in rows:
            lines.append(f"{n:>6} {fmt_seconds(comp):>12} {fmt_seconds(comm):>14}")
    emit("fig11_hist_comp_comm", "\n".join(lines))

    for rows in data.values():
        comms = [comm for _, _, comm in rows]
        # Communication independent of n (constant across the sweep).
        assert max(comms) - min(comms) < 1e-12
        # Computation strictly increasing in n.
        comps = [comp for _, comp, _ in rows]
        assert all(b > a for a, b in zip(comps, comps[1:]))
    # Communication grows with k (it is 2(tau + k) word-times).
    assert data[256][0][2] > data[32][0][2]
    # Crossover: computation overtakes communication for large n.
    assert data[256][0][1] < data[256][0][2] or data[256][0][1] > 0
    assert data[256][-1][1] > data[256][-1][2]

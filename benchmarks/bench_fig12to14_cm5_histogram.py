"""Figures 12-14: CM-5 histogramming, p = 16 / 32 / 64.

Each figure sweeps image sizes 128..1024 and grey-level counts; the
paper's panels show per-size curves over k.  Shapes to reproduce: time
grows ~4x per image-size doubling (computation dominated), is nearly
flat in k for small k (the k-dependent transpose/collect terms are tiny
next to the n^2/p tally), and halves when p doubles.
"""

import pytest

from benchmarks.conftest import emit, fmt_seconds
from repro.core.histogram import parallel_histogram
from repro.images import random_greyscale
from repro.machines import CM5

NS = (128, 256, 512, 1024)
KS = (2, 8, 32, 128, 256)
FIGS = [("fig12_cm5_p16", 16), ("fig13_cm5_p32", 32), ("fig14_cm5_p64", 64)]


def _sweep(p):
    grid = {}
    for n in NS:
        row = []
        for k in KS:
            img = random_greyscale(n, k, seed=n * 7 + k)
            row.append(parallel_histogram(img, k, p, CM5).elapsed_s)
        grid[n] = row
    return grid


@pytest.mark.parametrize("name,p", FIGS, ids=[f[0] for f in FIGS])
def test_cm5_histogram_panels(benchmark, name, p):
    grid = benchmark.pedantic(_sweep, args=(p,), rounds=1, iterations=1)
    lines = [f"{name}: CM-5 histogramming (p={p}) -- simulated time"]
    lines.append("n      " + "".join(f"  k={k:<7}" for k in KS))
    for n in NS:
        lines.append(f"{n:<6}" + "".join(f" {fmt_seconds(t)}" for t in grid[n]))
    emit(name, "\n".join(lines))

    # ~4x per image-size doubling at fixed k (compute-bound regime).
    for ki in range(len(KS)):
        ratio = grid[1024][ki] / grid[512][ki]
        assert 3.0 < ratio < 4.6, (KS[ki], ratio)
    # k has little effect at large n (tally dominates).
    assert grid[1024][-1] / grid[1024][0] < 1.3


def test_p_scaling_across_panels(benchmark):
    def run():
        img = random_greyscale(1024, 256, seed=3)
        return {
            p: parallel_histogram(img, 256, p, CM5).elapsed_s
            for _, p in FIGS
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 1.7 < times[16] / times[32] < 2.3
    assert 1.7 < times[32] / times[64] < 2.3

"""Structured benchmark artifacts: JSON trajectories next to the text tables.

The ``.txt`` files under ``benchmarks/results/`` reproduce the paper's
tables for human readers; this module adds a machine-readable record of
the same measurements so perf changes can be *proven* across PRs
(diffable series, trend lines, CI assertions).  Every artifact carries
the versioned schema tag ``repro-bench/v1`` and the host fingerprint
needed to interpret wall-clock numbers.

Two payload shapes:

* ``series`` -- sweep benchmarks (a list of labeled ``x``/``y``
  vectors, e.g. time vs. image side per processor count);
* ``rows`` -- flat measurement tables (a list of dicts, one per
  configuration).

Usage from a benchmark::

    from benchmarks.emit import emit_json
    emit_json("fig03_histogram_scalability",
              params={"k": 256, "machine": "cm5"},
              series=[{"label": "p=16", "x": ns, "y": times}])
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCHEMA = "repro-bench/v1"

#: Keys every artifact must carry (pinned by tests/test_bench_emit.py).
REQUIRED_KEYS = ("schema", "name", "units", "host", "params")


def host_fingerprint() -> dict:
    """Where the numbers came from (wall-clock context)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def emit_json(
    name: str,
    *,
    params: dict | None = None,
    series: list[dict] | None = None,
    rows: list[dict] | None = None,
    units: str = "seconds",
    notes: str = "",
) -> pathlib.Path:
    """Write ``benchmarks/results/<name>.json`` and return its path.

    Exactly one of ``series`` / ``rows`` may be omitted; passing
    neither is an error (an empty artifact records nothing).
    """
    if series is None and rows is None:
        raise ValueError("emit_json needs 'series' or 'rows'")
    payload: dict = {
        "schema": SCHEMA,
        "name": name,
        "units": units,
        "host": host_fingerprint(),
        "params": params or {},
    }
    if series is not None:
        payload["series"] = series
    if rows is not None:
        payload["rows"] = rows
    if notes:
        payload["notes"] = notes
    validate_bench_json(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"\n[{name}] -> {path}")
    return path


def validate_bench_json(obj) -> None:
    """Raise ``ValueError`` unless ``obj`` is a valid v1 bench artifact."""
    if not isinstance(obj, dict):
        raise ValueError("bench artifact must be a JSON object")
    for key in REQUIRED_KEYS:
        if key not in obj:
            raise ValueError(f"bench artifact lacks required key {key!r}")
    if obj["schema"] != SCHEMA:
        raise ValueError(f"unknown schema {obj['schema']!r} (expected {SCHEMA!r})")
    if "series" not in obj and "rows" not in obj:
        raise ValueError("bench artifact needs 'series' or 'rows'")
    for s in obj.get("series", []):
        for key in ("label", "x", "y"):
            if key not in s:
                raise ValueError(f"series entry lacks {key!r}")
        if len(s["x"]) != len(s["y"]):
            raise ValueError(f"series {s['label']!r}: x and y lengths differ")
    rows = obj.get("rows", [])
    if not isinstance(rows, list) or any(not isinstance(r, dict) for r in rows):
        raise ValueError("'rows' must be a list of objects")
    json.dumps(obj, allow_nan=False)  # strict-JSON check (TypeError/ValueError)

"""Figure 10: connected components of the 512x512 DARPA benchmark image.

The paper plots grey-scale CC times for the DARPA Image Understanding
Benchmark image on the CM-5 (p = 16..128), the SP-1 and the CS-2.  We
run the DARPA-like synthetic stand-in (256 grey levels) on the same
machine models and processor range.

Shapes to reproduce: times in the hundreds of milliseconds at p=32
(the paper's CM-5/32 row is 368 ms), decreasing with p but with
diminishing returns as border/merge costs grow relative to the
shrinking tiles.
"""

from benchmarks.conftest import emit, fmt_seconds
from repro.core.connected_components import parallel_components
from repro.images import darpa_like
from repro.machines import CM5, CS2, SP1

PS = (16, 32, 64, 128)


def _sweep():
    img = darpa_like(512, 256)
    table = {}
    for params in (CM5, SP1, CS2):
        table[params.name] = [
            parallel_components(img, p, params, grey=True).elapsed_s for p in PS
        ]
    return table


def test_fig10_darpa(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Figure 10: grey CC of 512x512 DARPA-like image -- simulated"]
    lines.append("machine        " + "".join(f"   p={p:<6}" for p in PS))
    for name, times in table.items():
        lines.append(f"{name:<14}" + "".join(f" {fmt_seconds(t)}" for t in times))
    emit("fig10_darpa", "\n".join(lines))

    cm5 = table["TMC CM-5"]
    # Paper's CM-5/32 DARPA point: 368 ms; ours within ~2.5x.
    assert 368e-3 / 2.5 < cm5[PS.index(32)] < 368e-3 * 2.5
    # Monotone improvement with p over this range.
    assert cm5[0] > cm5[1] > cm5[2]
    # Diminishing returns: the 64->128 step gains less than 16->32.
    gain_early = cm5[0] / cm5[1]
    gain_late = cm5[2] / cm5[3]
    assert gain_late < gain_early

"""Ablations of the connected-components design choices (Section 5).

1. **Limited updating** (the paper's key idea): relabel only tile
   border pixels during merges + one final hook pass, vs the naive
   scheme that relabels every pixel in every iteration.  The win grows
   with the merge change-list sizes, so we measure both a moderate
   workload (the DARPA-like scene) and a change-heavy one (thin
   diagonal bars, which cross every border in every one of the log p
   iterations).
2. **Shadow manager**: the across-the-border processor fetches and
   sorts half the border concurrently with the manager, vs the manager
   doing both sides itself.
3. **Change-list distribution**: transpose-based two-round exchange
   (eq. 9/10) vs every client pulling the whole list from its manager
   (eq. 8), which serializes at the manager's port.
"""

import numpy as np

from benchmarks.conftest import emit, fmt_seconds
from repro.core.connected_components import parallel_components
from repro.images import darpa_like, forward_diagonal_bars
from repro.machines import CM5

N = 512
P = 64


def _run_variants():
    out = {}
    darpa = darpa_like(N, 256)
    bars = forward_diagonal_bars(N, 2)

    base_d = parallel_components(darpa, P, CM5, grey=True)
    out["darpa: paper algorithm"] = base_d
    out["darpa: naive full relabel"] = parallel_components(
        darpa, P, CM5, grey=True, limited_updating=False
    )
    out["darpa: no shadow manager"] = parallel_components(
        darpa, P, CM5, grey=True, shadow_manager=False
    )

    base_b = parallel_components(bars, P, CM5)
    out["bars: paper algorithm"] = base_b
    out["bars: naive full relabel"] = parallel_components(
        bars, P, CM5, limited_updating=False
    )
    out["bars: no shadow manager"] = parallel_components(
        bars, P, CM5, shadow_manager=False
    )
    out["bars: transpose distribution"] = parallel_components(
        bars, P, CM5, distribution="transpose"
    )

    # Every variant computes the same labels.
    for name, res in out.items():
        ref = base_d if name.startswith("darpa") else base_b
        assert np.array_equal(res.labels, ref.labels), name
    return {name: res.elapsed_s for name, res in out.items()}


def test_ablation_updating(benchmark):
    times = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    lines = [f"Ablation: CC design choices at {N}x{N}, CM-5 p={P} -- simulated"]
    for name, t in times.items():
        lines.append(f"  {name:<32} {fmt_seconds(t)}")
    lines.append(
        "  limited-updating speedup:  darpa %.2fx,  bars %.2fx"
        % (
            times["darpa: naive full relabel"] / times["darpa: paper algorithm"],
            times["bars: naive full relabel"] / times["bars: paper algorithm"],
        )
    )
    lines.append(
        "  transpose-distribution speedup (bars): %.2fx"
        % (times["bars: paper algorithm"] / times["bars: transpose distribution"])
    )
    lines.append(
        "  note: with near-empty change lists the naive scheme can tie or"
        " win slightly (it skips the hook bookkeeping); the paper's"
        " design pays off exactly when merges carry real change volume."
    )
    emit("ablation_updating", "\n".join(lines))

    # Change-heavy workload: limited updating must win clearly.
    assert times["bars: naive full relabel"] > times["bars: paper algorithm"] * 1.3
    # Moderate workload: still a win.
    assert times["darpa: naive full relabel"] > times["darpa: paper algorithm"] * 1.1
    # Shadow manager: removing it never helps.
    assert times["darpa: no shadow manager"] >= times["darpa: paper algorithm"] * 0.98
    assert times["bars: no shadow manager"] >= times["bars: paper algorithm"] * 0.98
    # Transpose distribution wins when change lists are heavy.
    assert times["bars: transpose distribution"] < times["bars: paper algorithm"]

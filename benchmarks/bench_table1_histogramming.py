"""Table 1: parallel histogramming comparison, work per pixel.

Regenerates the paper's Table 1 with our simulated rows appended: the
512x512, 256-grey-level histogram on each machine model at the paper's
processor counts (CM-5/SP-1/SP-2 p=16, Paragon p=8, CS-2 p=4).

Paper values for the appended rows: 12.0 ms / 9.20 ms / 20.0 ms /
20.8 ms / 15.2 ms (work per pixel 732 ns / 562 ns / 1.22 us / 635 ns /
231 ns).  The shape to reproduce: our rows beat every fine-grained
historical machine by 1-3 orders of magnitude of work per pixel.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import TABLE1_HISTOGRAMMING, TableEntry, format_table, work_per_pixel_s
from repro.core.histogram import parallel_histogram
from repro.images import darpa_like
from repro.machines import CM5, CS2, PARAGON, SP1, SP2

CONFIGS = [
    (CM5, 16),
    (SP1, 16),
    (SP2, 16),
    (PARAGON, 8),
    (CS2, 4),
]


def _simulate_rows(image: np.ndarray) -> list[TableEntry]:
    rows = []
    n = image.shape[0]
    for params, p in CONFIGS:
        res = parallel_histogram(image, 256, p, params)
        rows.append(
            TableEntry(
                year=2026,
                researchers="this reproduction (simulated)",
                machine=params.name,
                processors=p,
                image_size=n,
                time_s=res.elapsed_s,
                work_per_pixel_s=work_per_pixel_s(res.elapsed_s, p, n),
            )
        )
    return rows


def test_table1(benchmark):
    image = darpa_like(512, 256)
    rows = benchmark(_simulate_rows, image)
    emit(
        "table1_histogramming",
        format_table(
            TABLE1_HISTOGRAMMING,
            title="Table 1: Parallel Histogramming Implementations (512x512, k=256; * = this reproduction)",
            extra=rows,
        ),
    )
    # Shape assertions: reproduced rows within 2x of the paper's, and
    # all beating the historical fine-grained machines.
    paper = {e.machine: e for e in TABLE1_HISTOGRAMMING if e.ours}
    worst_prior = min(
        e.work_per_pixel_s for e in TABLE1_HISTOGRAMMING if not e.ours
    )
    for row in rows:
        ref = paper[row.machine]
        assert ref.time_s / 2.5 < row.time_s < ref.time_s * 2.5, row
        assert row.work_per_pixel_s < worst_prior

"""Figures 18-21: IBM SP-1 and SP-2 panels.

Figure 18: SP-1 histogramming (p=16), images 128..1024.
Figure 19: SP-1 binary CC (p=16), test images at 512 and 1024.
Figure 20: SP-2 histogramming (p=16), images 128..1024.
Figure 21: SP-2 binary CC (p=32), test images at 128..1024.

Shapes: same quadratic-in-n / halving-in-p behaviour as the CM-5
panels, with the SP machines' latency making small images relatively
more expensive (latency-bound regime) and the paper's Table 2 anchor
points (SP-2/32 mean 284 ms at 512^2) within a small factor.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, fmt_seconds
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import SP1, SP2

HIST_NS = (128, 256, 512, 1024)


@pytest.mark.parametrize(
    "name,params,p",
    [("fig18_sp1_histogram", SP1, 16), ("fig20_sp2_histogram", SP2, 16)],
    ids=["fig18_sp1", "fig20_sp2"],
)
def test_sp_histogram_panels(benchmark, name, params, p):
    def run():
        return [
            parallel_histogram(random_greyscale(n, 256, seed=n), 256, p, params).elapsed_s
            for n in HIST_NS
        ]

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{name}: {params.name} histogramming k=256 (p={p}) -- simulated"]
    for n, t in zip(HIST_NS, times):
        lines.append(f"  {n:>5}  {fmt_seconds(t)}")
    emit(name, "\n".join(lines))
    assert 3.0 < times[-1] / times[-2] < 4.6  # quadratic tail


@pytest.mark.parametrize(
    "name,params,p,ns",
    [
        ("fig19_sp1_components", SP1, 16, (512, 1024)),
        ("fig21_sp2_components", SP2, 32, (128, 256, 512, 1024)),
    ],
    ids=["fig19_sp1", "fig21_sp2"],
)
def test_sp_components_panels(benchmark, name, params, p, ns):
    def run():
        return {
            n: [
                parallel_components(binary_test_image(i, n), p, params).elapsed_s
                for i in range(1, 10)
            ]
            for n in ns
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{name}: {params.name} binary CC (p={p}) -- simulated"]
    for n in ns:
        lines.append(
            f"  {n:>5}  mean {fmt_seconds(float(np.mean(data[n])))}  "
            f"min {fmt_seconds(min(data[n]))}  max {fmt_seconds(max(data[n]))}"
        )
    emit(name, "\n".join(lines))

    means = [float(np.mean(data[n])) for n in ns]
    assert all(b > a for a, b in zip(means, means[1:]))
    if name.startswith("fig21"):
        # Paper anchor: SP-2/32 mean-of-test-images 512^2 = 284 ms.
        mean512 = float(np.mean(data[512]))
        assert 284e-3 / 2.5 < mean512 < 284e-3 * 2.5

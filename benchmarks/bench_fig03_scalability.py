"""Figure 3: histogramming and connected components scalability on the CM-5.

Left panel: histogramming time vs n^2 for p = 16, 32, 64, 128 (k=256,
images 32x32 .. 2048x2048) -- straight lines through the origin for
large n, halving when p doubles.
Right panel: binary CC time for n = 128 .. 1024 at the same processor
counts.

Shape to reproduce: (a) time is linear in n^2 for fixed p (log-log
slope -> 2 in n), (b) doubling p approximately halves the time at
large n.
"""

import numpy as np

from benchmarks.conftest import emit, fmt_seconds
from benchmarks.emit import emit_json
from repro.analysis.complexity import scalability_exponent
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5

PS = (16, 32, 64, 128)
HIST_NS = (32, 64, 128, 256, 512, 1024, 2048, 4096)  # the paper's full sweep
CC_NS = (128, 256, 512, 1024)


def _hist_series():
    series = {}
    for p in PS:
        times = []
        for n in HIST_NS:
            img = random_greyscale(n, 256, seed=n)
            times.append(parallel_histogram(img, 256, p, CM5).elapsed_s)
        series[p] = times
    return series


def _cc_series():
    series = {}
    for p in PS:
        times = []
        for n in CC_NS:
            img = binary_test_image(9, n)  # the difficult dual spiral
            times.append(parallel_components(img, p, CM5).elapsed_s)
        series[p] = times
    return series


def test_fig03_histogram_scalability(benchmark):
    series = benchmark.pedantic(_hist_series, rounds=1, iterations=1)
    lines = ["Figure 3 (left): CM-5 histogramming, k=256 -- simulated time"]
    lines.append("n        " + "".join(f"   p={p:<6}" for p in PS))
    for i, n in enumerate(HIST_NS):
        row = f"{n:<6}" + "".join(f" {fmt_seconds(series[p][i])}" for p in PS)
        lines.append(row)
    emit("fig03_histogram_scalability", "\n".join(lines))
    emit_json(
        "fig03_histogram_scalability",
        params={"machine": "cm5", "k": 256, "clock": "sim", "x": "n"},
        series=[
            {"label": f"p={p}", "x": list(HIST_NS), "y": series[p]} for p in PS
        ],
    )

    # Quadratic growth in n for fixed p (slope of log t vs log n -> 2).
    for p in PS:
        ns = np.array(HIST_NS[-3:], dtype=float)
        ts = np.array(series[p][-3:])
        slope = scalability_exponent(ns, ts)
        assert 1.7 < slope < 2.2, (p, slope)
    # Doubling p halves the time at the largest size.
    for p1, p2 in zip(PS, PS[1:]):
        ratio = series[p1][-1] / series[p2][-1]
        assert 1.6 < ratio < 2.4, (p1, p2, ratio)


def test_fig03_components_scalability(benchmark):
    series = benchmark.pedantic(_cc_series, rounds=1, iterations=1)
    lines = ["Figure 3 (right): CM-5 binary connected components -- simulated time"]
    lines.append("n        " + "".join(f"   p={p:<6}" for p in PS))
    for i, n in enumerate(CC_NS):
        row = f"{n:<6}" + "".join(f" {fmt_seconds(series[p][i])}" for p in PS)
        lines.append(row)
    emit("fig03_components_scalability", "\n".join(lines))
    emit_json(
        "fig03_components_scalability",
        params={"machine": "cm5", "pattern": 9, "clock": "sim", "x": "n"},
        series=[{"label": f"p={p}", "x": list(CC_NS), "y": series[p]} for p in PS],
    )

    for p in PS:
        slope = scalability_exponent(np.array(CC_NS[-3:], float), np.array(series[p][-3:]))
        assert 1.5 < slope < 2.3, (p, slope)
    # p-scalability at the largest image.
    for p1, p2 in zip(PS, PS[1:]):
        ratio = series[p1][-1] / series[p2][-1]
        assert 1.3 < ratio < 2.5, (p1, p2, ratio)

"""Ablation: split-phase communication/computation overlap.

Split-C's ``:=`` prefetch lets "computation be overlapped with the
remote request" (Section 2); the BDM analysis conservatively sums the
two components.  This bench quantifies the gap between the two
accountings for both algorithms: the benefit per phase is bounded by
``min(comm, comp)``, so it is largest where communication and
computation are balanced (small tiles, latency-bound regimes) and
vanishes where computation dominates.
"""

from benchmarks.conftest import emit, fmt_seconds
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, CS2


def _sweep():
    rows = []
    for params in (CM5, CS2):
        big = random_greyscale(512, 256, seed=1)
        small = random_greyscale(64, 256, seed=1)
        for label, img in (("512^2", big), ("64^2 (latency-bound)", small)):
            summed = parallel_histogram(img, 256, 64, params).elapsed_s
            lapped = parallel_histogram(img, 256, 64, params, overlap=True).elapsed_s
            rows.append((f"histogram {label} p=64 {params.name}", summed, lapped))
        spiral = binary_test_image(9, 512)
        summed = parallel_components(spiral, 64, params).elapsed_s
        lapped = parallel_components(spiral, 64, params, overlap=True).elapsed_s
        rows.append((f"components 512^2 spiral p=64 {params.name}", summed, lapped))
    return rows


def test_ablation_overlap(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Ablation: no-overlap (paper accounting) vs perfect split-phase overlap"]
    lines.append(f"{'workload':<48} {'summed':>11} {'overlap':>11} {'saving':>8}")
    for name, summed, overlapped in rows:
        saving = 1.0 - overlapped / summed
        lines.append(
            f"{name:<48} {fmt_seconds(summed):>11} {fmt_seconds(overlapped):>11} "
            f"{saving * 100:>7.1f}%"
        )
    emit("ablation_overlap", "\n".join(lines))

    for name, summed, overlapped in rows:
        assert 0 < overlapped <= summed * (1 + 1e-12), name
        # Overlap can save at most half of any phase.
        assert overlapped >= summed * 0.5 * (1 - 1e-12), name
    # The latency-bound small image must benefit more than the big one.
    small_saving = 1.0 - rows[1][2] / rows[1][1]
    big_saving = 1.0 - rows[0][2] / rows[0][1]
    assert small_saving >= big_saving

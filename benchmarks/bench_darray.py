"""DistributedArray transports: throughput, residency, border traffic.

Measures connected-components wall time through the ``local`` and
``mmap`` transports at large image sizes, recording the out-of-core
working set (resident-tile highwater, spill transfers) and the border
traffic against its O(n) bound -- the measured evidence that the
paper's border-only communication structure is what makes the
out-of-core placement practical.

Run as a script (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_darray.py           # full
    PYTHONPATH=src python benchmarks/bench_darray.py --smoke   # tiny, fast
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(_ROOT), str(_ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from benchmarks.emit import emit_json, validate_bench_json  # noqa: E402
from repro.darray import darray_components  # noqa: E402
from repro.images import binary_test_image  # noqa: E402
from repro.images.io import write_pgm  # noqa: E402

FULL_SIZES = (2048, 4096)
SMOKE_SIZES = (256, 512)
PATTERN = 4
P = 16  # 4x4 grid; resident budget 1 -> 16x image/working-set ratio
BUDGET = 1


def _run(source, transport: str, **opts):
    t0 = time.perf_counter()
    res = darray_components(source, p=P, transport=transport, **opts)
    wall = time.perf_counter() - t0
    return wall, res


def _sweep(sizes, repeats: int):
    rows = []
    local_y, mmap_y = [], []
    with tempfile.TemporaryDirectory(prefix="bench-darray-") as tmp:
        for n in sizes:
            img = binary_test_image(PATTERN, n)
            path = f"{tmp}/img-{n}.pgm"
            write_pgm(path, img)
            walls = {"local": [], "mmap": []}
            stats = {}
            for _ in range(repeats):
                w, res = _run(img, "local")
                walls["local"].append(w)
                stats["local"] = res.stats
                w, res = _run(path, "mmap", resident_tiles=BUDGET)
                walls["mmap"].append(w)
                stats["mmap"] = res.stats
            pixels = n * n
            for transport in ("local", "mmap"):
                wall = min(walls[transport])
                st = stats[transport]
                rows.append(
                    {
                        "transport": transport,
                        "n": n,
                        "wall_s": wall,
                        "mpixels_per_s": pixels / wall / 1e6,
                        "border_bytes": st.border_bytes,
                        # 16 bytes per border pixel (labels + colors,
                        # int64), each perimeter counted once per merge
                        # round it participates in: O(n log p), never
                        # O(n^2).
                        "border_bound_bytes": 16 * 4 * n * 4,
                        "change_bytes": st.change_bytes,
                        "spill_reads": st.spill_reads,
                        "spill_writes": st.spill_writes,
                        "resident_highwater": st.resident_highwater,
                        "resident_budget": BUDGET if transport == "mmap" else None,
                    }
                )
            local_y.append(min(walls["local"]))
            mmap_y.append(min(walls["mmap"]))
    series = [
        {"label": "local", "x": list(sizes), "y": local_y},
        {"label": f"mmap (budget {BUDGET})", "x": list(sizes), "y": mmap_y},
    ]
    return series, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, single repeat, separate artifact (CI sanity check)",
    )
    opts = parser.parse_args(argv)

    sizes = SMOKE_SIZES if opts.smoke else FULL_SIZES
    repeats = 1 if opts.smoke else 2
    series, rows = _sweep(sizes, repeats)

    name = "darray_smoke" if opts.smoke else "darray"
    path = emit_json(
        name,
        params={
            "pattern": PATTERN,
            "p": P,
            "resident_tiles": BUDGET,
            "sizes": list(sizes),
            "repeats": repeats,
            "clock": "wall",
        },
        series=series,
        rows=rows,
        notes="mmap labels tiles through a 1-tile working set (16x "
        "smaller than the image); border_bytes must stay under "
        "border_bound_bytes, the O(n log p) bound",
    )
    validate_bench_json(json.loads(path.read_text()))

    for row in rows:
        budget = row["resident_budget"]
        print(
            f"  {row['transport']:<6} n={row['n']:<5d} "
            f"{row['wall_s'] * 1e3:9.1f} ms  "
            f"{row['mpixels_per_s']:7.2f} Mpx/s  "
            f"border {row['border_bytes'] / 1024:9.1f} KiB "
            f"(bound {row['border_bound_bytes'] / 1024:9.1f} KiB)  "
            f"highwater {row['resident_highwater']}"
            + (f"/{budget}" if budget else "")
        )
        assert row["border_bytes"] <= row["border_bound_bytes"], row
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Application benchmark: why cluster labeling matters for physics.

The paper's introduction motivates fast connected components with
cluster Monte Carlo for Ising models.  The quantitative payoff is
*critical slowing down*: at the critical temperature, local Metropolis
dynamics decorrelate in ``tau_int ~ L^z`` sweeps (z ~ 2.17), while the
Swendsen-Wang update -- one connected-component labeling per sweep --
keeps ``tau_int`` of order one.  This bench measures the integrated
autocorrelation time of |m| at T_c for both dynamics across lattice
sizes.

Shape to reproduce: Metropolis' tau grows steeply with L; SW's stays
flat; the ratio widens with L.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.physics.ising import IsingModel, T_CRITICAL
from repro.physics.stats import effective_samples, integrated_autocorrelation_time

SIZES = (12, 24, 48)
SWEEPS = {"sw": 400, "metropolis": 1200}


def _tau(n: int, method: str) -> float:
    model = IsingModel(n, T_CRITICAL, seed=1000 + n, periodic=True)
    sweeps = SWEEPS[method]
    mags = []
    for s in range(sweeps):
        if method == "sw":
            model.sweep_swendsen_wang()
        else:
            model.sweep_metropolis()
        if s >= sweeps // 5:
            mags.append(model.magnetization())
    return integrated_autocorrelation_time(np.array(mags))


def _sweep():
    return {
        (n, method): _tau(n, method)
        for n in SIZES
        for method in ("sw", "metropolis")
    }


def test_critical_slowing_down(benchmark):
    taus = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Integrated autocorrelation time of |m| at T_c (periodic lattice)",
        f"{'L':>5} {'tau SW':>9} {'tau Metropolis':>15} {'ratio':>7}",
    ]
    for n in SIZES:
        sw = taus[(n, "sw")]
        met = taus[(n, "metropolis")]
        lines.append(f"{n:>5} {sw:>9.2f} {met:>15.2f} {met / sw:>6.1f}x")
    lines.append(
        "SW pays one connected-component labeling per sweep and buys an "
        "autocorrelation time that stays O(1); Metropolis' grows ~ L^2.17."
    )
    emit("physics_autocorrelation", "\n".join(lines))

    # The cluster algorithm wins at every size and the gap widens.
    for n in SIZES:
        assert taus[(n, "sw")] < taus[(n, "metropolis")], n
    ratios = [taus[(n, "metropolis")] / taus[(n, "sw")] for n in SIZES]
    assert ratios[-1] > ratios[0]
    # SW stays O(1) across the size sweep.
    assert taus[(SIZES[-1], "sw")] < 8.0


def test_effective_samples_monotonicity(benchmark):
    """More correlated series => fewer effective samples."""
    rng = np.random.default_rng(3)
    white = rng.random(1000)
    # Strongly correlated series: a slow random walk, bounded.
    walk = np.cumsum(rng.standard_normal(1000)) * 0.01
    result = benchmark.pedantic(
        lambda: (effective_samples(white), effective_samples(walk)),
        rounds=1,
        iterations=1,
    )
    assert result[0] > result[1] * 5

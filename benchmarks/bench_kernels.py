"""Kernel backends: python reference vs vectorized numpy, wall-clock.

Times the registered :mod:`repro.kernels` implementations of the two
hot local steps -- ``tile_label`` (per-tile connected components) and
``histogram`` (local tally) -- on a pattern image and the DARPA-like
grey scene at several sizes, and writes a ``repro-bench/v1`` artifact
to ``benchmarks/results/kernels.json``.  Both backends are asserted
bit-identical on every input before timing, so the artifact never
records a speedup of a wrong answer.

Run as a script (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke  # tiny, fast
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(_ROOT), str(_ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np  # noqa: E402

from benchmarks.emit import emit_json, validate_bench_json  # noqa: E402
from repro.images import binary_test_image, darpa_like  # noqa: E402
from repro.kernels import BACKENDS, get as get_kernel  # noqa: E402

PATTERN = 4  # the paper's checkerboard-of-crosses: many small components
K = 256

FULL_SIZES = (64, 128, 256, 512)
SMOKE_SIZES = (32, 64)


def _wall(fn, *args, repeats: int = 3, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep(sizes: tuple[int, ...], repeats: int) -> tuple[list[dict], list[dict]]:
    times: dict[str, list[float]] = {
        f"{kern} {backend}": [] for kern in ("tile_label", "histogram") for backend in BACKENDS
    }
    rows: list[dict] = []
    for n in sizes:
        binary = binary_test_image(PATTERN, n)
        grey = darpa_like(n, K)
        per_kernel: dict[str, dict[str, float]] = {}
        for kern, args, kwargs in (
            ("tile_label", (binary,), {"connectivity": 8}),
            ("histogram", (grey, K), {}),
        ):
            outputs = {b: get_kernel(kern, backend=b)(*args, **kwargs) for b in BACKENDS}
            reference = outputs["python"]
            for backend, out in outputs.items():
                assert np.array_equal(out, reference), (kern, backend, n)
            per_kernel[kern] = {
                b: _wall(get_kernel(kern, backend=b), *args, repeats=repeats, **kwargs)
                for b in BACKENDS
            }
            for backend, t in per_kernel[kern].items():
                times[f"{kern} {backend}"].append(t)
            rows.append(
                {
                    "kernel": kern,
                    "n": n,
                    **{f"{b}_s": per_kernel[kern][b] for b in BACKENDS},
                    "speedup": per_kernel[kern]["python"] / per_kernel[kern]["numpy"],
                }
            )
    series = [
        {"label": label, "x": list(sizes), "y": ys} for label, ys in times.items()
    ]
    return series, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, single repeat, separate artifact (CI sanity check)",
    )
    opts = parser.parse_args(argv)

    sizes = SMOKE_SIZES if opts.smoke else FULL_SIZES
    repeats = 1 if opts.smoke else 3
    series, rows = _sweep(sizes, repeats)

    name = "kernels_smoke" if opts.smoke else "kernels"
    path = emit_json(
        name,
        params={
            "pattern": PATTERN,
            "k": K,
            "sizes": list(sizes),
            "repeats": repeats,
            "clock": "wall",
        },
        series=series,
        rows=rows,
        notes="speedup = python_s / numpy_s; backends asserted bit-identical first",
    )
    validate_bench_json(json.loads(path.read_text()))

    for row in rows:
        print(
            f"  {row['kernel']:<11} n={row['n']:<4d} "
            f"python {row['python_s'] * 1e3:9.2f} ms   "
            f"numpy {row['numpy_s'] * 1e3:8.2f} ms   "
            f"speedup {row['speedup']:6.1f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: the hybrid sort crossover (paper footnote 3).

"The actual coding uses the standard UNIX quicker-sort function for
smaller sorts, and radix sort for larger sorts, using whichever sorting
method is fastest for the given input size."  This bench measures both
sorters (real wall time, not simulated) across input sizes and reports
the crossover, validating the DEFAULT_CUTOFF choice.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.sorting import DEFAULT_CUTOFF, radix_argsort
from repro.sorting.hybrid import hybrid_argsort

SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144)


def _time_one(fn, keys, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(keys)
        best = min(best, time.perf_counter() - t0)
    return best


def _comparison_argsort(keys):
    return np.argsort(keys, kind="stable")


def _sweep():
    rng = np.random.default_rng(0)
    rows = []
    for size in SIZES:
        keys = rng.integers(0, 2**32, size)
        rows.append(
            (
                size,
                _time_one(_comparison_argsort, keys),
                _time_one(radix_argsort, keys),
            )
        )
    return rows


def test_hybrid_sort_crossover(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Ablation: comparison sort vs 4-pass radix sort (wall time)"]
    lines.append(f"{'n':>8} {'comparison':>12} {'radix':>12} {'winner':>12}")
    for size, t_cmp, t_radix in rows:
        winner = "comparison" if t_cmp < t_radix else "radix"
        lines.append(f"{size:>8} {t_cmp * 1e6:>10.1f}us {t_radix * 1e6:>10.1f}us {winner:>12}")
    lines.append(f"DEFAULT_CUTOFF = {DEFAULT_CUTOFF}")
    emit("ablation_hybrid_sort", "\n".join(lines))

    # Comparison sort must win at the small end, and radix must be
    # competitive (within 2x) at the large end -- the premise of the
    # hybrid design.
    assert rows[0][1] < rows[0][2]
    big = rows[-1]
    assert big[2] < big[1] * 2.0


@pytest.mark.parametrize("size", [100, DEFAULT_CUTOFF * 4])
def test_hybrid_dispatch_correct(benchmark, size):
    rng = np.random.default_rng(size)
    keys = rng.integers(0, 2**31, size)
    order = benchmark(hybrid_argsort, keys)
    assert np.array_equal(keys[order], np.sort(keys))

"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures: the
wall-clock of the regeneration is measured by pytest-benchmark, and the
reproduced rows/series (simulated times on the paper's machine models)
are written to ``benchmarks/results/<name>.txt`` and echoed to the
terminal, so a plain

    pytest benchmarks/ --benchmark-only

leaves the full reproduction record behind.  EXPERIMENTS.md summarizes
paper-vs-measured for each artifact.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Write a reproduction artifact and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}")
    print(text)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f} s "
    if s >= 1e-3:
        return f"{s * 1e3:8.2f} ms"
    return f"{s * 1e6:8.1f} us"

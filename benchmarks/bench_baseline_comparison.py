"""Paper algorithm vs the stripe divide-&-conquer baseline.

Table 2 compares the paper against Choudhary & Thakur's multi-
dimensional divide-and-conquer implementations (398-456 ms vs 368 ms on
the CM-5/32 DARPA image).  Having rebuilt that baseline strategy on the
same simulated machine (:mod:`repro.baselines.stripe_dc`), we can run
the comparison computationally: same image, same machine model, same
sequential engine -- only the parallel strategy differs.

Shape to reproduce: the paper's algorithm wins, with the margin growing
with p (stripe borders are O(n) vs O(n/sqrt(p)) per tile, and stripes
pay a full relabel per merge round).
"""

import numpy as np

from benchmarks.conftest import emit, fmt_seconds
from repro.baselines.stripe_dc import stripe_components
from repro.core.connected_components import parallel_components
from repro.images import darpa_like, forward_diagonal_bars
from repro.machines import CM5

PS = (4, 16, 64)
N = 512


def _compare():
    rows = []
    darpa = darpa_like(N, 256)
    bars = forward_diagonal_bars(N, 2)
    for name, img, grey in (("darpa-like", darpa, True), ("diag bars", bars, False)):
        for p in PS:
            a = parallel_components(img, p, CM5, grey=grey)
            b = stripe_components(img, p, CM5, grey=grey)
            assert np.array_equal(a.labels, b.labels)
            rows.append((name, p, a.elapsed_s, b.elapsed_s))
    return rows


def test_baseline_comparison(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = [f"Paper algorithm vs stripe D&C baseline, {N}x{N}, CM-5 -- simulated"]
    lines.append(f"{'image':<12} {'p':>4} {'paper':>11} {'stripe D&C':>11} {'speedup':>8}")
    for name, p, t_paper, t_stripe in rows:
        lines.append(
            f"{name:<12} {p:>4} {fmt_seconds(t_paper):>11} {fmt_seconds(t_stripe):>11} "
            f"{t_stripe / t_paper:>7.2f}x"
        )
    emit("baseline_comparison", "\n".join(lines))

    by_img = {}
    for name, p, t_paper, t_stripe in rows:
        by_img.setdefault(name, []).append(t_stripe / t_paper)
        # The paper's algorithm wins at every configuration with p > 4
        # and never loses badly.
        if p >= 16:
            assert t_paper < t_stripe, (name, p)
        assert t_paper < t_stripe * 1.1, (name, p)
    # The margin grows with p for each image.
    for name, speedups in by_img.items():
        assert speedups[-1] > speedups[0], (name, speedups)

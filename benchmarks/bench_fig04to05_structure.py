"""Figures 4-5: the data layout / merge structure and tile hooks.

These two paper figures are schematic rather than experimental; we
regenerate them *from the implementation's actual data structures*:

* Figure 4 -- the 512x512 image on p=32 processors (4x8 logical grid,
  128x64 tiles), showing which borders the second (vertical) merge
  step joins and which processors manage them;
* Figure 5 -- the tile-hook structure of a small labeled tile: one
  hook per border-touching component.

The checks assert the exact quantities the paper's captions state.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.hooks import create_tile_hooks
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.baselines import run_label


def _figure4() -> str:
    grid = ProcessorGrid(32, 512)
    steps = merge_schedule(grid)
    lines = [
        "Figure 4: 512 x 512 image on p=32 processors",
        f"logical grid {grid.v} rows x {grid.w} cols, tiles {grid.q} x {grid.r} pixels",
        "",
    ]
    step2 = steps[1]  # t=2, the vertical merge the paper's figure shows
    managers = {g.manager for g in step2.groups}
    shadows = {g.shadow for g in step2.groups}
    lines.append(f"merge phase t=2 ({step2.orientation}): "
                 f"{len(step2.groups)} groups, managers circled")
    for I in range(grid.v):
        row = []
        for J in range(grid.w):
            pid = grid.pid_at(I, J)
            if pid in managers:
                row.append(f"({pid:2d})")
            elif pid in shadows:
                row.append(f"[{pid:2d}]")
            else:
                row.append(f" {pid:2d} ")
        lines.append("  " + " ".join(row))
    lines.append("  ( ) = group manager, [ ] = shadow manager")
    lines.append("")
    for t, step in enumerate(steps, start=1):
        borders = len(step.groups)
        span = len(step.groups[0].side_a_pids)
        lines.append(
            f"  t={t} {step.orientation}-merge: {borders} borders, "
            f"each spanning {span} processor(s), "
            f"{span * (grid.q if step.orientation == 'H' else grid.r)} pixels/side"
        )
    return "\n".join(lines)


def _figure5() -> str:
    # The paper's Figure 5 sketch: a small tile whose border components
    # get one hook each.
    tile = np.array(
        [
            [5, 5, 0, 2, 2],
            [5, 0, 0, 0, 2],
            [5, 0, 8, 0, 0],
            [5, 0, 8, 8, 0],
            [5, 5, 0, 8, 8],
        ],
        dtype=np.int32,
    )
    # Grey mode keeps the paper's three distinct regions (5, 2, 8).
    labels = run_label(tile, grey=True, label_stride=100)
    hooks = create_tile_hooks(labels)
    lines = ["Figure 5: tile hooks on a 5x5 example tile", "", "tile labels:"]
    for row in labels:
        lines.append("  " + " ".join(f"{v:3d}" for v in row))
    lines.append("")
    lines.append(f"{len(hooks)} hooks (one per border-touching component):")
    for label, offset in zip(hooks.labels, hooks.offsets):
        i, j = divmod(int(offset), labels.shape[1])
        lines.append(f"  hook: label {int(label):3d} -> border pixel ({i},{j})")
    return "\n".join(lines)


def test_fig04_merge_structure(benchmark):
    text = benchmark.pedantic(_figure4, rounds=1, iterations=1)
    emit("fig04_data_layout", text)
    grid = ProcessorGrid(32, 512)
    # The paper's caption facts: 4x8 grid, 128x64 tiles, t=2 is vertical.
    assert (grid.v, grid.w, grid.q, grid.r) == (4, 8, 128, 64)
    steps = merge_schedule(grid)
    assert steps[1].orientation == "V"
    assert len(steps) == 5  # log2(32)


def test_fig05_tile_hooks(benchmark):
    text = benchmark.pedantic(_figure5, rounds=1, iterations=1)
    emit("fig05_tile_hooks", text)
    # The example tile has exactly 3 border-touching components, like
    # the paper's 3-hook illustration.
    assert "3 hooks" in text

"""Figures 6-9: transpose and broadcast time + per-processor bandwidth.

One figure per machine: CM-5 (p=32), SP-2 (p=32), CS-2 (p=32), Paragon
(p=8).  For a sweep of payload sizes q we report the simulated
execution time of Algorithms 1 and 2 and the attained per-processor
bandwidth (payload bytes moved by one processor / elapsed time).

Shapes to reproduce (Sections 2.2/2.4):
* broadcast takes ~2x the transpose at every size;
* bandwidth saturates, for large q, near each machine's attained
  figure: CM-5 7.62 MB/s, SP-2 24.8 MB/s, CS-2 10.7 MB/s, Paragon
  88.6 MB/s per processor;
* the machine ranking Paragon > SP-2 > CS-2 > CM-5.
"""

import pytest

from benchmarks.conftest import emit, fmt_seconds
from repro.analysis import bandwidth_Bps
from repro.bdm import GlobalArray, Machine, broadcast, transpose
from repro.machines import CM5, CS2, PARAGON, SP2

QS = (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18)

FIGS = [
    ("fig06_cm5", CM5, 32),
    ("fig07_sp2", SP2, 32),
    ("fig08_cs2", CS2, 32),
    ("fig09_paragon", PARAGON, 8),
]


def _sweep(params, p):
    rows = []
    for q in QS:
        m = Machine(p, params)
        A = GlobalArray(m, q)
        transpose(m, A)
        t_tr = m.report().elapsed_s
        words = q - q // p  # remote words fetched by each processor

        m2 = Machine(p, params)
        A2 = GlobalArray(m2, q)
        broadcast(m2, A2)
        t_bc = m2.report().elapsed_s
        rows.append(
            {
                "q": q,
                "transpose_s": t_tr,
                "broadcast_s": t_bc,
                "bw_tr": bandwidth_Bps(words, t_tr),
                "bw_bc": bandwidth_Bps(2 * words, t_bc),
            }
        )
    return rows


@pytest.mark.parametrize("name,params,p", FIGS, ids=[f[0] for f in FIGS])
def test_transpose_broadcast_figures(benchmark, name, params, p):
    rows = benchmark.pedantic(_sweep, args=(params, p), rounds=1, iterations=1)
    lines = [
        f"{name}: {params.name} (p={p}) -- transpose / broadcast, simulated",
        f"{'q (words)':>10} {'transpose':>11} {'broadcast':>11} "
        f"{'BW tr MB/s':>11} {'BW bc MB/s':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['q']:>10} {fmt_seconds(r['transpose_s']):>11} "
            f"{fmt_seconds(r['broadcast_s']):>11} "
            f"{r['bw_tr'] / 1e6:>11.2f} {r['bw_bc'] / 1e6:>11.2f}"
        )
    lines.append(
        f"attained per-processor bandwidth target: {params.bandwidth_Bps / 1e6:.2f} MB/s"
        f" (vendor peak {params.peak_bandwidth_Bps / 1e6:.0f} MB/s)"
    )
    emit(name, "\n".join(lines))

    for r in rows:
        # Broadcast is two transposes: between 1.8x and 2.2x at all sizes.
        assert 1.8 < r["broadcast_s"] / r["transpose_s"] < 2.2
    # Large-q bandwidth approaches the attained figure (>= 90%).
    assert rows[-1]["bw_tr"] >= 0.9 * params.bandwidth_Bps
    assert rows[-1]["bw_tr"] <= params.bandwidth_Bps * 1.001
    # Latency-bound small payloads attain a lower fraction.
    assert rows[0]["bw_tr"] < rows[-1]["bw_tr"]


def test_machine_bandwidth_ranking(benchmark):
    def ranking():
        out = {}
        for _name, params, p in FIGS:
            rows = _sweep(params, p)
            out[params.name] = rows[-1]["bw_tr"]
        return out

    bw = benchmark.pedantic(ranking, rounds=1, iterations=1)
    assert bw["Intel Paragon"] > bw["IBM SP-2"] > bw["Meiko CS-2"] > bw["TMC CM-5"]

"""Figures 15-17: CM-5 connected components on the nine test images,
p = 16 / 32 / 64, image sizes 512x512 and 1024x1024.

The paper plots per-image execution times; the bar patterns and the
disc are easy cases, the dual spiral (image 9) is the hard one.  Shapes
to reproduce: per-image times within a small factor of each other (the
tile work dominates), 1024^2 about 4x the 512^2 time, and p-doubling
speedups.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, fmt_seconds
from repro.core.connected_components import parallel_components
from repro.images import binary_test_image
from repro.machines import CM5

NS = (512, 1024)
FIGS = [("fig15_cm5_p16", 16), ("fig16_cm5_p32", 32), ("fig17_cm5_p64", 64)]


def _sweep(p):
    out = {}
    for n in NS:
        out[n] = [
            parallel_components(binary_test_image(idx, n), p, CM5).elapsed_s
            for idx in range(1, 10)
        ]
    return out


@pytest.mark.parametrize("name,p", FIGS, ids=[f[0] for f in FIGS])
def test_cm5_components_panels(benchmark, name, p):
    data = benchmark.pedantic(_sweep, args=(p,), rounds=1, iterations=1)
    lines = [f"{name}: CM-5 binary CC on test images 1-9 (p={p}) -- simulated"]
    for n in NS:
        lines.append(f"{n}x{n}:")
        for idx, t in enumerate(data[n], start=1):
            lines.append(f"  image {idx}  {fmt_seconds(t)}")
        lines.append(f"  mean     {fmt_seconds(float(np.mean(data[n])))}")
    emit(name, "\n".join(lines))

    for n in NS:
        times = np.array(data[n])
        # All nine images within a factor ~2 of each other: the limited
        # updating keeps data dependence mild.
        assert times.max() / times.min() < 2.0
    # 1024^2 vs 512^2: ~4x (compute bound).
    ratio = np.mean(data[1024]) / np.mean(data[512])
    assert 2.8 < ratio < 4.8


def test_paper_mean_point_cm5_p32(benchmark):
    """Paper Table 2: CM-5/32, mean of test images, 512^2 = 292 ms."""
    def run():
        return float(
            np.mean(
                [
                    parallel_components(binary_test_image(i, 512), 32, CM5).elapsed_s
                    for i in range(1, 10)
                ]
            )
        )

    mean = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 292e-3 / 2.5 < mean < 292e-3 * 2.5

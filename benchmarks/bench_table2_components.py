"""Table 2: parallel image connected components comparison.

Regenerates the paper's Table 2 tail: our CC runs on the DARPA-like
benchmark image (grey-scale, 512x512, 256 levels) and the mean over the
nine binary test images (512x512 and 1024x1024), on the machine models
and processor counts of the paper's own rows.

Paper values (Bader & JaJa rows): CM-5/32 DARPA 368 ms, CM-5/32 mean
292 ms (512) and 852 ms (1024); SP-2/32 mean 284 ms (512), 585 ms
(1024); etc.  Shape to reproduce: our algorithm beats the 1994
Choudhary & Thakur CM-5 rows (398-456 ms) on the DARPA image, and the
work per pixel sits in the tens of microseconds.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import TABLE2_COMPONENTS, TableEntry, format_table, work_per_pixel_s
from repro.core.connected_components import parallel_components
from repro.images import binary_test_image, darpa_like
from repro.machines import CM5, CS2, SP1, SP2

#: (machine, p, image-kind, n) matching the paper's own Table 2 rows.
CONFIGS = [
    (CM5, 32, "darpa", 512),
    (CM5, 32, "mean", 512),
    (CM5, 32, "mean", 1024),
    (SP1, 4, "darpa", 512),
    (SP1, 32, "mean", 512),
    (SP2, 4, "darpa", 512),
    (SP2, 32, "mean", 512),
    (CS2, 2, "darpa", 512),
    (CS2, 32, "darpa", 512),
]


def _run_config(params, p, kind, n) -> float:
    if kind == "darpa":
        img = darpa_like(n, 256)
        return parallel_components(img, p, params, grey=True).elapsed_s
    times = [
        parallel_components(binary_test_image(idx, n), p, params).elapsed_s
        for idx in range(1, 10)
    ]
    return float(np.mean(times))


def _simulate_rows() -> list[TableEntry]:
    rows = []
    for params, p, kind, n in CONFIGS:
        t = _run_config(params, p, kind, n)
        note = "DARPA-like image" if kind == "darpa" else "mean of test images"
        rows.append(
            TableEntry(
                year=2026,
                researchers="this reproduction (simulated)",
                machine=params.name,
                processors=p,
                image_size=n,
                time_s=t,
                work_per_pixel_s=work_per_pixel_s(t, p, n),
                note=note,
            )
        )
    return rows


def test_table2(benchmark):
    rows = benchmark.pedantic(_simulate_rows, rounds=1, iterations=1)
    emit(
        "table2_components",
        format_table(
            TABLE2_COMPONENTS,
            title="Table 2: Parallel Connected Components of Images (* = this reproduction)",
            extra=rows,
        ),
    )
    by_key = {(r.machine, r.processors, r.note, r.image_size): r for r in rows}
    # Shape 1: beat the Choudhary & Thakur 1994 CM-5/32 DARPA rows.
    ct_best = min(
        e.time_s
        for e in TABLE2_COMPONENTS
        if e.researchers.startswith("Choudhary") and e.machine == "TMC CM-5"
    )
    ours_darpa = by_key[("TMC CM-5", 32, "DARPA-like image", 512)]
    assert ours_darpa.time_s < ct_best
    # Shape 2: within ~2.5x of the paper's own rows.
    paper_cm5_darpa = 368e-3
    assert paper_cm5_darpa / 2.5 < ours_darpa.time_s < paper_cm5_darpa * 2.5
    # Shape 3: 1024^2 mean costs ~3-4x the 512^2 mean (O(n^2/p) compute).
    mean512 = by_key[("TMC CM-5", 32, "mean of test images", 512)].time_s
    mean1024 = by_key[("TMC CM-5", 32, "mean of test images", 1024)].time_s
    assert 2.5 < mean1024 / mean512 < 5.0

"""Real-runtime backends: wall-clock of serial vs multiprocessing.

Measures the actual (not simulated) execution of the histogram and CC
implementations in :mod:`repro.runtime`.  On a multi-core host the
process backend should approach core-count speedups for large images;
on a single-core host (like some CI containers) it documents the
pool's overhead instead -- the host's core count is recorded with the
artifact so readers can interpret the numbers.
"""

import os
import time

from benchmarks.conftest import emit
from benchmarks.emit import emit_json
from repro.baselines import run_label
from repro.images import darpa_like
from repro.runtime import components, histogram

N = 512
K = 256


def _wall(fn, *args, **kwargs):
    t0 = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - t0


def _measure():
    img = darpa_like(N, K)
    rows = {}
    rows["histogram serial"] = _wall(histogram, img, K, backend="serial")
    rows["histogram process x2"] = _wall(histogram, img, K, workers=2, backend="process")
    rows["histogram process x4"] = _wall(histogram, img, K, workers=4, backend="process")
    rows["components serial"] = _wall(components, img, grey=True, backend="serial")
    rows["components process x2"] = _wall(components, img, grey=True, workers=2, backend="process")
    rows["components process x4"] = _wall(components, img, grey=True, workers=4, backend="process")
    return rows


def test_runtime_backends(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    lines = [f"Runtime backends on this host ({cores} cores), {N}x{N}, wall time"]
    for name, t in rows.items():
        lines.append(f"  {name:<26} {t * 1e3:9.2f} ms")
    if cores == 1:
        lines.append("  NOTE: single-core host; process backend cannot speed up here.")
    emit("runtime_backends", "\n".join(lines))
    emit_json(
        "runtime_backends",
        params={"n": N, "k": K, "clock": "wall"},
        rows=[{"name": name, "wall_s": t} for name, t in rows.items()],
        notes="process backend cannot speed up on a single-core host"
        if cores == 1
        else "",
    )

    # Correctness regardless of backend was asserted in tests; here just
    # sanity-check the measurements exist and are positive.
    assert all(t > 0 for t in rows.values())
    if cores >= 4:
        # Expect at least some speedup for the embarrassingly parallel tally.
        assert rows["histogram process x4"] < rows["histogram serial"] * 0.9


def test_components_serial_baseline(benchmark):
    """pytest-benchmark timing of the vectorized sequential CC engine."""
    img = darpa_like(N, K)
    labels = benchmark(run_label, img, grey=True)
    assert labels.shape == (N, N)

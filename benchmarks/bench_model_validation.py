"""Model validation: simulated costs vs the paper's closed forms.

Not a figure per se, but the paper's recurring claim -- "our
experimental results are consistent with the theoretical analysis" --
made quantitative: for a grid of (n, k, p) configurations we compare
the simulator's measured communication/computation times against
equations (1), (2), (3) and (11).
"""

from benchmarks.conftest import emit
from repro.analysis import (
    predict_broadcast,
    predict_components,
    predict_histogram,
    predict_transpose,
)
from repro.bdm import GlobalArray, Machine, broadcast, transpose
from repro.core.connected_components import parallel_components
from repro.core.histogram import parallel_histogram
from repro.images import binary_test_image, random_greyscale
from repro.machines import CM5, SP2


def _validate():
    rows = []
    # Transpose / broadcast: the model is exact.
    for p, q in [(8, 4096), (32, 65536)]:
        m = Machine(p, CM5)
        transpose(m, GlobalArray(m, q))
        got = m.report().comm_s
        want = predict_transpose(CM5, q, p)["comm_s"]
        rows.append(("transpose", f"p={p} q={q}", want, got))
        m = Machine(p, SP2)
        broadcast(m, GlobalArray(m, q))
        got = m.report().comm_s
        want = predict_broadcast(SP2, q, p)["comm_s"]
        rows.append(("broadcast", f"p={p} q={q}", want, got))
    # Histogram: comm bound of eq. (3); comp estimate.
    for n, k, p in [(256, 64, 16), (512, 256, 32)]:
        img = random_greyscale(n, k, seed=n)
        rep = parallel_histogram(img, k, p, CM5).report
        pred = predict_histogram(CM5, n, k, p)
        rows.append(("hist comm", f"n={n} k={k} p={p}", pred["comm_s"], rep.comm_s))
        rows.append(("hist comp", f"n={n} k={k} p={p}", pred["comp_s"], rep.comp_s))
    # CC: comm bound of eq. (11); comp estimate.
    for n, p in [(256, 16), (512, 32)]:
        img = binary_test_image(5, n)
        rep = parallel_components(img, p, CM5).report
        pred = predict_components(CM5, n, p)
        rows.append(("cc comm", f"n={n} p={p}", pred["comm_s"], rep.comm_s))
        rows.append(("cc comp", f"n={n} p={p}", pred["comp_s"], rep.comp_s))
    return rows


def test_model_validation(benchmark):
    rows = benchmark.pedantic(_validate, rounds=1, iterations=1)
    lines = ["Model validation: closed-form prediction vs simulated measurement"]
    lines.append(f"{'quantity':<12} {'config':<20} {'predicted':>12} {'measured':>12} {'ratio':>7}")
    for name, cfg, want, got in rows:
        ratio = got / want if want else float("inf")
        lines.append(f"{name:<12} {cfg:<20} {want:>12.6f} {got:>12.6f} {ratio:>7.3f}")
    emit("model_validation", "\n".join(lines))

    for name, cfg, want, got in rows:
        if name in ("transpose", "broadcast"):
            assert got == want or abs(got - want) / want < 1e-9, (name, cfg)
        elif name.endswith("comm"):
            # Equations (3)/(11) are upper bounds; the simulator must
            # stay below (with a little slack for barrier accounting)
            # but within an order of magnitude (the bound is not loose).
            assert got <= want * 1.3, (name, cfg, want, got)
            assert got >= want * 0.05, (name, cfg, want, got)
        else:
            assert 0.4 < got / want < 2.5, (name, cfg, want, got)


def test_structural_model_fit(benchmark):
    """Fit the simulator's measured times to the analysis' structural
    model T = a n^2/p + b n/sqrt(p) + c log p + d: R^2 near 1 and the
    n^2/p term dominant is the quantitative form of 'the experimental
    results are consistent with the theoretical analysis'."""
    from repro.analysis.fitting import fit_complexity_model
    from repro.images import binary_test_image

    def run():
        ns, ps, ts = [], [], []
        for n_ in (128, 256, 512):
            for p_ in (4, 16, 64):
                img = binary_test_image(9, n_)
                ts.append(parallel_components(img, p_, CM5).elapsed_s)
                ns.append(n_)
                ps.append(p_)
        return fit_complexity_model(ns, ps, ts)

    fit = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Structural-model fit of simulated CC times (CM-5, dual spiral)"]
    lines.append("T(n, p) = a n^2/p + b n/sqrt(p) + c log2(p) + d")
    for name, value in fit.coefficients.items():
        lines.append(f"  {name:<14} {value:.3e}")
    lines.append(f"  R^2 = {fit.r_squared:.6f}, dominant term: {fit.dominant_term}")
    emit("model_fit", "\n".join(lines))
    assert fit.r_squared > 0.98
    assert fit.dominant_term == "n2_over_p"

"""Wall-clock comparison of the sequential labeling engines.

Not a paper figure, but the engineering evidence behind the library's
engine choice: the vectorized run-length union-find engine ("runs")
should dominate the pure-Python raster algorithms (BFS, two-pass) by
orders of magnitude and stay competitive with the vectorized
Shiloach-Vishkin solver ("sv"), which does O(E log V) work.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.baselines.sequential import ENGINES
from repro.images import binary_test_image, darpa_like

N_FAST = 512
N_SLOW = 96  # pure-Python engines get a smaller image


def _time_engine(engine, img, **kwargs):
    fn = ENGINES[engine]
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fn(img, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep():
    rows = []
    spiral_small = binary_test_image(9, N_SLOW)
    spiral_big = binary_test_image(9, N_FAST)
    grey_big = darpa_like(N_FAST, 64, seed=5)
    for engine in ("bfs", "twopass"):
        rows.append((engine, f"spiral {N_SLOW}^2", _time_engine(engine, spiral_small)))
    for engine in ("runs", "sv"):
        rows.append((engine, f"spiral {N_SLOW}^2", _time_engine(engine, spiral_small)))
        rows.append((engine, f"spiral {N_FAST}^2", _time_engine(engine, spiral_big)))
        rows.append(
            (engine, f"darpa {N_FAST}^2 grey", _time_engine(engine, grey_big, grey=True))
        )
    return rows


def test_engine_comparison(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Sequential engine wall-clock comparison (identical outputs)"]
    lines.append(f"{'engine':<10} {'workload':<22} {'time':>12}")
    for engine, workload, t in rows:
        lines.append(f"{engine:<10} {workload:<22} {t * 1e3:>10.2f} ms")
    emit("engine_comparison", "\n".join(lines))

    by = {(e, w): t for e, w, t in rows}
    small = f"spiral {N_SLOW}^2"
    big = f"spiral {N_FAST}^2"
    # Per-pixel throughput: the vectorized engine at 512^2 beats the
    # pure-Python engines at 96^2 by a wide margin (tiny images hide
    # the asymptotic gap behind per-call overhead).
    runs_per_px = by[("runs", big)] / (N_FAST * N_FAST)
    bfs_per_px = by[("bfs", small)] / (N_SLOW * N_SLOW)
    twopass_per_px = by[("twopass", small)] / (N_SLOW * N_SLOW)
    assert runs_per_px < bfs_per_px / 5
    assert runs_per_px < twopass_per_px / 5
    # And it is never slower outright, even at the small size.
    assert by[("runs", small)] < by[("bfs", small)]


@pytest.mark.parametrize("engine", ["runs", "sv"])
def test_vectorized_engine_throughput(benchmark, engine):
    """pytest-benchmark stats for the two production engines."""
    img = binary_test_image(9, N_FAST)
    labels = benchmark(ENGINES[engine], img)
    assert labels.shape == img.shape

"""Serving layer: batched+cached throughput vs naive per-request dispatch.

A closed-loop load generator drives the in-process service
:class:`~repro.service.Client` from a pool of worker threads, modelling
the repeated-image workload a dashboard or test rig produces: ``N``
requests drawn round-robin from ``D`` distinct images, so each image
recurs ``N/D`` times.  Two service configurations are measured on the
identical request stream:

* ``batched+cached``  -- micro-batching window on, result cache on
  (the serving layer as shipped);
* ``unbatched+uncached`` -- batch size 1, zero window, cache off
  (every request pays its own pool dispatch and its own computation).

Throughput and latency percentiles go to
``benchmarks/results/service.json`` (``repro-bench/v1``), and the
script *asserts* the >= 2x batched+cached speedup the serving layer
exists to provide, so a regression fails the run rather than shipping
a slower artifact.  Each speed row also carries the service's *own*
latency view -- p50/p95/p99 read back from the log-bucketed
``repro_request_latency_seconds`` histograms -- next to the load
generator's exact client-side percentiles, so the artifact doubles as
a standing cross-check of the metrics plane.

An observability on/off pass then re-runs the batched+cached stream
with full tracing (a ``WallRecorder`` span sink) plus metrics against
a registry-off, recorder-off twin, and records the throughput overhead
as ``params.obs_overhead_pct`` with one comparison row per side.
Measured passes alternate between the two sides with best-of-N per
side as the score, so machine-load drift cancels instead of
masquerading as observability overhead.

A saturation pass then offers more concurrency than a deliberately
shallow admission queue can hold and checks the overload contract:
some requests are shed with a typed ``ServiceOverloadError``, everything
else completes, the service stays responsive afterwards, and no
``/dev/shm`` segment leaks.

Run as a script (CI runs the smoke variant)::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # tiny, fast
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import concurrent.futures
import hashlib
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(_ROOT), str(_ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np  # noqa: E402

from benchmarks.emit import emit_json  # noqa: E402
from repro.faults import assert_no_shm_leak  # noqa: E402
from repro.images import darpa_like  # noqa: E402
from repro.obs import WallRecorder  # noqa: E402
from repro.service import (  # noqa: E402
    Client,
    HashRing,
    RouterConfig,
    ServiceConfig,
    ShardRouter,
    WireClient,
    request_over_socket,
)
from repro.utils.errors import ServiceOverloadError  # noqa: E402

K = 256

CONFIGS = {
    "batched+cached": dict(max_batch=8, max_delay_s=0.002, cache=True),
    "unbatched+uncached": dict(max_batch=1, max_delay_s=0.0, cache=False),
}


def _make_workload(n_requests: int, n_distinct: int, size: int) -> list[np.ndarray]:
    images = [darpa_like(size, K, seed=100 + i) for i in range(n_distinct)]
    return [images[i % n_distinct] for i in range(n_requests)]


def _drive(client: Client, workload: list[np.ndarray], threads: int) -> dict:
    """Closed-loop run: ``threads`` concurrent clients, one shared stream."""
    latencies: list[float] = []
    shed = 0
    lock = threading.Lock()

    def one(image) -> None:
        nonlocal shed
        t0 = time.perf_counter()
        try:
            client.submit("histogram", image, k=K)
        except ServiceOverloadError:
            with lock:
                shed += 1
            return
        dt = time.perf_counter() - t0
        with lock:
            latencies.append(dt)

    t0 = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(threads) as tpe:
        list(tpe.map(one, workload))
    elapsed = time.perf_counter() - t0
    lat = np.array(sorted(latencies)) if latencies else np.array([0.0])
    return {
        "requests": len(workload),
        "served": len(latencies),
        "shed": shed,
        "elapsed_s": elapsed,
        "throughput_rps": len(latencies) / elapsed if elapsed else 0.0,
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p95_ms": float(np.percentile(lat, 95) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def _registry_latency(snap: dict) -> dict:
    """The service-side latency view: the registry's log-bucketed
    histogram quantiles for the driven op, from the stats snapshot."""
    hist = snap.get("latency", {}).get("histogram")
    if not hist:
        return {}
    return {
        "registry_count": hist["count"],
        "registry_p50_ms": hist["p50_ms"],
        "registry_p95_ms": hist["p95_ms"],
        "registry_p99_ms": hist["p99_ms"],
    }


def _compare(args) -> tuple[list[dict], float]:
    workload = _make_workload(args.requests, args.distinct, args.size)
    rows = []
    for label, overrides in CONFIGS.items():
        config = ServiceConfig(
            workers=args.workers,
            queue_depth=max(4 * args.threads, 64),  # headroom: measure speed, not shedding
            **overrides,
        )
        with Client(config) as client:
            row = _drive(client, workload, args.threads)
            snap = client.stats()
        row.update(
            config=label,
            workers=args.workers,
            threads=args.threads,
            distinct_images=args.distinct,
            image_size=args.size,
            mean_batch=snap["batcher"]["requests"] / max(snap["batcher"]["batches"], 1),
            cache_hits=snap.get("cache", {}).get("hits", 0),
            coalesced=snap["service"]["coalesced"],
            **_registry_latency(snap),
        )
        assert row["shed"] == 0, f"{label}: unexpected shedding in the speed run"
        rows.append(row)
        print(
            f"  {label:<20} {row['throughput_rps']:>8.1f} req/s   "
            f"p50 {row['p50_ms']:.2f}ms  p95 {row['p95_ms']:.2f}ms  "
            f"p99 {row['p99_ms']:.2f}ms  mean batch {row['mean_batch']:.2f}  "
            f"cache hits {row['cache_hits']}"
        )
    speedup = rows[0]["throughput_rps"] / max(rows[1]["throughput_rps"], 1e-12)
    print(f"  speedup (batched+cached / unbatched+uncached): {speedup:.2f}x")
    return rows, speedup


def _obs_overhead(args) -> tuple[list[dict], float]:
    """Tracing+metrics on vs off on the identical batched+cached stream.

    ``on`` is the fully instrumented service (metrics registry plus a
    WallRecorder span sink, so every request builds its span tree);
    ``off`` disables both.  Conditions mirror the headline
    batched+cached row: a fresh client and a cold cache per measured
    pass, so the stream pays its real mix of computes, coalesces, and
    cache hits.  A single closed-loop pass lasts tens of milliseconds
    and wobbles far more than the effect being measured, so passes
    *alternate* between the two sides -- machine-load drift hits both
    equally -- and each side scores its best-of-N.  The overhead the
    observability plane may charge is a few percent; the artifact
    records what it actually was.
    """
    # The headline stream finishes in tens of milliseconds -- a window
    # where a single scheduler stall is a double-digit-percent swing,
    # drowning the few-percent effect under measurement.  The obs
    # passes repeat the stream 4x so the measured window is long enough
    # that jitter averages out; the request mix (computes, coalesces,
    # cache hits) is unchanged.
    repeat = 1 if args.smoke else 4
    workload = _make_workload(args.requests, args.distinct, args.size) * repeat
    passes = 2 if args.smoke else 5
    on_label, off_label = "batched+cached+obs", "batched+cached-noobs"
    best: dict[str, dict] = {}
    for _ in range(passes):
        for label, obs_on in ((on_label, True), (off_label, False)):
            config = ServiceConfig(
                workers=args.workers,
                queue_depth=max(4 * args.threads, 64),
                metrics=obs_on,
                **CONFIGS["batched+cached"],
            )
            recorder = WallRecorder(source="bench-service") if obs_on else None
            with Client(config, recorder=recorder) as client:
                row = _drive(client, workload, args.threads)
                snap = client.stats()
            assert row["shed"] == 0, f"{label}: unexpected shedding"
            row.update(
                config=label,
                observability=obs_on,
                passes=passes,
                workers=args.workers,
                threads=args.threads,
                **_registry_latency(snap),
            )
            if obs_on:
                recorder.drain()
                row["spans_recorded"] = len(recorder.log.spans)
                assert row["spans_recorded"] >= len(workload), (
                    "tracing was on but barely any spans were recorded"
                )
            if label not in best or (
                row["throughput_rps"] > best[label]["throughput_rps"]
            ):
                best[label] = row
    rows = [best[on_label], best[off_label]]
    for row in rows:
        print(
            f"  {row['config']:<20} {row['throughput_rps']:>8.1f} req/s "
            f"(best of {passes})   p50 {row['p50_ms']:.2f}ms  "
            f"p99 {row['p99_ms']:.2f}ms"
            + (f"  ({row['spans_recorded']} spans)"
               if row["observability"] else "")
        )
    off = max(best[off_label]["throughput_rps"], 1e-12)
    overhead_pct = (off - best[on_label]["throughput_rps"]) / off * 100.0
    print(f"  observability overhead: {overhead_pct:+.1f}% throughput")
    return rows, overhead_pct


def _saturate(args) -> dict:
    """Offer more concurrency than the queue can hold; check the contract."""
    depth = max(args.threads // 4, 2)
    config = ServiceConfig(
        workers=args.workers,
        max_batch=8,
        max_delay_s=0.002,
        queue_depth=depth,
        cache=False,  # distinct images anyway; make every request real work
    )
    # All-distinct images so neither the cache nor in-flight coalescing
    # can absorb the overload for us.
    workload = [
        darpa_like(args.size, K, seed=1000 + i)
        for i in range(args.requests)
    ]
    with assert_no_shm_leak():
        with Client(config) as client:
            row = _drive(client, workload, args.threads)
            # Still serving after the storm: the shed path must not wedge
            # the batcher, the pool, or the admission queue.
            probe = client.submit("histogram", workload[0], k=K)
            assert np.array_equal(
                probe, np.bincount(workload[0].ravel(), minlength=K)
            )
            snap = client.stats()
    row.update(
        config="saturation",
        workers=args.workers,
        threads=args.threads,
        queue_depth=depth,
        admission_shed=snap["admission"]["shed"],
    )
    assert row["shed"] > 0, "saturation run failed to trigger load shedding"
    assert row["served"] + row["shed"] == row["requests"], "requests went missing"
    assert snap["admission"]["shed"] == row["shed"]
    print(
        f"  saturation (depth {depth}, {args.threads} threads): "
        f"{row['served']} served, {row['shed']} shed "
        f"({row['throughput_rps']:.1f} req/s for the survivors); "
        f"no deadlock, no shm leak"
    )
    return row


def _wire_compare(args) -> tuple[list[dict], float]:
    """ndjson base64 vs the zero-copy shmem wire on a real socket server.

    A genuine ``repro serve`` subprocess (descriptors must cross a real
    process boundary) is driven sequentially over one persistent
    connection per wire.  Every request carries a distinct image -- and
    each wire gets its *own* distinct set -- so the shared
    content-addressed cache cannot serve either side the other's
    computations; both wires pay the full materialize+compute path and
    the measured difference is pure wire cost: base64+JSON framing of
    the pixels vs a segment memcpy plus a descriptor line.
    """
    size = min(args.wire_size, 64) if args.smoke else args.wire_size
    n = 6 if args.smoke else 24
    # Per-wire warmup requests (distinct images, so nothing is cached
    # for the timed set): the first shmem materialization in each pool
    # worker pays one-time costs (tracker process spawn, first segment
    # map) that belong to process start, not to the wire.
    n_warm = max(3, args.workers + 1)
    # Each (wire, pass) gets its own distinct image set: a repeated set
    # would be served from the content cache on later passes -- and a
    # shmem cache hit never reads the segment, which would flatter the
    # wire being measured.  Disjoint seed ranges keep the sets disjoint.
    passes = 1 if args.smoke else 3

    async def drive(sock: str, wire: str, seed_base: int) -> dict:
        images = [
            darpa_like(size, K, seed=seed_base + i) for i in range(n + n_warm)
        ]
        latencies = []
        async with WireClient(sock, wire=wire) as client:
            for image in images[:n_warm]:
                await client.compute("histogram", image, k=K)
            t0 = time.perf_counter()
            for image in images[n_warm:]:
                s = time.perf_counter()
                await client.compute("histogram", image, k=K)
                latencies.append(time.perf_counter() - s)
            elapsed = time.perf_counter() - t0
        lat = np.array(sorted(latencies))
        return {
            "config": f"wire:{wire}",
            "wire": wire,
            "requests": n,
            "served": n,
            "shed": 0,
            "elapsed_s": elapsed,
            "throughput_rps": n / elapsed if elapsed else 0.0,
            "p50_ms": float(np.percentile(lat, 50) * 1e3),
            "p95_ms": float(np.percentile(lat, 95) * 1e3),
            "p99_ms": float(np.percentile(lat, 99) * 1e3),
            "image_size": size,
            "workers": args.workers,
        }

    rows = []
    with assert_no_shm_leak(grace_s=2.0), tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "bench.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", sock, "--workers", str(args.workers)],
            env=env,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(sock):
                if proc.poll() is not None:
                    raise AssertionError(f"bench server exited {proc.returncode}")
                assert time.monotonic() < deadline, "bench server never came up"
                time.sleep(0.05)
            # Best-of-N per wire: the measured window is well under a
            # second, so one scheduler stall sinks a single pass; both
            # wires get the same treatment, so the comparison stays fair.
            for wire, base in (("ndjson", 2000), ("shmem", 5000)):
                best = None
                for p in range(passes):
                    row = asyncio.run(drive(sock, wire, base + 97 * p))
                    if (best is None
                            or row["throughput_rps"] > best["throughput_rps"]):
                        best = row
                best["passes"] = passes
                rows.append(best)
        finally:
            if proc.poll() is None:
                try:
                    asyncio.run(request_over_socket(sock, {"op": "shutdown"}))
                    proc.wait(timeout=30)
                except (OSError, ConnectionError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait()
    by_wire = {row["wire"]: row for row in rows}
    tp_gain = (by_wire["shmem"]["throughput_rps"]
               / max(by_wire["ndjson"]["throughput_rps"], 1e-12))
    p95_gain = (by_wire["ndjson"]["p95_ms"]
                / max(by_wire["shmem"]["p95_ms"], 1e-12))
    wire_gain = max(tp_gain, p95_gain)
    for row in rows:
        print(
            f"  {row['config']:<20} {row['throughput_rps']:>8.1f} req/s   "
            f"p50 {row['p50_ms']:.2f}ms  p95 {row['p95_ms']:.2f}ms  "
            f"({row['image_size']}x{row['image_size']} images)"
        )
    print(
        f"  shmem wire gain: {tp_gain:.2f}x throughput, "
        f"{p95_gain:.2f}x lower p95"
    )
    return rows, wire_gain


def _shard_compare(args) -> tuple[list[dict], float]:
    """Router-fronted shards:1 vs shards:3 on a cache-capacity-bound
    repeated-image stream.

    On a one-CPU machine three shard processes cannot out-*compute* one,
    so the row measures what sharding actually scales there: **aggregate
    cache capacity**.  Each shard runs a deliberately small result cache
    (``entries`` slots) and the stream cycles ``distinct > entries``
    images.  One shard LRU-thrashes -- cyclic access with D > E evicts
    every entry before its reuse, so every request recomputes -- while
    three shards partition the set by digest affinity to ~D/3 per shard,
    everything fits, and the measured cycles are served from memory.
    The split is deterministic (fixed images -> fixed digests -> fixed
    ring positions), so the >= 2x gate cannot flake.
    """
    size = 64 if args.smoke else args.size
    distinct = 8 if args.smoke else 24
    entries = 4 if args.smoke else 16
    cycles = 1 if args.smoke else 3
    # Pre-select images so the 3-shard ring's split of them fits every
    # shard's cache (a blind sample of `distinct` keys over 3 shards can
    # land more than `entries` on one shard -- that shard would thrash
    # and the comparison would measure ring luck, not capacity).  The
    # reference ring below is exactly the router's (same ids, default
    # vnodes), and the affinity key of an ndjson compute request is the
    # sha256 of its base64 pixel span, so the placement computed here is
    # the placement the router will use.  Seeds are fixed: the selection
    # -- and therefore the bench -- is deterministic.
    ring = HashRing(range(3))
    per_shard = dict.fromkeys(ring.shard_ids, 0)
    images = []
    seed = 3000
    while len(images) < distinct:
        img = darpa_like(size, K, seed=seed)
        seed += 1
        b64 = base64.b64encode(np.ascontiguousarray(img).tobytes())
        home = ring.route(hashlib.sha256(b64).digest())
        if per_shard[home] >= entries:
            continue
        per_shard[home] += 1
        images.append(img)

    async def drive(shards: int) -> dict:
        with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
            router = ShardRouter(
                os.path.join(tmp, "router.sock"),
                RouterConfig(
                    shards=shards,
                    runtime_dir=tmp,
                    workers_per_shard=1,
                    shard_args=["--cache-entries", str(entries)],
                    metrics=False,
                ),
            )
            await router.start()
            try:
                latencies = []
                async with WireClient(router.socket_path, wire="ndjson") as client:
                    for image in images:  # warmup cycle fills the caches
                        await client.compute("histogram", image, k=K)
                    t0 = time.perf_counter()
                    for _ in range(cycles):
                        for image in images:
                            s = time.perf_counter()
                            await client.compute("histogram", image, k=K)
                            latencies.append(time.perf_counter() - s)
                    elapsed = time.perf_counter() - t0
                hits = 0
                for sid in router.shard_ids:
                    reply = json.loads(await router._one_shot(
                        sid, b'{"op": "stats"}\n', timeout_s=10.0
                    ))
                    hits += reply["result"]["cache"]["hits"]
            finally:
                await router.stop()
        n = cycles * distinct
        lat = np.array(sorted(latencies))
        return {
            "config": f"shards:{shards}",
            "shards": shards,
            "requests": n,
            "served": n,
            "shed": 0,
            "elapsed_s": elapsed,
            "throughput_rps": n / elapsed if elapsed else 0.0,
            "p50_ms": float(np.percentile(lat, 50) * 1e3),
            "p95_ms": float(np.percentile(lat, 95) * 1e3),
            "p99_ms": float(np.percentile(lat, 99) * 1e3),
            "cache_hits": hits,
            "cache_entries_per_shard": entries,
            "distinct_images": distinct,
            "image_size": size,
        }

    rows = []
    with assert_no_shm_leak(grace_s=2.0):
        for shards in (1, 3):
            rows.append(asyncio.run(drive(shards)))
    by = {row["shards"]: row for row in rows}
    shard_gain = (by[3]["throughput_rps"]
                  / max(by[1]["throughput_rps"], 1e-12))
    for row in rows:
        print(
            f"  {row['config']:<20} {row['throughput_rps']:>8.1f} req/s   "
            f"p50 {row['p50_ms']:.2f}ms  p95 {row['p95_ms']:.2f}ms  "
            f"cache hits {row['cache_hits']}/{row['requests']} "
            f"(E={row['cache_entries_per_shard']}/shard, "
            f"D={row['distinct_images']})"
        )
    print(f"  shard gain (shards:3 / shards:1): {shard_gain:.2f}x")
    # Sanity of the mechanism itself, both modes: one thrashing shard
    # must miss on (at least) the measured cycles; three must hit on
    # (essentially) all of them.
    assert by[1]["cache_hits"] < by[1]["requests"] // 2, (
        "shards:1 was supposed to thrash its capacity-bound cache"
    )
    assert by[3]["cache_hits"] >= by[3]["requests"] * 0.9, (
        "shards:3 was supposed to serve the measured cycles from its "
        "partitioned caches"
    )
    return rows, shard_gain


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny, fast variant")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--distinct", type=int, default=8)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--wire-size", type=int, default=512,
                        help="image side for the wire-mode comparison")
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers = min(args.workers, 2)
        args.threads = min(args.threads, 8)
        args.requests = min(args.requests, 48)
        args.distinct = min(args.distinct, 4)
        args.size = min(args.size, 64)

    print(
        f"service load test: {args.requests} requests over {args.distinct} "
        f"distinct {args.size}x{args.size} images, {args.threads} client "
        f"threads, {args.workers} workers"
    )
    # The observability delta is a few percent -- far below the noise a
    # 1-CPU runner accumulates once the load/saturation sections have
    # churned pools and threads -- so it is measured FIRST, on the
    # quietest part of the run.  (Row order in the artifact is
    # unchanged; only measurement order moved.)
    obs_rows, obs_overhead_pct = _obs_overhead(args)
    rows, speedup = _compare(args)
    rows.append(_saturate(args))
    rows.extend(obs_rows)
    wire_rows, wire_gain = _wire_compare(args)
    rows.extend(wire_rows)
    shard_rows, shard_gain = _shard_compare(args)
    rows.extend(shard_rows)

    floor = 1.2 if args.smoke else 2.0
    assert speedup >= floor, (
        f"batched+cached speedup {speedup:.2f}x is below the {floor}x floor"
    )
    # The zero-copy plane must beat base64 by >= 2x on throughput *or*
    # p95 at full size; tiny smoke images don't move enough bytes for a
    # meaningful floor, so smoke only records the rows.
    if not args.smoke:
        assert wire_gain >= 2.0, (
            f"shmem wire gain {wire_gain:.2f}x is below the 2x floor"
        )
        # Three shards must at least double aggregate throughput on the
        # repeated-image stream (the win is partitioned cache capacity,
        # so it holds even on a single-core runner).  Smoke still runs
        # the comparison -- the thrash/hit sanity asserts inside
        # _shard_compare fire in both modes -- but skips the ratio gate:
        # two subprocess topologies on a loaded single core wobble too
        # much for a floor to mean anything at smoke sizes.
        assert shard_gain >= 2.0, (
            f"3-shard gain {shard_gain:.2f}x is below the 2x floor"
        )
    # The observability plane must stay cheap.  The formal budget is 5%;
    # the gate leaves headroom for loaded CI runners, where a single
    # closed-loop run easily wobbles by more than the budget itself.
    # Measured on a 1-CPU runner the best-of-5 reading itself spreads
    # ~10-15% run to run (the 4x window repeat above already tightened
    # it from ~9-24%), so the ceiling sits above that spread: a
    # regression that doubles the instrumentation cost still trips it.
    ceiling = 30.0 if args.smoke else 20.0
    assert obs_overhead_pct <= ceiling, (
        f"tracing+metrics overhead {obs_overhead_pct:.1f}% exceeds the "
        f"{ceiling:.0f}% bench gate"
    )
    emit_json(
        "service_smoke" if args.smoke else "service",
        params={
            "requests": args.requests,
            "distinct_images": args.distinct,
            "image_size": args.size,
            "threads": args.threads,
            "workers": args.workers,
            "op": "histogram",
            "k": K,
            "speedup": speedup,
            "obs_overhead_pct": obs_overhead_pct,
            "wire_gain": wire_gain,
            "shard_gain": shard_gain,
            "smoke": args.smoke,
        },
        rows=rows,
        units="requests/second",
        notes="closed-loop load generator over the in-process service client; "
        "'saturation' row offers more concurrency than the admission queue "
        "holds and records typed load shedding; the 'batched+cached+obs' / "
        "'batched+cached-noobs' pair measures the tracing+metrics overhead "
        "on the identical stream (params.obs_overhead_pct); the 'wire:*' "
        "rows drive a real socket server over one persistent connection "
        "per wire mode and record the zero-copy shmem win over ndjson "
        "base64 (params.wire_gain); the 'shards:*' rows front spawned "
        "shard processes with the consistent-hash router on a stream "
        "whose distinct-image count exceeds one shard's cache capacity "
        "but not three shards' aggregate (params.shard_gain)",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

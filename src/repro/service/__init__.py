"""repro.service: async batch serving with caching and backpressure.

The serving layer turns the batch engines into an always-on facility:
requests stream in (over a local socket or the in-process client),
compatible ones coalesce into micro-batches on a shared supervised
worker pool, results are content-address cached, and overload is shed
at the door instead of queued into oblivion.  See ``docs/SERVICE.md``.
"""

from repro.service.admission import (
    DEFAULT_QUEUE_DEPTH,
    AdmissionQueue,
    AdmissionStats,
    PendingRequest,
)
from repro.service.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_S,
    BatcherStats,
    BatchKey,
    MicroBatcher,
)
from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    ResultCache,
    image_digest,
    result_key,
)
from repro.service.health import CircuitBreaker, HealthMonitor
from repro.service.instruments import ServiceInstruments
from repro.service.ops import (
    OPS,
    canonical_params,
    compute,
    materialize_request_image,
)
from repro.service.router import (
    HashRing,
    RouterConfig,
    ShardProcess,
    ShardRouter,
)
from repro.service.server import (
    SUN_PATH_MAX,
    WIRES,
    BatchExecutor,
    BatchService,
    Client,
    ServiceConfig,
    ServiceServer,
    check_socket_path,
    decode_array,
    encode_array,
    request_over_socket,
)
from repro.service.wire import (
    WireClient,
    compute_over_socket,
    mint_shared_image,
    raise_reply_error,
)

__all__ = [
    "AdmissionQueue",
    "AdmissionStats",
    "BatchExecutor",
    "BatchKey",
    "BatchService",
    "BatcherStats",
    "CacheStats",
    "CircuitBreaker",
    "Client",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_DELAY_S",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_QUEUE_DEPTH",
    "HashRing",
    "HealthMonitor",
    "MicroBatcher",
    "OPS",
    "PendingRequest",
    "ResultCache",
    "RouterConfig",
    "SUN_PATH_MAX",
    "ServiceConfig",
    "ServiceInstruments",
    "ServiceServer",
    "ShardProcess",
    "ShardRouter",
    "WIRES",
    "WireClient",
    "canonical_params",
    "check_socket_path",
    "compute",
    "compute_over_socket",
    "decode_array",
    "encode_array",
    "image_digest",
    "materialize_request_image",
    "mint_shared_image",
    "raise_reply_error",
    "request_over_socket",
    "result_key",
]

"""Bounded admission queues with load shedding and per-request deadlines.

Serving heavy traffic safely means *refusing* work you cannot finish:
an unbounded queue converts overload into universal timeouts, while a
bounded queue that sheds at the door keeps latency flat for the
requests it does accept.  The admission controller here enforces an
explicit depth limit -- a full queue raises a typed
:class:`~repro.utils.errors.ServiceOverloadError` immediately, never
blocks -- and stamps every admitted request with a deadline derived
from :func:`repro.runtime.dispatch.resolve_timeout` (so the service,
the dispatcher underneath it, and the ``REPRO_TASK_TIMEOUT``
environment variable all speak the same timeout language).

A request that outlives its deadline while still queued is *expired*
at dequeue time (its future fails with
:class:`~repro.utils.errors.TaskTimeoutError`) rather than executed:
computing an answer the client has already given up on only steals
capacity from requests that can still be served.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import SVC_SHED
from repro.obs.runtime import WallRecorder, instant_or_null
from repro.obs.trace import TraceContext
from repro.runtime.dispatch import resolve_timeout
from repro.service.instruments import ServiceInstruments
from repro.utils.errors import ServiceOverloadError

#: Default bound on queued (admitted but not yet dispatched) requests.
DEFAULT_QUEUE_DEPTH = 64


@dataclass
class PendingRequest:
    """One admitted request waiting to be batched.

    ``params`` is the op's canonical parameter tuple (hashable, so it
    can key a batch bucket), ``key`` the content-addressed cache key
    (``None`` when caching is off), and ``future`` resolves with the
    result ndarray or the request's typed error.
    """

    op: str
    image: Any
    params: tuple
    future: asyncio.Future
    key: str | None = None
    deadline_s: float = field(default=0.0)
    enqueued_s: float = field(default_factory=time.monotonic)
    #: The request's span context (a child of the submit-level request
    #: span); ``None`` when the service runs untraced.
    trace: TraceContext | None = None

    def expired(self, now: float | None = None) -> bool:
        return (now if now is not None else time.monotonic()) >= self.deadline_s

    def waited_s(self, now: float | None = None) -> float:
        return (now if now is not None else time.monotonic()) - self.enqueued_s


@dataclass
class AdmissionStats:
    admitted: int = 0
    shed: int = 0
    expired: int = 0
    depth_highwater: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0

    def snapshot(self) -> dict:
        mean = self.total_wait_s / self.admitted if self.admitted else 0.0
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "expired": self.expired,
            "depth_highwater": self.depth_highwater,
            "mean_wait_ms": mean * 1e3,
            "max_wait_ms": self.max_wait_s * 1e3,
        }


class AdmissionQueue:
    """Bounded FIFO of :class:`PendingRequest` with immediate shedding.

    ``put`` is synchronous and never blocks: backpressure is delivered
    as an exception the caller can surface to its client right away.
    ``get`` is a coroutine for the single batcher consumer.
    """

    def __init__(
        self,
        *,
        depth: int = DEFAULT_QUEUE_DEPTH,
        timeout_s: float | None = None,
        recorder: WallRecorder | None = None,
        instruments: ServiceInstruments | None = None,
    ):
        self.depth = int(depth)
        if self.depth <= 0:
            raise ServiceOverloadError("queue depth must be positive", depth=depth)
        self.timeout_s = resolve_timeout(timeout_s)
        self.stats = AdmissionStats()
        self._recorder = recorder
        self._instruments = instruments
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.depth)

    def __len__(self) -> int:
        return self._queue.qsize()

    def admit(self, req: PendingRequest) -> None:
        """Stamp the deadline and enqueue, or shed with a typed error."""
        req.deadline_s = req.enqueued_s + self.timeout_s
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            self.stats.shed += 1
            instant_or_null(
                self._recorder, SVC_SHED, op=req.op, depth=self._queue.qsize()
            )
            if self._instruments is not None:
                self._instruments.shed()
            raise ServiceOverloadError(
                f"service queue full ({self.depth} request(s) already queued); "
                f"request shed -- back off and retry",
                depth=self.depth,
            ) from None
        self.stats.admitted += 1
        self.stats.depth_highwater = max(self.stats.depth_highwater, self._queue.qsize())
        if self._instruments is not None:
            self._instruments.queue_depth(self._queue.qsize())

    async def get(self) -> PendingRequest:
        """Next admitted request (FIFO); records its queue wait."""
        req = await self._queue.get()
        waited = req.waited_s()
        self.stats.total_wait_s += waited
        self.stats.max_wait_s = max(self.stats.max_wait_s, waited)
        if self._instruments is not None:
            self._instruments.queue_depth(self._queue.qsize())
            self._instruments.queue_wait(waited)
        return req

    def drain_nowait(self) -> list[PendingRequest]:
        """Every still-queued request, immediately (used at shutdown)."""
        drained = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return drained

"""Client-side wire codecs for the socket front-end.

:func:`~repro.service.server.request_over_socket` is the raw one-shot
primitive (one JSON object in, one out).  This module layers the two
wire modes of ``docs/SERVICE.md`` on top of it:

* ``ndjson`` -- pixels ride the socket as base64 (portable fallback;
  works across hosts sharing nothing but the socket).
* ``shmem``  -- the zero-copy plane: the client writes its image into
  a POSIX shared segment once, stamps a content digest, and the socket
  carries a ~200 byte descriptor; replies come back the same way as
  server-minted segments the client must ``shm_release``.

:class:`WireClient` is the protocol-complete client: one persistent
connection (reply-segment lifetime is pinned to the connection that
requested it, so release must happen on the *same* connection), both
wire modes, typed error rehydration, and guaranteed teardown of every
segment it ever minted -- ``async with`` it and the leakcheck holds.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import numpy as np

from repro.obs.trace import TraceContext
from repro.runtime.shmem import (
    SharedNDArray,
    ShmDescriptor,
    verify_descriptor_digest,
)
from repro.service.ops import OPS
from repro.service.server import MAX_REQUEST_BYTES, decode_array, encode_array
from repro.utils import errors as _errors
from repro.utils.errors import ReproError

__all__ = [
    "WireClient",
    "compute_over_socket",
    "mint_shared_image",
    "raise_reply_error",
]


def raise_reply_error(reply: dict) -> dict:
    """Pass an ok reply through; raise the typed error of a failed one.

    The error object's ``type`` is looked up in the
    :mod:`repro.utils.errors` hierarchy (exactly as the service's own
    worker-marker rehydration does), so a client sees the same
    exception class it would have seen calling in-process.
    """
    if not isinstance(reply, dict):
        raise ReproError(f"malformed service reply: {reply!r}")
    if reply.get("ok"):
        return reply
    err = reply.get("error") or {}
    name, message = err.get("type", "ReproError"), err.get("message", "")
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        raise cls(message)
    raise ReproError(f"service error ({name}): {message}")


def mint_shared_image(image: np.ndarray) -> tuple[SharedNDArray, ShmDescriptor]:
    """Copy ``image`` into a fresh client-owned segment + its descriptor.

    The caller owns the segment: keep it alive until every request that
    names it has been *answered* (a worker may attach on a cache miss),
    then ``close()`` and ``unlink()`` it.  The digest is computed here,
    client-side -- the server keys its cache on it without reading a
    pixel.
    """
    seg = None
    try:
        seg = SharedNDArray.from_array(np.ascontiguousarray(image))
        desc = ShmDescriptor.for_array(seg.meta.name, seg.array)
        out, seg = seg, None  # ownership transferred to the caller
    finally:
        if seg is not None:
            seg.close()
            seg.unlink()
    return out, desc


class WireClient:
    """Async client for the ndjson socket protocol, both wire modes.

    ::

        async with WireClient(path, wire="shmem") as client:
            hist = await client.compute("histogram", image, k=256)

    ``wire`` picks the default for both directions: how the image
    leaves this process and how the reply is asked for.  Per-call
    ``wire=`` overrides it; passing a pre-minted
    :class:`~repro.runtime.shmem.ShmDescriptor` as the image skips the
    segment copy entirely (the steady-state shape for a client hammering
    one image).
    """

    def __init__(self, socket_path: str, *, wire: str = "ndjson"):
        if wire not in ("ndjson", "shmem"):
            raise _errors.ValidationError(
                f"unknown wire mode {wire!r}; known: ['ndjson', 'shmem']"
            )
        self.socket_path = str(socket_path)
        self.wire = wire
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self) -> "WireClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path, limit=MAX_REQUEST_BYTES
            )
        return self

    async def aclose(self) -> None:
        if self._writer is None:
            return
        writer, self._writer, self._reader = self._writer, None, None
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

    async def __aenter__(self) -> "WireClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def request(self, obj: dict) -> dict:
        """Send one raw request object, await its reply (not rehydrated)."""
        if self._writer is None:
            await self.connect()
        self._writer.write((json.dumps(obj) + "\n").encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ReproError("service closed the connection without replying")
        return json.loads(line)

    async def compute(self, op: str, image, *, wire: str | None = None,
                      trace: TraceContext | None = None, **params) -> np.ndarray:
        """One compute round trip; returns the result array.

        Raises the same typed errors the in-process client would.
        """
        if op not in OPS:
            raise _errors.ValidationError(
                f"unknown service op {op!r}; known: {list(OPS)}"
            )
        wire = self.wire if wire is None else wire
        self._next_id += 1
        obj = {
            "id": self._next_id,
            "op": op,
            "params": dict(params),
            "wire": wire,
            "trace": (trace if trace is not None else TraceContext.mint()).to_wire(),
        }
        seg = None
        try:
            if isinstance(image, ShmDescriptor):
                obj["image"] = {"shm": image.to_wire()}
            elif wire == "shmem":
                seg, desc = mint_shared_image(np.asarray(image))
                obj["image"] = {"shm": desc.to_wire()}
            else:
                obj["image"] = encode_array(np.asarray(image))
            reply = raise_reply_error(await self.request(obj))
        finally:
            # The request segment outlived its answer; a cache hit never
            # read it, a miss is done with it -- either way it dies now.
            if seg is not None:
                seg.close()
                seg.unlink()
        return await self._materialize_result(reply["result"])

    async def _materialize_result(self, result) -> np.ndarray:
        """Decode a reply payload; shmem replies are copied, verified,
        and released (on this same connection, which owns them)."""
        if isinstance(result, dict) and "shm" in result:
            desc = ShmDescriptor.from_wire(result["shm"])
            try:
                seg = SharedNDArray.attach_descriptor(desc)
                try:
                    out = np.array(seg.array, copy=True)
                finally:
                    seg.close()
                verify_descriptor_digest(desc, out)
            finally:
                with contextlib.suppress(ReproError):
                    raise_reply_error(
                        await self.request({"op": "shm_release", "name": desc.name})
                    )
            return out
        return decode_array(result)


async def compute_over_socket(socket_path: str, op: str, image, *,
                              wire: str = "ndjson",
                              trace: TraceContext | None = None,
                              **params) -> np.ndarray:
    """One-shot convenience: connect, compute once, tear down."""
    async with WireClient(socket_path, wire=wire) as client:
        return await client.compute(op, image, trace=trace, **params)

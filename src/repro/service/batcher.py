"""Micro-batching: coalesce compatible requests into single dispatches.

The process pool underneath the service charges a fixed cost per
fan-out (pickling, queue wakeups, the dispatch barrier in
:func:`repro.runtime.dispatch.run_tasks`).  Serving each request as its
own dispatch pays that cost per request; batching pays it once per
*window*.  This is the serving-side analogue of the BSP superstep:
requests that arrive within ``max_delay_s`` of each other and agree on
(op, params) ride one dispatch, up to ``max_batch`` per batch.

Compatibility is by **batch key** -- the op name plus its canonical
parameter tuple -- because only same-shaped work can share a task
function sensibly (a histogram with ``k=256`` and one with ``k=64``
produce differently-typed results and would defeat downstream caching
of the batch layout).  Incompatible requests are never delayed by each
other: each key gets its own window.

The batcher is a single asyncio consumer; flushes hand the batch to an
``execute`` coroutine (the pool executor) as a background task, so a
slow batch never stalls the accumulation of the next one.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.obs.events import (
    CAT_REQUEST,
    SVC_BATCH_SIZE,
    SVC_EXPIRED,
    SVC_QUEUE_SPAN,
    SVC_QUEUE_WAIT,
)
from repro.obs.runtime import WallRecorder, instant_or_null
from repro.service.admission import AdmissionQueue, PendingRequest
from repro.service.instruments import ServiceInstruments
from repro.utils.errors import TaskTimeoutError, ValidationError

#: Default cap on requests coalesced into one dispatch.
DEFAULT_MAX_BATCH = 8

#: Default batching window: how long the first request of a batch may
#: wait for company before the batch is flushed anyway.
DEFAULT_MAX_DELAY_S = 0.002


@dataclass(frozen=True)
class BatchKey:
    """What must agree for two requests to share a dispatch."""

    op: str
    params: tuple


@dataclass
class BatcherStats:
    batches: int = 0
    requests: int = 0
    max_batch: int = 0
    expired: int = 0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "expired": self.expired,
        }


class _Bucket:
    """Requests accumulating toward one flush, plus their window."""

    __slots__ = ("requests", "flush_at", "opened_at")

    def __init__(self, flush_at: float, opened_at: float):
        self.requests: list[PendingRequest] = []
        self.flush_at = flush_at
        self.opened_at = opened_at


class MicroBatcher:
    """Single-consumer batching loop between admission and execution.

    ``execute(key, requests)`` is awaited in a background task per
    flushed batch; it owns resolving each request's future.  Run
    :meth:`run` as an asyncio task; cancel it to stop (remaining
    buckets are flushed on the way out so no admitted request is ever
    silently dropped).
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        execute: Callable[[BatchKey, list[PendingRequest]], Awaitable[None]],
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        recorder: WallRecorder | None = None,
        instruments: ServiceInstruments | None = None,
    ):
        if max_batch <= 0:
            raise ValidationError("max_batch must be positive")
        if max_delay_s < 0:
            raise ValidationError("max_delay_s must be non-negative")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.stats = BatcherStats()
        self._queue = queue
        self._execute = execute
        self._recorder = recorder
        self._instruments = instruments
        self._buckets: dict[BatchKey, _Bucket] = {}
        self._inflight: set[asyncio.Task] = set()

    async def run(self) -> None:
        """Consume admitted requests forever (until cancelled)."""
        try:
            while True:
                timeout = self._next_flush_in()
                try:
                    req = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    self._flush_due()
                    continue
                self._absorb(req)
                self._flush_due()
        finally:
            # Cancellation path: flush everything accumulated so far,
            # then let in-flight executions finish resolving futures.
            for key in list(self._buckets):
                self._flush(key)
            if self._inflight:
                await asyncio.gather(*self._inflight, return_exceptions=True)

    def _absorb(self, req: PendingRequest) -> None:
        now = time.monotonic()
        if req.expired(now):
            self.stats.expired += 1
            instant_or_null(
                self._recorder, SVC_EXPIRED, op=req.op, waited_s=req.waited_s(now)
            )
            if self._instruments is not None:
                self._instruments.expired()
            if not req.future.done():
                req.future.set_exception(
                    TaskTimeoutError(
                        f"request deadline expired after {req.waited_s(now):.3f}s "
                        f"in the service queue",
                        site="svc:queue",
                    )
                )
            return
        waited = req.waited_s(now)
        if self._recorder is not None:
            self._recorder.count(SVC_QUEUE_WAIT, waited)
            if req.trace is not None:
                # The wait is over *now*; anchor the span by its end so
                # the monotonic-clock wait composes with the recorder's
                # perf_counter epoch.
                end = time.perf_counter() - self._recorder.epoch
                ctx = req.trace.child()
                self._recorder.log.add_span(
                    SVC_QUEUE_SPAN, req.trace.lane, end - waited, waited,
                    cat=CAT_REQUEST, op=req.op, **ctx.span_args(),
                )
        key = BatchKey(req.op, req.params)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(now + self.max_delay_s, now)
        bucket.requests.append(req)
        if len(bucket.requests) >= self.max_batch:
            self._flush(key)

    def _next_flush_in(self) -> float | None:
        if not self._buckets:
            return None
        now = time.monotonic()
        return max(min(b.flush_at for b in self._buckets.values()) - now, 0.0)

    def _flush_due(self) -> None:
        now = time.monotonic()
        for key in [k for k, b in self._buckets.items() if now >= b.flush_at]:
            self._flush(key)

    def _flush(self, key: BatchKey) -> None:
        bucket = self._buckets.pop(key)
        if not bucket.requests:
            return
        self.stats.batches += 1
        self.stats.requests += len(bucket.requests)
        self.stats.max_batch = max(self.stats.max_batch, len(bucket.requests))
        if self._recorder is not None:
            self._recorder.count(SVC_BATCH_SIZE, len(bucket.requests))
        if self._instruments is not None:
            self._instruments.batch_flushed(
                len(bucket.requests), time.monotonic() - bucket.opened_at
            )
        task = asyncio.ensure_future(self._execute(key, bucket.requests))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

"""The asyncio serving core: service, executor, client, and socket front-end.

Layering (request path, top to bottom)::

    socket front-end / in-process Client
        -> BatchService.submit      (validate, cache, coalesce, admit)
        -> AdmissionQueue           (bounded; sheds with ServiceOverloadError)
        -> MicroBatcher             (same-op/params window -> one batch)
        -> BatchExecutor            (one run_tasks dispatch on a shared
                                     PoolSupervisor; degrades to serial)

The event loop only ever *schedules*; the blocking pool dispatch runs
in a worker thread (``loop.run_in_executor``) so socket accepts, cache
hits, and shedding decisions stay responsive while a batch computes.
Results flow back through per-request asyncio futures.

Identical concurrent requests are **coalesced**: when caching is on
and a request's content key matches one already being computed, the
newcomer awaits the in-flight future instead of re-entering the queue
-- a repeated-image burst costs one computation however many clients
send it.

The wire protocol of the socket front-end is newline-delimited JSON;
see :func:`encode_array` / :func:`decode_array` for the ndarray
encoding and ``docs/SERVICE.md`` for the full request/response shapes.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import math
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan
from repro.kernels import resolve_backend
from repro.obs import trace as _trace
from repro.obs.events import (
    CAT_REQUEST,
    CAT_ROUND,
    CLIENT_REQUEST,
    SVC_BATCH,
    SVC_CACHE_EVICT,
    SVC_CACHE_HIT,
    SVC_CACHE_MISS,
    SVC_DEGRADED,
    SVC_REQUEST,
)
from repro.obs.export import chrome_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import WallRecorder, instant_or_null
from repro.obs.trace import TraceContext
from repro.runtime.dispatch import (
    PoolSupervisor,
    resolve_retries,
    resolve_timeout,
    run_tasks,
)
from repro.runtime.parallel import _pool_context
from repro.runtime.shmem import ShmArena, ShmDescriptor
from repro.service.admission import (
    DEFAULT_QUEUE_DEPTH,
    AdmissionQueue,
    PendingRequest,
)
from repro.service.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_S,
    BatchKey,
    MicroBatcher,
)
from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    ResultCache,
    image_digest,
    result_key,
)
from repro.service.instruments import ServiceInstruments
from repro.service.ops import (
    OPS,
    canonical_params,
    check_request_image,
    compute,
    materialize_request_image,
    svc_init,
    svc_task,
)
from repro.utils import errors as _errors
from repro.utils.aio import cancel_and_reap
from repro.utils.errors import (
    FaultError,
    ReproError,
    ServiceClosedError,
    ServiceDrainingError,
    ValidationError,
)


@dataclass
class ServiceConfig:
    """Everything tunable about a :class:`BatchService`.

    ``timeout_s`` / ``retries`` default through
    :func:`~repro.runtime.dispatch.resolve_timeout` /
    :func:`~repro.runtime.dispatch.resolve_retries`, so
    ``REPRO_TASK_TIMEOUT`` and ``REPRO_TASK_RETRIES`` govern the
    service exactly as they govern the batch runtime underneath it.
    """

    workers: int = 2
    kernel: str | None = None
    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    cache: bool = True
    cache_entries: int = DEFAULT_MAX_ENTRIES
    cache_bytes: int = DEFAULT_MAX_BYTES
    timeout_s: float | None = None
    retries: int | None = None
    fault_plan: FaultPlan | None = None
    degrade: bool = True
    #: Maintain the live metrics plane (counters / gauges / latency
    #: histograms; the ``metrics`` control op).  Off = zero overhead.
    metrics: bool = True
    #: How long :meth:`BatchService.stop` waits for in-flight requests
    #: to finish before tearing the batcher down.  New requests shed
    #: with :class:`~repro.utils.errors.ServiceDrainingError` the whole
    #: time, so the wait is bounded by the work already admitted.
    drain_deadline_s: float = 5.0

    def __post_init__(self):
        if self.workers < 1:
            raise ValidationError("service needs at least one worker")
        if self.drain_deadline_s < 0:
            raise ValidationError("drain_deadline_s must be non-negative")
        self.kernel = resolve_backend(self.kernel)
        self.timeout_s = resolve_timeout(self.timeout_s)
        self.retries = resolve_retries(self.retries)


@dataclass
class ExecutorStats:
    batches: int = 0
    tasks: int = 0
    degraded: int = 0

    def snapshot(self) -> dict:
        return {"batches": self.batches, "tasks": self.tasks, "degraded": self.degraded}


class BatchExecutor:
    """Runs coalesced batches on one shared, supervised process pool.

    One batch of *n* compatible requests becomes one
    :func:`~repro.runtime.dispatch.run_tasks` dispatch of *n* tasks --
    the fixed fan-out cost (pickling, pool wakeup, the collection
    barrier) is paid once per batch instead of once per request.  The
    pool persists across batches; a deadline-missing batch respawns it
    through the supervisor exactly as the batch runtime does.

    When recovery is exhausted (:class:`~repro.utils.errors.FaultError`
    from the dispatcher) and ``degrade`` is on, the batch is re-run
    serially in-process: slower, but every request still gets its
    bit-identical answer -- degraded *serving*, not an outage.
    """

    def __init__(self, config: ServiceConfig, recorder: WallRecorder | None = None,
                 instruments: ServiceInstruments | None = None):
        self._config = config
        self._recorder = recorder
        self._instruments = instruments
        self._lock = threading.Lock()
        self._supervisor: PoolSupervisor | None = None
        self.stats = ExecutorStats()

    def start(self) -> None:
        """Create the worker pool eagerly (pre-fork before threads spawn)."""
        if self._supervisor is not None:
            return
        ctx = _pool_context()
        obs = None
        if self._recorder is not None:
            self._recorder.make_queue(ctx)
            obs = self._recorder.worker_init_args()
        self._supervisor = PoolSupervisor(
            ctx,
            self._config.workers,
            initializer=svc_init,
            initargs=(self._config.kernel, obs, self._config.fault_plan),
            recorder=self._recorder,
        )
        self._supervisor.pool  # noqa: B018 - touch to build the pool now

    def close(self) -> None:
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    @property
    def respawns(self) -> int:
        return self._supervisor.respawns if self._supervisor is not None else 0

    def execute_batch(self, key: BatchKey, payloads: list,
                      trace: TraceContext | None = None) -> list:
        """Dispatch one batch (blocking; called from a worker thread)."""
        if self._supervisor is None:
            raise ServiceClosedError("executor is not started")
        with self._lock:
            self.stats.batches += 1
            self.stats.tasks += len(payloads)
            t0 = time.perf_counter()
            try:
                return run_tasks(
                    self._supervisor,
                    svc_task,
                    payloads,
                    site="svc:exec",
                    timeout=self._config.timeout_s,
                    max_retries=self._config.retries,
                    recorder=self._recorder,
                    trace=trace,
                )
            except FaultError as exc:
                if not self._config.degrade:
                    raise
                self.stats.degraded += 1
                instant_or_null(
                    self._recorder,
                    SVC_DEGRADED,
                    op=key.op,
                    batch=len(payloads),
                    error=type(exc).__name__,
                )
                if self._instruments is not None:
                    self._instruments.degraded()
                # The serial fallback runs on this thread; activating
                # the batch context here lets kernel spans still parent
                # into the request tree (via the driver span sink).
                with _trace.activate(trace):
                    return [self._serial(payload) for payload in payloads]
            finally:
                if self._instruments is not None:
                    self._instruments.exec_done(key.op, time.perf_counter() - t0)

    def _serial(self, payload) -> tuple:
        index, op, image, params, _ctx = payload
        try:
            # Descriptor requests materialize here too (the degrade path
            # runs on the driver, where the segment is just as visible);
            # a corrupt segment surfaces as this request's own typed
            # CorruptPayloadError marker, not a batch-level failure.
            image = materialize_request_image(image, task=index)
            return ("ok", compute(op, image, params, self._config.kernel))
        except ReproError as exc:
            return ("err", type(exc).__name__, str(exc))


def _worker_error(name: str, message: str) -> ReproError:
    """Rehydrate a worker error marker into its original typed error.

    Workers report op failures as ``("err", type_name, message)``
    markers (see :func:`~repro.service.ops.svc_task`); re-raising them
    all as :class:`ValidationError` would mislabel genuine runtime
    faults as client input errors, so the original type is looked up in
    the error hierarchy and only unknown names fall back to the base
    :class:`ReproError`.
    """
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(f"request failed in worker: {message}")
    return ReproError(f"request failed in worker ({name}): {message}")


class ServiceStats:
    """Top-level request counters of a :class:`BatchService`."""

    def __init__(self):
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.coalesced = 0


class BatchService:
    """The in-process serving core; see the module docstring for layering.

    Lifecycle::

        service = BatchService(ServiceConfig(workers=4))
        await service.start()
        hist = await service.submit("histogram", image, k=256)
        ...
        await service.stop()

    All coroutine methods must be called on one event loop (the one
    :meth:`start` ran on).  For synchronous callers there is
    :class:`Client`, which owns a loop thread.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 recorder: WallRecorder | None = None):
        self.config = config or ServiceConfig()
        self.recorder = recorder
        self.stats = ServiceStats()
        self.metrics = MetricsRegistry() if self.config.metrics else None
        self.instruments = (
            ServiceInstruments(self.metrics) if self.metrics is not None else None
        )
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            max_bytes=self.config.cache_bytes,
        ) if self.config.cache else None
        self.executor = BatchExecutor(self.config, recorder, self.instruments)
        self._admission: AdmissionQueue | None = None
        self._batcher: MicroBatcher | None = None
        self._batcher_task: asyncio.Task | None = None
        #: key -> (future, lead request span id) for in-flight coalescing.
        self._inflight: dict[str, tuple[asyncio.Future, str | None]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self._draining = False
        #: Requests currently inside :meth:`submit` (admitted or about
        #: to be); the drain protocol waits on this, not on queue sizes,
        #: so a request between queues cannot be raced to cancellation.
        self._open_requests = 0
        self._prev_sink = None

    @property
    def running(self) -> bool:
        return self._batcher_task is not None and not self._closed

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        if self.running:
            return
        self._closed = False
        self._draining = False
        self._loop = asyncio.get_running_loop()
        self.executor.start()
        if self.recorder is not None:
            # Driver-side traced_span calls (serial-degrade kernels)
            # need somewhere to land; restored on stop().
            self._prev_sink = _trace.set_span_sink(self.recorder.span_sink())
        self._admission = AdmissionQueue(
            depth=self.config.queue_depth,
            timeout_s=self.config.timeout_s,
            recorder=self.recorder,
            instruments=self.instruments,
        )
        self._batcher = MicroBatcher(
            self._admission,
            self._execute,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            recorder=self.recorder,
            instruments=self.instruments,
        )
        self._batcher_task = asyncio.ensure_future(self._batcher.run())

    def begin_drain(self) -> None:
        """Stop admitting: every new :meth:`submit` sheds immediately
        with :class:`~repro.utils.errors.ServiceDrainingError` while
        already-admitted requests keep flowing toward their futures."""
        self._draining = True

    async def drain(self, deadline_s: float | None = None) -> bool:
        """Drain in-flight requests; True when all of them resolved.

        Sheds new work, then waits -- bounded by ``deadline_s``
        (default :attr:`ServiceConfig.drain_deadline_s`) -- until no
        request is still inside :meth:`submit`.  The batcher stays up
        throughout, so queued requests finish as final batches rather
        than racing a cancellation.
        """
        self.begin_drain()
        budget = (
            self.config.drain_deadline_s if deadline_s is None else deadline_s
        )
        deadline = time.monotonic() + budget
        while self._open_requests:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, then tear the pool down.

        Admitted requests get up to the drain deadline to resolve
        before the batcher is cancelled -- ``stop()`` no longer races
        pending futures; only requests still stuck *past* the deadline
        fall through to the cancellation flush below.
        """
        if self._batcher_task is None:
            return
        await self.drain()
        self._closed = True
        # Hand still-queued requests to the batcher before cancelling so
        # its cancellation path flushes them as final batches.
        task, self._batcher_task = self._batcher_task, None
        await asyncio.sleep(0)
        for req in self._admission.drain_nowait():
            self._batcher._absorb(req)
        # Not a plain ``await task``: the batcher parks in wait_for
        # (batch-window timeouts), which on 3.11 can swallow the first
        # cancel if it lands as the window expires; cancel_and_reap
        # re-cancels until the task actually finishes.
        await cancel_and_reap(task)
        self.executor.close()
        if self.recorder is not None:
            _trace.set_span_sink(self._prev_sink)
            self._prev_sink = None
            self.recorder.drain()

    async def submit(self, op: str, image, *, trace: TraceContext | None = None,
                     **params) -> np.ndarray:
        """Serve one request; returns the result array (caller-owned).

        ``image`` is either an ndarray (validated and digested here) or
        a :class:`~repro.runtime.shmem.ShmDescriptor` naming a shared
        segment the caller has already written and digested -- the
        zero-copy path, where pixels are only touched by the worker
        serving a cache miss.

        ``trace`` is the request's trace context (e.g. parsed off the
        wire by the socket front-end).  With a recorder attached a
        context is minted when none is given, so every served request
        becomes one connected span tree; without a recorder tracing is
        off and ``trace`` is carried but unrecorded.

        Raises :class:`~repro.utils.errors.ValidationError` for a bad
        request, :class:`~repro.utils.errors.ServiceOverloadError` when
        shed, :class:`~repro.utils.errors.TaskTimeoutError` when the
        request's deadline expires, and
        :class:`~repro.utils.errors.ServiceClosedError` after
        :meth:`stop`.
        """
        if not self.running:
            raise ServiceClosedError("service is not running (call start())")
        if self._draining:
            raise ServiceDrainingError(
                "service is draining for shutdown; retry against another shard"
            )
        self._open_requests += 1
        self.stats.requests += 1
        t0 = time.perf_counter()
        if trace is None:
            trace = _trace.current()
        req_ctx = None
        if self.recorder is not None:
            # A caller-supplied context gets a child span; a locally
            # minted one IS the request span (no parentless root id).
            req_ctx = TraceContext.mint() if trace is None else trace.child()
        handle = None
        if req_ctx is not None:
            handle = self.recorder.begin(
                SVC_REQUEST, lane=req_ctx.lane, cat=CAT_REQUEST,
                op=str(op), **req_ctx.span_args(),
            )
        if self.instruments is not None:
            self.instruments.request_started(op)
        via = "error"
        try:
            result, via = await self._serve_request(op, image, params, req_ctx, handle)
            return result
        except Exception as exc:
            if self.instruments is not None:
                self.instruments.request_error(op, exc)
            raise
        finally:
            self._open_requests -= 1
            if handle is not None:
                handle.finish(via=via)
            if self.instruments is not None:
                self.instruments.request_finished(op, time.perf_counter() - t0)

    async def _serve_request(self, op, image, params,
                             req_ctx: TraceContext | None, handle=None) -> tuple:
        """The cache / coalesce / admit path; returns ``(result, via)``.

        A :class:`~repro.runtime.shmem.ShmDescriptor` image is the
        zero-copy path: no pixel is read on this thread -- validation
        of the actual bytes happens in the worker that materializes the
        segment, and the cache key reuses the digest the *client*
        already computed.  A cache hit therefore costs zero segment
        reads (the regression test holds us to that by unlinking the
        segment before the second request).
        """
        descriptor = isinstance(image, ShmDescriptor)
        if descriptor:
            canonical = canonical_params(op, None, params)
        else:
            image = check_request_image(image)
            canonical = canonical_params(op, image, params)
        key = None
        if self.cache is not None:
            t_lookup = time.perf_counter()
            digest = image.digest if descriptor else image_digest(image)
            key = result_key(digest, op, canonical)
            hit = self.cache.get(key)
            if self.instruments is not None:
                self.instruments.cache_lookup(
                    time.perf_counter() - t_lookup, hit=hit is not None
                )
            # The cache outcome rides the request span (``via=...``) and
            # the registry counters; the timeline count events are only
            # worth their cost when a recorder runs without metrics.
            count_events = self.recorder is not None and self.instruments is None
            if hit is not None:
                if count_events:
                    self.recorder.count(SVC_CACHE_HIT, 1)
                self.stats.completed += 1
                return np.array(hit, copy=True), "cache"
            if count_events:
                self.recorder.count(SVC_CACHE_MISS, 1)
            inflight = self._inflight.get(key)
            if inflight is not None:
                in_future, lead_span = inflight
                self.stats.coalesced += 1
                if self.instruments is not None:
                    self.instruments.coalesced()
                if handle is not None and lead_span is not None:
                    # Tie this request's span tree to the lead request
                    # (whose tree contains the actual batch span).
                    handle.args["coalesced_onto"] = lead_span
                try:
                    result = await asyncio.shield(in_future)
                except Exception:
                    self.stats.errors += 1
                    raise
                self.stats.completed += 1
                return np.array(result, copy=True), "coalesced"
        future = self._loop.create_future()
        req = PendingRequest(op=op, image=image, params=canonical,
                             future=future, key=key, trace=req_ctx)
        try:
            self._admission.admit(req)  # raises ServiceOverloadError when full
        except Exception:
            self.stats.errors += 1
            raise
        if key is not None:
            self._inflight[key] = (
                future, req_ctx.span_id if req_ctx is not None else None
            )
            future.add_done_callback(self._make_finalizer(key))
        try:
            result = await asyncio.shield(future)
        except Exception:
            self.stats.errors += 1
            raise
        self.stats.completed += 1
        return np.array(result, copy=True), "batched"

    @staticmethod
    def _task_wire(req: PendingRequest, batch_ctx: TraceContext | None):
        """The trace context a worker task should activate, wire-encoded.

        The context keeps the member request's ``trace_id`` but the
        batch span's ``span_id``, so the worker's task span (a child of
        the activated context) parents under the batch span while
        staying inside the request's trace.
        """
        if req.trace is None or batch_ctx is None:
            return None
        return TraceContext(
            trace_id=req.trace.trace_id,
            span_id=batch_ctx.span_id,
            parent_id=batch_ctx.parent_id,
        ).to_wire()

    def _make_finalizer(self, key: str):
        def _done(fut: asyncio.Future) -> None:
            self._inflight.pop(key, None)
            if self.cache is None or fut.cancelled() or fut.exception() is not None:
                return
            before = self.cache.stats.evictions
            self.cache.put(key, fut.result())
            evicted = self.cache.stats.evictions - before
            if evicted and self.recorder is not None:
                self.recorder.count(SVC_CACHE_EVICT, evicted)
            if self.instruments is not None:
                self.instruments.cache_evicted(evicted)
                self.instruments.cache_size(
                    len(self.cache), self.cache.stats.bytes
                )
        return _done

    async def _execute(self, batch_key: BatchKey, requests: list[PendingRequest]) -> None:
        """Batcher callback: run one batch and resolve its futures.

        The batch span is a child of the *lead* (first traced) request
        and carries ``links`` to every member request's span id, so one
        dispatch serving five coalesced requests is one span with five
        back-references instead of five disconnected trees.  Each task
        payload carries a wire context whose span id *is* the batch
        span (with the member request's own trace id), so worker task
        spans parent into the batch across the process boundary.
        """
        lead = next((r for r in requests if r.trace is not None), None)
        batch_ctx = (
            lead.trace.child()
            if lead is not None and self.recorder is not None
            else None
        )
        payloads = [
            (i, req.op, req.image, req.params, self._task_wire(req, batch_ctx))
            for i, req in enumerate(requests)
        ]
        t0 = time.perf_counter()
        try:
            markers = await asyncio.get_running_loop().run_in_executor(
                None, self.executor.execute_batch, batch_key, payloads, batch_ctx
            )
        except Exception as exc:  # FaultError with degrade off, or a real bug
            for req in requests:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        finally:
            if self.recorder is not None:
                t1 = time.perf_counter()
                span_args = dict(op=batch_key.op, batch=len(requests))
                lane = "driver"
                if batch_ctx is not None:
                    lane = lead.trace.lane
                    span_args.update(batch_ctx.span_args())
                    span_args["links"] = [
                        r.trace.span_id for r in requests if r.trace is not None
                    ]
                self.recorder.log.add_span(
                    SVC_BATCH, lane, t0 - self.recorder.epoch, t1 - t0,
                    cat=CAT_ROUND, **span_args,
                )
        for req, marker in zip(requests, markers):
            if req.future.done():
                continue
            if marker[0] == "ok":
                req.future.set_result(marker[1])
            else:
                _tag, name, message = marker
                req.future.set_exception(_worker_error(name, message))

    def snapshot(self) -> dict:
        """All layer stats as one JSON-ready dict.

        ``schema`` versions the shape: v2 added the schema field
        itself, the cache ``hit_rate``, the admission
        ``depth_highwater``, and the per-op ``latency`` quantiles
        (present only when the metrics plane is on).
        """
        out = {
            "schema": "repro-service-stats/v2",
            "service": {
                "requests": self.stats.requests,
                "completed": self.stats.completed,
                "errors": self.stats.errors,
                "coalesced": self.stats.coalesced,
                "running": self.running,
                "draining": self._draining,
                "open_requests": self._open_requests,
            },
            "executor": {**self.executor.stats.snapshot(),
                         "respawns": self.executor.respawns},
            "config": {
                "workers": self.config.workers,
                "kernel": self.config.kernel,
                "max_batch": self.config.max_batch,
                "max_delay_s": self.config.max_delay_s,
                "queue_depth": self.config.queue_depth,
                "cache": self.config.cache,
                "timeout_s": self.config.timeout_s,
                "retries": self.config.retries,
            },
        }
        if self._admission is not None:
            out["admission"] = self._admission.stats.snapshot()
        if self._batcher is not None:
            out["batcher"] = self._batcher.stats.snapshot()
        if self.cache is not None:
            out["cache"] = self.cache.stats.snapshot()
        if self.instruments is not None:
            out["latency"] = self.instruments.latency_summary()
        return out


class Client:
    """Synchronous in-process facade over a :class:`BatchService`.

    Owns a private event loop on a daemon thread, so plain scripts (and
    thread-based load generators) can use the batching service without
    writing any asyncio::

        with Client(ServiceConfig(workers=4)) as client:
            hist = client.submit("histogram", image, k=256)

    ``submit`` is thread-safe: many threads sharing one client become
    concurrent requests on the service's loop -- which is exactly what
    the micro-batcher wants to see.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 recorder: WallRecorder | None = None):
        self.service = BatchService(config, recorder=recorder)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service", daemon=True
        )
        self._started = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> "Client":
        if not self._started:
            self._thread.start()
            self._call(self.service.start())
            self._started = True
        return self

    def close(self) -> None:
        if self._started:
            self._call(self.service.stop())
            self._started = False
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop.close()

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def submit(self, op: str, image, **params) -> np.ndarray:
        """Blocking submit; raises the same typed errors as the service."""
        if not self._started:
            raise ServiceClosedError("client is not started (use 'with Client(...)')")
        return self._call(self.service.submit(op, image, **params))

    def stats(self) -> dict:
        return self.service.snapshot()

    def __enter__(self) -> "Client":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# -- socket front-end --------------------------------------------------------

#: Hard cap on one wire request line (64 MiB of base64 covers a
#: 4096x4096 int16 image; anything bigger is a client bug or an attack).
MAX_REQUEST_BYTES = 64 << 20

#: Longest usable unix socket path: ``sockaddr_un.sun_path`` is 108
#: bytes on Linux *including* the trailing NUL.  ``bind()`` past it
#: fails with a bare OSError naming neither the limit nor the path;
#: tmpdir-nested shard sockets (pytest tmp_path, mkdtemp under a deep
#: CWD) hit this in practice, so it is validated at config time.
SUN_PATH_MAX = 107


def check_socket_path(path) -> str:
    """Validate a unix socket path against the ``sun_path`` limit.

    Returns the path as ``str``; raises
    :class:`~repro.utils.errors.ValidationError` (instead of the raw
    ``OSError`` a late ``bind()`` would give) when its *encoded* length
    exceeds :data:`SUN_PATH_MAX` bytes.
    """
    path = os.fspath(path)
    if isinstance(path, bytes):
        encoded, path = path, os.fsdecode(path)
    else:
        encoded = os.fsencode(path)
    if len(encoded) > SUN_PATH_MAX:
        raise ValidationError(
            f"unix socket path is {len(encoded)} bytes, over the "
            f"{SUN_PATH_MAX}-byte sun_path limit: {path!r} -- bind under a "
            f"shorter directory (e.g. /tmp)"
        )
    return path

#: ndarray dtypes accepted from the wire.
WIRE_DTYPES = ("uint8", "int8", "uint16", "int16", "int32", "int64")

#: Wire encodings a request may ask its reply in.  ``ndjson`` is the
#: portable fallback (base64 pixels inline in the JSON line); ``shmem``
#: carries only a segment descriptor -- pixels never touch the socket.
WIRES = ("ndjson", "shmem")


def encode_array(arr: np.ndarray) -> dict:
    """JSON-encodable form of an ndarray (shape, dtype, base64 bytes)."""
    arr = np.ascontiguousarray(arr)
    return {
        "shape": list(arr.shape),
        "dtype": str(arr.dtype),
        "data_b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(obj: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`, with strict validation."""
    if not isinstance(obj, dict):
        raise ValidationError("array encoding must be an object")
    dtype = obj.get("dtype")
    if dtype not in WIRE_DTYPES:
        raise ValidationError(f"unsupported wire dtype {dtype!r}; known: {list(WIRE_DTYPES)}")
    shape = obj.get("shape")
    if (not isinstance(shape, list) or not shape
            or any(not isinstance(d, int) or d <= 0 for d in shape)):
        raise ValidationError("array 'shape' must be a list of positive ints")
    try:
        raw = base64.b64decode(obj.get("data_b64", ""), validate=True)
    except Exception:
        raise ValidationError("array 'data_b64' is not valid base64") from None
    # math.prod keeps arbitrary precision: np.prod would wrap at int64
    # on adversarial shapes and let the length check pass spuriously.
    expected = math.prod(shape) * np.dtype(dtype).itemsize
    if expected > MAX_REQUEST_BYTES:
        raise ValidationError(
            f"array of shape {shape} ({expected} bytes) exceeds the "
            f"{MAX_REQUEST_BYTES} byte request cap"
        )
    if len(raw) != expected:
        raise ValidationError(
            f"array payload is {len(raw)} byte(s), expected {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _materialize_image(obj):
    """An image from the wire: shm descriptor, explicit array, or a
    named test pattern."""
    if isinstance(obj, dict) and "shm" in obj:
        # The zero-copy request form: {"shm": {name, dtype, shape,
        # digest}}.  Only the descriptor is validated here; the pixels
        # stay untouched until a worker serves a cache miss.
        return ShmDescriptor.from_wire(obj["shm"])
    if isinstance(obj, dict) and "pattern" in obj:
        from repro.images import binary_test_image, darpa_like

        pattern = obj["pattern"]
        size = obj.get("size", 64)
        if not isinstance(pattern, int) or not 0 <= pattern <= 9:
            raise ValidationError("'pattern' must be an integer in 0..9")
        if not isinstance(size, int) or size <= 0:
            raise ValidationError("'size' must be a positive integer")
        if pattern == 0:
            levels = obj.get("levels", 256)
            if not isinstance(levels, int) or isinstance(levels, bool) or levels < 8:
                raise ValidationError("'levels' must be an integer >= 8")
            return darpa_like(size, levels)
        return binary_test_image(pattern, size)
    return decode_array(obj)


class ServiceServer:
    """Newline-delimited-JSON front-end on a local (unix-domain) socket.

    One request object per line in, one response object per line out;
    responses carry the request's ``id`` (if any) so clients may
    pipeline.  Ops: the three compute ops plus ``ping``, ``stats``,
    ``shm_release``, and ``shutdown`` (which stops the server after
    responding).

    **Shared-memory replies.**  A compute request with ``"wire":
    "shmem"`` (the default when its image arrived as a descriptor) gets
    its result in a server-minted segment: the reply carries ``{"shm":
    descriptor}`` and the client owes one ``shm_release`` for that
    segment name, on the *same connection*.  Segment lifetime is pinned
    to the connection that requested it -- whatever a client fails to
    release is torn down when it disconnects, and :meth:`stop` releases
    everything, so no reply segment can outlive the server (the
    leakcheck contract).
    """

    def __init__(self, service: BatchService, socket_path: str, *,
                 shard_id: int | None = None):
        self.service = service
        self.socket_path = check_socket_path(socket_path)
        #: Position of this server in a sharded tier (``None`` when it
        #: serves alone).  Echoed in ``ping`` and ``stats`` replies so
        #: the router's health probes confirm they reached the shard
        #: they think they did.
        self.shard_id = shard_id
        #: Owner of every reply segment this server ever mints.
        self.arena = ShmArena()
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        await self.service.start()
        # Without an explicit limit the StreamReader caps lines at 64 KiB
        # and readline() raises ValueError on anything longer -- even a
        # modest base64 image would drop the connection unanswered.
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path, limit=MAX_REQUEST_BYTES
        )

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`trigger_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def trigger_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        self.arena.release_all()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Reply segments minted for this connection and not yet released
        # by the client; reclaimed below however the connection ends.
        owned: set[str] = set()
        try:
            # The loop survives a shutdown request on purpose: while the
            # service drains, compute requests still deserve their typed
            # ServiceDrainingError reply (so a router can retry them
            # elsewhere) rather than a silently dropped connection.
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except (ValueError, asyncio.IncompleteReadError):
                    # A line past the stream limit surfaces as ValueError
                    # (readline wraps LimitOverrunError); the stream can't
                    # be resynced mid-line, so reply once and hang up.
                    writer.write(_error_line(None, ValidationError(
                        f"request too large (limit {MAX_REQUEST_BYTES} bytes)"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line, owned)
                writer.write(response)
                await writer.drain()
        finally:
            for name in owned:
                # Raced releases (client released right as it hung up,
                # or stop() already swept the arena) are fine here.
                with contextlib.suppress(ValidationError):
                    self.arena.release(name)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(self, line: bytes, owned: set[str] | None = None) -> bytes:
        req_id = None
        try:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"request is not valid JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ValidationError("request must be a JSON object")
            req_id = obj.get("id")
            op = obj.get("op")
            if op == "ping":
                if self.shard_id is None:
                    return _ok_line(req_id, "pong")
                return _ok_line(req_id, {
                    "pong": True,
                    "shard_id": self.shard_id,
                    "draining": self.service.draining,
                })
            if op == "stats":
                snap = self.service.snapshot()
                if self.shard_id is not None:
                    snap["shard"] = {"id": self.shard_id}
                return _ok_line(req_id, snap)
            if op == "metrics":
                if self.service.metrics is None:
                    raise ValidationError(
                        "metrics are disabled (ServiceConfig.metrics=False)"
                    )
                return _ok_line(req_id, self.service.metrics.prometheus_text())
            if op == "trace":
                if self.service.recorder is None:
                    raise ValidationError(
                        "tracing is off (the server was started without a recorder)"
                    )
                self.service.recorder.drain()
                return _ok_line(req_id, chrome_trace(self.service.recorder.log))
            if op == "shm_release":
                name = obj.get("name")
                if not isinstance(name, str):
                    raise ValidationError("'name' must be a segment name string")
                self.arena.release(name)  # unknown/double -> ValidationError
                if owned is not None:
                    owned.discard(name)
                return _ok_line(req_id, "released")
            if op == "shutdown":
                # Drain protocol: shed from this moment on (new compute
                # requests get a typed ServiceDrainingError reply), let
                # in-flight batches finish inside stop()'s drain
                # deadline, then exit.
                self.service.begin_drain()
                self._shutdown.set()
                return _ok_line(req_id, "draining")
            return await self._respond_compute(req_id, op, obj, owned)
        except ReproError as exc:
            return _error_line(req_id, exc)
        except Exception as exc:
            # Anything non-typed is a server-side bug; the client still
            # deserves a reply rather than a silently dropped connection.
            return _error_line(
                req_id, ReproError(f"internal error ({type(exc).__name__}): {exc}")
            )

    async def _respond_compute(self, req_id, op, obj: dict,
                               owned: set[str] | None = None) -> bytes:
        """One compute request: decode, trace, submit, encode.

        The ``wire`` request field picks the *reply* encoding; left
        unset it follows the image encoding in kind, so a zero-copy
        request gets a zero-copy reply without saying so twice.
        """
        ctx = (
            TraceContext.from_wire(obj["trace"])
            if obj.get("trace") is not None
            else TraceContext.mint()
        )
        instruments = self.service.instruments
        handle = None
        if self.service.recorder is not None:
            handle = self.service.recorder.begin(
                CLIENT_REQUEST, lane=ctx.lane, cat=CAT_REQUEST,
                op=str(op), **ctx.span_args(),
            )
        try:
            t_dec = time.perf_counter()
            image = _materialize_image(obj.get("image"))
            image_wire = "shmem" if isinstance(image, ShmDescriptor) else "ndjson"
            if instruments is not None:
                instruments.decode(time.perf_counter() - t_dec, wire=image_wire)
            wire = obj.get("wire")
            if wire is None:
                wire = image_wire
            if wire not in WIRES:
                raise ValidationError(
                    f"unknown reply wire {wire!r}; known: {list(WIRES)}"
                )
            params = obj.get("params", {})
            if not isinstance(params, dict):
                raise ValidationError("'params' must be an object")
            if "trace" in params:
                raise ValidationError(
                    "'trace' is a top-level request field, not an op parameter"
                )
            result = await self.service.submit(op, image, trace=ctx, **params)
            t_enc = time.perf_counter()
            if wire == "shmem":
                desc = self.arena.mint(result)
                if owned is not None:
                    owned.add(desc.name)
                payload = {"shm": desc.to_wire()}
            else:
                payload = encode_array(result)
            if instruments is not None:
                instruments.encode(time.perf_counter() - t_enc, wire=wire)
            return _ok_line(req_id, payload, trace_id=ctx.trace_id)
        finally:
            if handle is not None:
                handle.finish()


def _ok_line(req_id, result, *, trace_id: str | None = None) -> bytes:
    payload = {"id": req_id, "ok": True, "result": result}
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return (json.dumps(payload) + "\n").encode()


def _error_line(req_id, exc: Exception) -> bytes:
    payload = {
        "id": req_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    return (json.dumps(payload) + "\n").encode()


async def request_over_socket(socket_path: str, obj: dict,
                              *, trace: TraceContext | None = None) -> dict:
    """One-shot client helper: send one request object, await its reply.

    Compute requests are stamped with a trace context (the given one,
    or a freshly minted one) so the server can tie every hop of the
    request to a single trace id -- echoed back as ``trace_id`` in the
    response for ``repro trace --follow``.
    """
    obj = dict(obj)
    if "trace" not in obj and obj.get("op") in OPS:
        obj["trace"] = (trace if trace is not None else TraceContext.mint()).to_wire()
    reader, writer = await asyncio.open_unix_connection(
        socket_path, limit=MAX_REQUEST_BYTES
    )
    try:
        writer.write((json.dumps(obj) + "\n").encode())
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ReproError("service closed the connection without replying")
        return json.loads(line)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()

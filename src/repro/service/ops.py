"""The service's operations: validation, canonical params, execution.

Three pure ops are served, all defined over a single greyscale/binary
image:

* ``histogram``  -- grey-level tally (``k`` bins), ``int64[k]``;
* ``components`` -- connected-component labels (``connectivity``,
  ``grey``), ``int64[h, w]`` in the engines' canonical convention
  (background 0, label = 1 + row-major index of first pixel);
* ``equalize``   -- histogram-equalized image through the CDF LUT of
  :func:`repro.core.equalization.equalization_lut`, ``int64[h, w]``.

Every request is validated **at admission**, on the driver: a worker
exception would otherwise abort the whole coalesced dispatch and take
innocent batch-mates down with it.  The worker task itself still wraps
execution defensively -- an op failure inside a worker comes back as a
per-request error marker, not a batch-level exception -- so one bad
request can never poison its batch.

The worker entry points (:func:`svc_init`, :func:`svc_task`) are
module-level so they pickle by name into pool workers; ``svc_task``
fires the deterministic fault injector at the ``svc:exec`` site before
touching the payload, mirroring the other hardened task functions.
"""

from __future__ import annotations

import numpy as np

from repro.core.equalization import equalization_lut
from repro.faults.inject import corrupt_pixels, fire, install_plan
from repro.faults.plan import FaultPlan
from repro.kernels import get as get_kernel
from repro.obs import trace as _trace
from repro.obs.runtime import init_worker_sink, task_span
from repro.obs.trace import TraceContext
from repro.runtime.shmem import (
    SharedNDArray,
    ShmDescriptor,
    verify_descriptor_digest,
)
from repro.utils.errors import ReproError, ValidationError
from repro.utils.validation import check_image, check_power_of_two

#: The ops the service knows how to execute.
OPS = ("histogram", "components", "equalize")


def canonical_params(op: str, image: np.ndarray | None, params: dict) -> tuple:
    """Validate a request and return its canonical, hashable param tuple.

    The tuple is sorted by name and fully defaulted, so two requests
    that mean the same computation always produce the same batch key
    and the same cache key, however the caller spelled them.

    ``image`` is ``None`` for a shared-memory descriptor request: the
    driver never reads descriptor pixels (that is the zero-copy
    contract), so the grey-level-vs-``k`` check is deferred to the
    kernel's own validation inside the worker.
    """
    if op not in OPS:
        raise ValidationError(f"unknown service op {op!r}; known: {list(OPS)}")
    params = dict(params)
    out: dict = {}
    if op in ("histogram", "equalize"):
        k = int(params.pop("k", 256))
        check_power_of_two("k", k)
        if image is not None and image.max(initial=0) >= k:
            raise ValidationError(f"image has grey levels >= k={k}")
        out["k"] = k
    else:  # components
        connectivity = int(params.pop("connectivity", 8))
        if connectivity not in (4, 8):
            raise ValidationError("connectivity must be 4 or 8")
        out["connectivity"] = connectivity
        out["grey"] = bool(params.pop("grey", False))
    if params:
        raise ValidationError(
            f"unknown parameter(s) for op {op!r}: {sorted(params)}"
        )
    return tuple(sorted(out.items()))


def check_request_image(image) -> np.ndarray:
    """Validate and canonicalize a request image (contiguous int array)."""
    image = check_image(np.asarray(image), square=False)
    return np.ascontiguousarray(image)


def materialize_request_image(image, *, task=None, attempt: int = 0) -> np.ndarray:
    """Resolve a request image to pixels wherever the task runs.

    An ndarray passes through untouched.  A :class:`~repro.runtime.
    shmem.ShmDescriptor` is the zero-copy path: attach to the named
    segment, copy the view out **once** (a single memcpy -- the wire
    never carried the pixels), close the mapping, then verify the copy
    against the descriptor's content digest.  Copy-before-verify means
    the computation can never see a torn concurrent write that the
    digest check missed, and closing before compute means a client
    unlinking its segment mid-request cannot fault the worker.

    Failure typing matters here: a missing/undersized segment raises
    :class:`~repro.utils.errors.ValidationError` (a per-request JSON
    error), while a digest mismatch raises :class:`~repro.utils.errors.
    CorruptPayloadError` -- retryable, because a torn write heals on
    re-read.  The ``svc:shmem`` fault site fires between attach and
    verify; its ``corrupt`` kind tampers the copied pixels so the
    digest check must catch it, exactly like ``cc:merge`` corruption.
    """
    if not isinstance(image, ShmDescriptor):
        return image
    spec = fire("svc:shmem", task=task, attempt=attempt)
    seg = SharedNDArray.attach_descriptor(image)
    try:
        pixels = np.array(seg.array, copy=True)
    finally:
        seg.close()
    if spec is not None and spec.kind == "corrupt":
        pixels = corrupt_pixels(pixels)
    verify_descriptor_digest(image, pixels)
    return pixels


def compute(op: str, image: np.ndarray, params: tuple, kernel: str) -> np.ndarray:
    """Execute one op serially through the kernel registry."""
    opts = dict(params)
    if op == "histogram":
        return get_kernel("histogram", backend=kernel)(image, opts["k"])
    if op == "components":
        return get_kernel("tile_label", backend=kernel)(
            image, connectivity=opts["connectivity"], grey=opts["grey"]
        )
    if op == "equalize":
        hist = get_kernel("histogram", backend=kernel)(image, opts["k"])
        lut = equalization_lut(hist)
        return lut[image]
    raise ValidationError(f"unknown service op {op!r}")


# -- worker side (pickled by name into pool workers) ------------------------

_SVC: dict = {}


def svc_init(kernel: str, obs=None, plan: FaultPlan | None = None) -> None:
    """Pool initializer: wire the obs sink, fault plan, and kernel."""
    init_worker_sink(obs)
    install_plan(plan)
    _SVC["kernel"] = kernel


def svc_task(arg):
    """Worker: execute one request of a batch; never raises op errors.

    Payload is ``(index, op, image, params, trace_wire)``; the returned
    marker is ``("ok", result)`` or ``("err", exc_type_name, message)``
    so a single bad request surfaces on its own future instead of
    aborting the batch.  ``trace_wire`` (``None`` when untraced) is the
    request's batch-level trace context: activating it here makes the
    task span -- and the kernel spans beneath it -- children of the
    driver's batch span, across the process boundary.  Injected faults
    (crash/hang/exception) fire *before* the marker wrapper, so the
    dispatcher's recovery machinery sees them exactly as it does at
    every other site.
    """
    payload, attempt = arg
    if len(payload) == 5:
        index, op, image, params, trace_wire = payload
    else:  # pre-tracing 4-tuple payloads remain dispatchable
        (index, op, image, params), trace_wire = payload, None
    fire("svc:exec", task=index, attempt=attempt)
    ctx = TraceContext.from_wire(trace_wire) if trace_wire is not None else None
    with _trace.activate(ctx):
        with task_span(f"svc:{op}[{index}]", op=op, index=index):
            # Descriptor materialization sits *outside* the marker
            # wrapper for its fault-typed errors: CorruptPayloadError
            # must reach the dispatcher (it is retryable -- the re-run
            # re-reads the segment), while a ValidationError (unknown
            # or undersized segment) is this request's own typed error.
            try:
                image = materialize_request_image(image, task=index, attempt=attempt)
            except ValidationError as exc:
                return ("err", type(exc).__name__, str(exc))
            try:
                return ("ok", compute(op, image, params, _SVC.get("kernel", "numpy")))
            except ReproError as exc:
                return ("err", type(exc).__name__, str(exc))

"""Content-addressed result cache with LRU eviction and byte bounds.

A serving layer for pure functions gets to treat results as values: the
histogram of an image is fully determined by (image bytes, op, params),
so the cache key is a digest of exactly that and nothing else -- no
timestamps, no request ids.  Two different clients sending the same
image therefore share one computation, and a repeated-image workload
(the common case for dashboards and test rigs) is served from memory.

Bounds are enforced on **both** axes: entry count (protects the key
space) and total result bytes (protects the heap -- a components label
map is 8 bytes/pixel, so a handful of large images could otherwise
evict everything useful).  Eviction is least-recently-used; every hit
refreshes recency.  A single result larger than the byte budget is
simply not cached.

The cache is loop-confined by design: :class:`~repro.service.server.
BatchService` only touches it from its event-loop thread, so no lock
is taken on the hot path.  Stats counters are plain ints and safe to
*read* from any thread.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.shmem import array_digest as _array_digest
from repro.utils.errors import ValidationError

#: Default bound on cached entries.
DEFAULT_MAX_ENTRIES = 256

#: Default bound on total cached result bytes (64 MiB).
DEFAULT_MAX_BYTES = 64 << 20


def image_digest(image: np.ndarray) -> str:
    """Content address of an image: sha256 over dtype, shape, and bytes.

    The dtype and shape are folded in so a (64, 64) int32 image and its
    flattened or reinterpreted twin cannot collide.

    This is :func:`repro.runtime.shmem.array_digest` by another name --
    deliberately the *same* function, so the digest a shared-memory
    client stamps into its descriptor and the digest the server computes
    for an ndjson image address the same cache entry.  A zero-copy
    request is keyed by its descriptor's digest without the server ever
    reading a pixel; the bytes are verified in the worker on a miss.
    """
    return _array_digest(image)


def result_key(digest: str, op: str, params) -> str:
    """The cache key of (image digest, op, canonical params)."""
    return f"{op}|{params!r}|{digest}"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus current occupancy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncacheable: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "uncacheable": self.uncacheable,
            "entries": self.entries,
            "bytes": self.bytes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: np.ndarray
    nbytes: int = field(default=0)


class ResultCache:
    """LRU cache of ndarray results keyed by content address.

    ``get`` returns the stored array itself (callers copy if they hand
    it out mutably); ``put`` stores without copying.  Both are O(1).
    """

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_entries <= 0:
            raise ValidationError("cache max_entries must be positive")
        if max_bytes <= 0:
            raise ValidationError("cache max_bytes must be positive")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> np.ndarray | None:
        """The cached result for ``key`` (refreshing recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: str, value: np.ndarray) -> bool:
        """Cache ``value`` under ``key``; returns whether it was stored."""
        value = np.asarray(value)
        nbytes = int(value.nbytes)
        if nbytes > self.max_bytes:
            self.stats.uncacheable += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.bytes -= old.nbytes
        self._entries[key] = _Entry(value, nbytes)
        self.stats.bytes += nbytes
        self._evict()
        self.stats.entries = len(self._entries)
        return key in self._entries

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries or self.stats.bytes > self.max_bytes:
            _key, entry = self._entries.popitem(last=False)
            self.stats.bytes -= entry.nbytes
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes = 0
        self.stats.entries = 0

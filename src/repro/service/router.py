"""The shard router: consistent-hash front-end over N service shards.

One socket in front, N independent :class:`~repro.service.server.
ServiceServer` shard processes behind -- each with its own listener,
worker pool, and result cache.  Requests are routed by **content
digest** (the same ``array_digest`` the cache is keyed on), so every
repeat of an image lands on the shard already holding its result:
digest affinity partitions the cache instead of replicating it, and
aggregate cache capacity scales with the shard count.

Topology (request path)::

    client ---> ShardRouter (one unix socket)
                  |  route(digest) on a consistent-hash ring
                  |  breaker per shard (closed / half-open / open)
                  v
        shard 0        shard 1        shard 2     ... each:
        ServiceServer  ServiceServer  ServiceServer    own socket,
        BatchService   BatchService   BatchService     PoolSupervisor,
        + cache        + cache        + cache          ResultCache

Robustness model, in one paragraph: a :class:`~repro.service.health.
HealthMonitor` pings every shard on a deadline and drives its
:class:`~repro.service.health.CircuitBreaker`; a request whose shard
is open (or whose forward fails mid-flight -- the in-flight *replay*
path) walks the ring to the next live successor; a request stuck past
the ``hedge_s`` latency budget is duplicated to the successor and the
first reply wins (results are bit-identical by construction, so
first-wins is safe); a shard *process* that dies is reaped (its whole
session group, so orphaned pool workers go with it), its un-released
reply segments are reclaimed, and it is respawned on the same socket.
Under the seeded chaos drill (``repro chaos --tier service``) all of
this happens with a SIGKILL mid-load and every request still completes
bit-identically with zero ``/dev/shm`` leaks.

The router speaks the exact wire protocol of a single server --
:class:`~repro.service.wire.WireClient` works unchanged against it.
Compute lines are forwarded **verbatim** (the routing key is extracted
with anchored regexes, no JSON re-serialization on the hot path);
``ping`` / ``stats`` / ``metrics`` answer at the router; ``shm_release``
follows the segment to the shard that minted it.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.faults.inject import fire_async
from repro.obs.events import (
    CAT_REQUEST,
    ROUTER_HEDGE,
    ROUTER_REQUEST,
    ROUTER_REROUTE,
    ROUTER_RESPAWN,
    ROUTER_SHARD_DOWN,
    ROUTER_SHARD_UP,
)
from repro.obs.export import chrome_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import WallRecorder, instant_or_null
from repro.obs.trace import TraceContext
from repro.runtime.shmem import _attach_segment
from repro.service.health import (
    CLOSED,
    DEFAULT_FAIL_THRESHOLD,
    OPEN,
    CircuitBreaker,
    HealthMonitor,
)
from repro.service.instruments import op_label
from repro.service.ops import OPS
from repro.utils.aio import cancel_and_reap
from repro.service.server import (
    MAX_REQUEST_BYTES,
    _error_line,
    _ok_line,
    check_socket_path,
)
from repro.utils.errors import (
    ReproError,
    ServiceDrainingError,
    ShardDownError,
    ValidationError,
)

# -- hot-path request scanning ----------------------------------------------
#
# The router must not pay json.loads + json.dumps per forwarded request
# (that would re-serialize megabytes of base64 just to read a 64-char
# digest).  The request grammar makes targeted regexes sound: base64
# text cannot contain a double quote, so a quoted key like "digest"
# can only appear as an actual key.

#: The request's op name (first "op" key wins; json.dumps emits keys in
#: insertion order and every client writes op near the front).
_OP_RE = re.compile(rb'"op"\s*:\s*"(\w+)"')

#: A shm-descriptor request's content digest -- the routing key the
#: client already computed for the cache.
_DIGEST_RE = re.compile(rb'"digest"\s*:\s*"([0-9a-f]{64})"')

#: An ndjson request's pixel payload; its sha256 *is* digest affinity
#: (same bytes -> same span -> same shard) without decoding base64.
_DATA_RE = re.compile(rb'"data_b64"\s*:\s*"([A-Za-z0-9+/=]*)"')

#: A reply's minted shared-segment name (shmem-wire results only).
_SEG_RE = re.compile(rb'"name"\s*:\s*"(psm_[^"]+)"')


def routing_key(line: bytes) -> bytes:
    """The affinity key of one raw request line.

    Preference order: the shm descriptor digest (zero extra hashing),
    the sha256 of the base64 pixel span, else the sha256 of the whole
    line (pattern-image and malformed requests still route stably).
    """
    m = _DIGEST_RE.search(line)
    if m is not None:
        return m.group(1)
    m = _DATA_RE.search(line)
    if m is not None:
        return hashlib.sha256(m.group(1)).digest()
    return hashlib.sha256(line).digest()


def request_op(line: bytes) -> str | None:
    m = _OP_RE.search(line)
    return m.group(1).decode("ascii") if m is not None else None


class HashRing:
    """Consistent-hash ring over shard ids, ``vnodes`` points per shard.

    Virtual nodes smooth the partition (64 points per shard keeps the
    largest/smallest arc ratio near 1) and make failover *diffuse*: a
    down shard's keys spill to *many* successors, not one unlucky
    neighbor.
    """

    def __init__(self, shard_ids, *, vnodes: int = 64):
        shard_ids = list(shard_ids)
        if not shard_ids:
            raise ValidationError("hash ring needs at least one shard")
        if vnodes < 1:
            raise ValidationError("vnodes must be at least 1")
        self.shard_ids = sorted(shard_ids)
        points: list[tuple[int, int]] = []
        for sid in self.shard_ids:
            for v in range(vnodes):
                token = f"shard:{sid}:vnode:{v}".encode()
                points.append((self._position(token), sid))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [sid for _, sid in points]

    @staticmethod
    def _position(key: bytes) -> int:
        return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")

    def walk(self, key: bytes) -> list[int]:
        """All shards in successor order from ``key``'s ring position.

        ``walk(key)[0]`` is the home shard; the rest is the failover
        order a router follows when breakers are open.
        """
        start = bisect.bisect_right(self._hashes, self._position(key))
        n = len(self._owners)
        order: list[int] = []
        seen: set[int] = set()
        for j in range(n):
            sid = self._owners[(start + j) % n]
            if sid not in seen:
                seen.add(sid)
                order.append(sid)
                if len(order) == len(self.shard_ids):
                    break
        return order

    def route(self, key: bytes) -> int:
        return self.walk(key)[0]


# -- shard processes ---------------------------------------------------------


class ShardProcess:
    """One spawned ``repro serve`` shard and its lifecycle.

    Spawned with ``start_new_session=True`` so the shard leads its own
    process group: when chaos SIGKILLs the shard, its pool workers are
    orphaned mid-task (a SIGKILLed parent runs no atexit), and
    :meth:`reap`'s ``killpg`` is what sweeps them.
    """

    def __init__(self, shard_id: int, socket_path: str, argv: list[str],
                 env: dict[str, str]):
        self.shard_id = shard_id
        self.socket_path = socket_path
        self.argv = argv
        self.env = env
        self.proc: subprocess.Popen | None = None
        self.spawns = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def spawn(self) -> None:
        # A respawn binds the same path; the dead shard never got to
        # unlink its socket.
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        self.proc = subprocess.Popen(
            self.argv,
            env=self.env,
            start_new_session=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self.spawns += 1

    def kill(self) -> None:
        """SIGKILL the shard process itself (the chaos drill's hammer)."""
        if self.proc is not None:
            with contextlib.suppress(ProcessLookupError):
                os.kill(self.proc.pid, signal.SIGKILL)

    def reap(self) -> None:
        """Sweep the whole process group and collect the zombie."""
        if self.proc is None:
            return
        with contextlib.suppress(ProcessLookupError, PermissionError, OSError):
            os.killpg(self.proc.pid, signal.SIGKILL)
        with contextlib.suppress(Exception):
            self.proc.wait(timeout=10)


def shard_environment() -> dict[str, str]:
    """Subprocess env for a shard: inherit, and make sure the running
    ``repro`` package wins the import race (tests run from src)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    prev = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir if not prev else src_dir + os.pathsep + prev
    return env


# -- configuration -----------------------------------------------------------


@dataclass
class RouterConfig:
    """Everything tunable about a :class:`ShardRouter`.

    With ``shard_sockets`` unset the router *owns* its shards: it
    spawns ``shards`` ``repro serve`` subprocesses (``shard_args``
    appended to each command line) and supervises them.  With
    ``shard_sockets`` given, the shards are externally managed -- the
    router only routes, probes, and breaks; nothing is spawned or
    respawned (the cheap mode tests use).
    """

    shards: int = 3
    vnodes: int = 64
    shard_sockets: list[str] | None = None
    runtime_dir: str | None = None
    workers_per_shard: int = 1
    shard_args: list[str] = field(default_factory=list)
    fail_threshold: int = DEFAULT_FAIL_THRESHOLD
    open_s: float = 0.2
    probe_interval_s: float = 0.05
    probe_timeout_s: float | None = None
    #: Latency budget before a stuck request is hedged to the successor.
    hedge_s: float = 0.25
    respawn: bool = True
    poll_interval_s: float = 0.05
    drain_deadline_s: float = 5.0
    ready_timeout_s: float = 30.0
    metrics: bool = True

    def __post_init__(self):
        if self.shard_sockets is not None:
            self.shards = len(self.shard_sockets)
        if self.shards < 1:
            raise ValidationError("router needs at least one shard")
        if self.hedge_s <= 0:
            raise ValidationError("hedge_s must be positive")
        if self.drain_deadline_s < 0:
            raise ValidationError("drain_deadline_s must be non-negative")
        if self.workers_per_shard < 1:
            raise ValidationError("workers_per_shard must be at least 1")

    @property
    def spawn(self) -> bool:
        return self.shard_sockets is None


# -- metrics -----------------------------------------------------------------

M_ROUTER_REQUESTS = "repro_router_requests_total"
M_ROUTER_FORWARDS = "repro_router_forwards_total"
M_ROUTER_REROUTES = "repro_router_reroutes_total"
M_ROUTER_HEDGES = "repro_router_hedges_total"
M_ROUTER_HEDGE_WINS = "repro_router_hedge_wins_total"
M_ROUTER_ERRORS = "repro_router_request_errors_total"
M_ROUTER_RESPAWNS = "repro_router_shard_respawns_total"
M_ROUTER_TRANSITIONS = "repro_router_breaker_transitions_total"
M_ROUTER_SHARD_STATE = "repro_router_shard_state"
M_ROUTER_HEALTHY = "repro_router_healthy_shards"
M_ROUTER_LATENCY = "repro_router_request_seconds"

#: Gauge encoding of breaker states (alerting reads ``> 0`` as "not
#: fully closed", ``== 2`` as "down").
BREAKER_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class RouterInstruments:
    """The router's metric catalog; per-shard labels, bounded by the
    shard count (pre-resolved handles, same idiom as
    :class:`~repro.service.instruments.ServiceInstruments`)."""

    def __init__(self, registry: MetricsRegistry, shard_ids):
        self.registry = registry
        ops = (*OPS, "other")
        self._requests = {
            op: registry.counter(M_ROUTER_REQUESTS, "Requests routed",
                                 labels={"op": op})
            for op in ops
        }
        self._forwards = {
            sid: registry.counter(M_ROUTER_FORWARDS,
                                  "Requests answered, by serving shard",
                                  labels={"shard": str(sid)})
            for sid in shard_ids
        }
        self._state = {
            sid: registry.gauge(
                M_ROUTER_SHARD_STATE,
                "Breaker state (0 closed, 1 half-open, 2 open)",
                labels={"shard": str(sid)})
            for sid in shard_ids
        }
        self._reroutes = registry.counter(
            M_ROUTER_REROUTES, "Requests moved to a ring successor")
        self._hedges = registry.counter(
            M_ROUTER_HEDGES, "Hedged duplicates sent")
        self._hedge_wins = registry.counter(
            M_ROUTER_HEDGE_WINS, "Requests won by the hedged duplicate")
        self._healthy = registry.gauge(
            M_ROUTER_HEALTHY, "Shards with a closed breaker")
        self._latency = registry.histogram(
            M_ROUTER_LATENCY, "Route-to-reply latency at the router",
            unit="seconds")
        self._healthy.set(len(self._state))

    def request(self, op) -> None:
        self._requests[op_label(op)].inc()

    def forwarded(self, sid: int) -> None:
        if sid in self._forwards:
            self._forwards[sid].inc()

    def rerouted(self) -> None:
        self._reroutes.inc()

    def hedged(self) -> None:
        self._hedges.inc()

    def hedge_won(self) -> None:
        self._hedge_wins.inc()

    def request_done(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def request_error(self, exc: BaseException) -> None:
        self.registry.counter(
            M_ROUTER_ERRORS, "Routed requests failed, by error type",
            labels={"type": type(exc).__name__},
        ).inc()

    def respawned(self, sid: int) -> None:
        self.registry.counter(
            M_ROUTER_RESPAWNS, "Dead shard processes respawned",
            labels={"shard": str(sid)},
        ).inc()

    def transition(self, sid: int, frm: str, to: str, healthy: int) -> None:
        self.registry.counter(
            M_ROUTER_TRANSITIONS, "Breaker transitions",
            labels={"shard": str(sid), "to": to},
        ).inc()
        if sid in self._state:
            self._state[sid].set(BREAKER_STATE_VALUES.get(to, 2.0))
        self._healthy.set(healthy)


@dataclass
class RouterStats:
    requests: int = 0
    completed: int = 0
    errors: int = 0
    reroutes: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    respawns: int = 0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "reroutes": self.reroutes,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "respawns": self.respawns,
        }


# -- the router --------------------------------------------------------------


class ShardRouter:
    """The consistent-hash front-end; see the module docstring.

    Lifecycle::

        router = ShardRouter(socket_path, RouterConfig(shards=3))
        await router.start()       # spawns + readies shards, starts probes
        ...                        # clients speak the normal wire protocol
        await router.stop()        # drain, retire shards, reclaim segments
    """

    def __init__(self, socket_path: str, config: RouterConfig | None = None, *,
                 recorder: WallRecorder | None = None):
        self.config = config or RouterConfig()
        self.socket_path = check_socket_path(socket_path)
        self.recorder = recorder
        cfg = self.config
        self.shard_ids = list(range(cfg.shards))
        if cfg.shard_sockets is not None:
            self.shard_sockets = {
                sid: check_socket_path(path)
                for sid, path in enumerate(cfg.shard_sockets)
            }
            self.procs: dict[int, ShardProcess] = {}
        else:
            base = cfg.runtime_dir or tempfile.mkdtemp(prefix="repro-shards-")
            self._runtime_dir = base
            env = shard_environment()
            self.shard_sockets = {}
            self.procs = {}
            for sid in self.shard_ids:
                path = check_socket_path(os.path.join(base, f"shard-{sid}.sock"))
                self.shard_sockets[sid] = path
                self.procs[sid] = ShardProcess(
                    sid, path, self._shard_argv(sid, path), env
                )
        self.ring = HashRing(self.shard_ids, vnodes=cfg.vnodes)
        self.breakers = {
            sid: CircuitBreaker(
                sid,
                fail_threshold=cfg.fail_threshold,
                open_s=cfg.open_s,
                on_transition=self._on_transition,
            )
            for sid in self.shard_ids
        }
        self.monitors = {
            sid: HealthMonitor(
                sid, self.shard_sockets[sid], self.breakers[sid],
                interval_s=cfg.probe_interval_s,
                timeout_s=cfg.probe_timeout_s,
            )
            for sid in self.shard_ids
        }
        self.metrics = MetricsRegistry() if cfg.metrics else None
        self.instruments = (
            RouterInstruments(self.metrics, self.shard_ids)
            if self.metrics is not None else None
        )
        self.stats = RouterStats()
        #: Reply segments each shard minted and no client released yet;
        #: what :meth:`_reclaim_minted` sweeps when the shard dies hard.
        self._minted: dict[int, set[str]] = {sid: set() for sid in self.shard_ids}
        #: Requests answered per shard (metrics-independent, for stats).
        self._forward_counts: dict[int, int] = {sid: 0 for sid in self.shard_ids}
        self._server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._shutdown = asyncio.Event()
        self._draining = False
        self._open_requests = 0

    def _shard_argv(self, sid: int, socket_path: str) -> list[str]:
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", socket_path,
            "--shard-id", str(sid),
            "--workers", str(self.config.workers_per_shard),
        ]
        argv.extend(self.config.shard_args)
        return argv

    # -- lifecycle ---------------------------------------------------------

    @property
    def healthy_shards(self) -> int:
        return sum(1 for b in self.breakers.values() if b.state == CLOSED)

    async def start(self) -> None:
        self._draining = False
        for sid, proc in self.procs.items():
            proc.spawn()
        for sid in self.shard_ids:
            await self._wait_ready(sid, self.config.ready_timeout_s)
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path, limit=MAX_REQUEST_BYTES
        )
        self._tasks = [
            asyncio.ensure_future(mon.run()) for mon in self.monitors.values()
        ]
        if self.procs:
            self._tasks.append(asyncio.ensure_future(self._supervise()))

    async def _wait_ready(self, sid: int, timeout_s: float) -> None:
        """Block until the shard answers ``ping`` on its socket."""
        deadline = time.monotonic() + timeout_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            proc = self.procs.get(sid)
            if proc is not None and proc.proc is not None and not proc.alive:
                raise ReproError(
                    f"shard {sid} exited during startup "
                    f"(rc={proc.proc.returncode}); command: {' '.join(proc.argv)}"
                )
            try:
                reply = json.loads(await self._one_shot(sid, b'{"op": "ping"}\n'))
                if reply.get("ok"):
                    return
            except Exception as exc:
                # Not up yet (connect refused, deadline, partial JSON);
                # remembered so the timeout error can say what the last
                # attempt actually hit.
                last = exc
            await asyncio.sleep(0.02)
        detail = f"; last attempt: {type(last).__name__}: {last}" if last else ""
        raise ReproError(
            f"shard {sid} did not become ready within {timeout_s:.0f}s{detail}"
        )

    async def _one_shot(self, sid: int, line: bytes, *,
                        timeout_s: float = 1.0) -> bytes:
        """One request on a fresh connection to a shard (control plane)."""

        async def _go() -> bytes:
            reader, writer = await asyncio.open_unix_connection(
                self.shard_sockets[sid], limit=MAX_REQUEST_BYTES
            )
            try:
                writer.write(line)
                await writer.drain()
                return await reader.readline()
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

        return await asyncio.wait_for(_go(), timeout=timeout_s)

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    def trigger_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        """Drain, retire every shard, reclaim what the dead left behind."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_deadline_s
        while self._open_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            # Not a plain ``await task``: a monitor parked in its probe's
            # wait_for can swallow the first cancel (3.11 race) and spin
            # forever; cancel_and_reap re-cancels until the task dies.
            await cancel_and_reap(task)
        for sid, proc in self.procs.items():
            if proc.alive:
                # Polite retirement: the shard drains its own in-flight
                # work inside its stop() before exiting.
                with contextlib.suppress(Exception):
                    await self._one_shot(
                        sid, b'{"op": "shutdown"}\n',
                        timeout_s=self.config.drain_deadline_s + 1.0,
                    )
            exit_by = time.monotonic() + self.config.drain_deadline_s + 2.0
            while proc.alive and time.monotonic() < exit_by:
                await asyncio.sleep(0.02)
            proc.reap()
            self._reclaim_minted(sid)
            with contextlib.suppress(OSError):
                os.unlink(self.shard_sockets[sid])
        for sid in list(self._minted):
            self._reclaim_minted(sid)

    # -- supervision -------------------------------------------------------

    async def _supervise(self) -> None:
        """Respawn loop for router-owned shards.

        A dead shard is reaped group-wide (its orphaned pool workers
        die here), its un-released reply segments are reclaimed, and a
        fresh process is spawned on the same socket.  In-flight
        requests that were cut off are not lost: their forwards fail
        with a connection error and the routing loop replays the raw
        line on the ring successor.
        """
        while True:
            await asyncio.sleep(self.config.poll_interval_s)
            if self._draining:
                continue
            for sid, proc in self.procs.items():
                if proc.proc is None or proc.alive:
                    continue
                self._reclaim_minted(sid)
                proc.reap()
                if not self.config.respawn:
                    continue
                proc.spawn()
                self.stats.respawns += 1
                if self.instruments is not None:
                    self.instruments.respawned(sid)
                instant_or_null(self.recorder, ROUTER_RESPAWN,
                                shard=sid, spawn=proc.spawns)
                try:
                    await self._wait_ready(sid, self.config.ready_timeout_s)
                except ReproError:
                    # Leave the breaker open; the next poll retries if
                    # the fresh process died too.
                    continue

    def _reclaim_minted(self, sid: int) -> int:
        """Unlink reply segments a hard-killed shard could not sweep.

        A SIGKILLed shard never runs its arena teardown, so whatever it
        minted and no client released would leak in ``/dev/shm``.  The
        router learned every minted name from the replies it forwarded;
        attaching (tracker-neutral) and unlinking here restores the
        leakcheck contract.
        """
        reclaimed = 0
        for name in sorted(self._minted.get(sid, ())):
            try:
                seg = _attach_segment(name)
            except FileNotFoundError:
                continue
            seg.close()
            with contextlib.suppress(FileNotFoundError):
                seg.unlink()
            reclaimed += 1
        self._minted[sid] = set()
        return reclaimed

    def kill_shard(self, sid: int) -> None:
        """SIGKILL a router-owned shard (the chaos drill's entry point)."""
        proc = self.procs.get(sid)
        if proc is None:
            raise ValidationError(
                f"shard {sid} is not router-owned; only spawned shards can be killed"
            )
        proc.kill()

    def _on_transition(self, sid: int, frm: str, to: str) -> None:
        if self.instruments is not None:
            self.instruments.transition(sid, frm, to, self.healthy_shards)
        if to == OPEN:
            instant_or_null(self.recorder, ROUTER_SHARD_DOWN, shard=sid)
        elif to == CLOSED and frm != CLOSED:
            instant_or_null(self.recorder, ROUTER_SHARD_UP, shard=sid)

    # -- client handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        #: Lazily opened upstream connection per shard, for this client.
        #: Reply-segment lifetime is pinned to the upstream connection,
        #: so per-client upstreams give each client the same ownership
        #: story it would have against a single server.
        conns: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        #: Reply segment name -> shard that minted it, for this client.
        owned: dict[str, int] = {}
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except (ValueError, asyncio.IncompleteReadError):
                    writer.write(_error_line(None, ValidationError(
                        f"request too large (limit {MAX_REQUEST_BYTES} bytes)"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line, conns, owned)
                writer.write(response)
                await writer.drain()
        finally:
            # Closing the upstreams makes each shard reclaim whatever
            # this client failed to release (connection-pinned lifetime).
            for name, sid in owned.items():
                self._minted.get(sid, set()).discard(name)
            for sid in list(conns):
                self._drop_conn(conns, sid)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _drop_conn(conns: dict, sid: int) -> None:
        entry = conns.pop(sid, None)
        if entry is not None:
            entry[1].close()

    @staticmethod
    def _req_id(line: bytes):
        try:
            obj = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            return None
        return obj.get("id") if isinstance(obj, dict) else None

    async def _respond(self, line: bytes, conns: dict,
                       owned: dict[str, int]) -> bytes:
        op = request_op(line)
        if op == "ping":
            return _ok_line(self._req_id(line), {
                "pong": True,
                "router": True,
                "shards": len(self.shard_ids),
                "healthy": self.healthy_shards,
                "draining": self._draining,
            })
        if op == "stats":
            return _ok_line(self._req_id(line), self.snapshot())
        if op == "metrics":
            if self.metrics is None:
                return _error_line(self._req_id(line), ValidationError(
                    "router metrics are disabled (RouterConfig.metrics=False)"
                ))
            return _ok_line(self._req_id(line), self.metrics.prometheus_text())
        if op == "trace":
            if self.recorder is None:
                return _error_line(self._req_id(line), ValidationError(
                    "tracing is off (the router was started without a recorder)"
                ))
            self.recorder.drain()
            return _ok_line(self._req_id(line), chrome_trace(self.recorder.log))
        if op == "shutdown":
            self._draining = True
            self._shutdown.set()
            return _ok_line(self._req_id(line), "draining")
        if op == "shm_release":
            return await self._respond_release(line, conns, owned)
        return await self._respond_routed(line, conns, owned, op)

    async def _respond_release(self, line: bytes, conns: dict,
                               owned: dict[str, int]) -> bytes:
        """Follow a segment release to the shard that minted it."""
        req_id = self._req_id(line)
        try:
            obj = json.loads(line)
            name = obj.get("name")
        except (ValueError, UnicodeDecodeError):
            name = None
        if not isinstance(name, str):
            return _error_line(
                req_id, ValidationError("'name' must be a segment name string")
            )
        sid = owned.get(name)
        if sid is None:
            return _error_line(
                req_id, ValidationError(f"unknown or already-released segment {name!r}")
            )
        if name not in self._minted.get(sid, ()):
            # The minting shard died and the router already reclaimed
            # the segment; the client's release is honored, not failed.
            owned.pop(name, None)
            return _ok_line(req_id, "released")
        try:
            reply = await self._forward_once(sid, line, conns)
        except (ReproError, OSError):
            # Shard just died; the supervisor's reclaim owns the segment.
            self._drop_conn(conns, sid)
            owned.pop(name, None)
            return _ok_line(req_id, "released")
        owned.pop(name, None)
        self._minted[sid].discard(name)
        return reply

    async def _respond_routed(self, line: bytes, conns: dict,
                              owned: dict[str, int], op) -> bytes:
        """Route one compute (or unknown -- the shard owns the error
        semantics) request: home shard first, ring successors on
        failure, a hedge when stuck past the latency budget."""
        req_id_of = self._req_id  # parsed lazily, cold paths only
        if self._draining:
            return _error_line(req_id_of(line), ServiceDrainingError(
                "router is draining for shutdown; retry later"
            ))
        self.stats.requests += 1
        if self.instruments is not None:
            self.instruments.request(op)
        self._open_requests += 1
        t0 = time.perf_counter()
        line, ctx, handle = self._trace_forward(line, op)
        winner = None
        try:
            order = self.ring.walk(routing_key(line))
            tried: set[int] = set()
            failures: list[str] = []
            reply = None
            for rank, sid in enumerate(order):
                if sid in tried:
                    continue
                breaker = self.breakers[sid]
                if not breaker.allow():
                    failures.append(f"shard {sid}: breaker {breaker.state}")
                    continue
                if tried or rank > 0:
                    self.stats.reroutes += 1
                    if self.instruments is not None:
                        self.instruments.rerouted()
                    instant_or_null(self.recorder, ROUTER_REROUTE,
                                    shard=sid, rank=rank)
                tried.add(sid)
                try:
                    reply, winner = await self._forward_hedged(
                        sid, order, tried, line, conns, rank
                    )
                    break
                except Exception as exc:
                    failures.append(f"shard {sid}: {type(exc).__name__}: {exc}")
            if reply is None:
                raise ShardDownError(
                    "no shard could serve the request "
                    f"({len(failures)} candidate(s) failed): "
                    + "; ".join(failures),
                    attempts=failures,
                )
            m = _SEG_RE.search(reply)
            if m is not None and winner is not None:
                name = m.group(1).decode("ascii")
                owned[name] = winner
                self._minted[winner].add(name)
            self.stats.completed += 1
            if winner is not None:
                self._forward_counts[winner] = self._forward_counts.get(winner, 0) + 1
                if self.instruments is not None:
                    self.instruments.forwarded(winner)
            return reply
        except ReproError as exc:
            self.stats.errors += 1
            if self.instruments is not None:
                self.instruments.request_error(exc)
            return _error_line(req_id_of(line), exc)
        finally:
            self._open_requests -= 1
            if self.instruments is not None:
                self.instruments.request_done(time.perf_counter() - t0)
            if handle is not None:
                handle.finish(shard=winner)

    def _trace_forward(self, line: bytes, op):
        """With a recorder on, open the router span and re-stamp the
        forwarded line with a child context, so the shard's own request
        span parents under the router's.  Without a recorder the line
        is forwarded untouched (the hot path)."""
        if self.recorder is None or op not in OPS:
            return line, None, None
        try:
            obj = json.loads(line)
            ctx = (
                TraceContext.from_wire(obj["trace"])
                if obj.get("trace") is not None
                else TraceContext.mint()
            )
            handle = self.recorder.begin(
                ROUTER_REQUEST, lane=ctx.lane, cat=CAT_REQUEST,
                op=str(op), **ctx.span_args(),
            )
            obj["trace"] = ctx.child().to_wire()
            return (json.dumps(obj) + "\n").encode(), ctx, handle
        except (ValueError, TypeError, KeyError, ReproError):
            # Unparsable line or malformed trace context: forward the
            # raw bytes and let the shard own the error reply.
            return line, None, None

    async def _forward_once(self, sid: int, line: bytes, conns: dict, *,
                            rank: int = 0) -> bytes:
        """One attempt against one shard, on this client's upstream."""
        await fire_async("svc:route", task=sid, attempt=rank)
        if sid not in conns:
            conns[sid] = await asyncio.open_unix_connection(
                self.shard_sockets[sid], limit=MAX_REQUEST_BYTES
            )
        reader, writer = conns[sid]
        writer.write(line)
        await writer.drain()
        reply = await reader.readline()
        if not reply:
            raise ReproError(f"shard {sid} closed the connection without replying")
        return reply

    async def _forward_hedged(self, sid: int, order: list[int],
                              tried: set[int], line: bytes, conns: dict,
                              rank: int) -> tuple[bytes, int]:
        """Forward to ``sid``; past the latency budget, duplicate to the
        ring successor and take the first reply.

        Both attempts compute the same bits (digest-identified input,
        deterministic ops), so first-wins cannot change the answer.
        The losing attempt is cancelled and its upstream connection
        dropped -- the shard reclaims any reply segment the abandoned
        request minted, and the next request reopens cleanly.
        """
        primary = asyncio.ensure_future(
            self._forward_once(sid, line, conns, rank=rank)
        )
        try:
            done, _ = await asyncio.wait({primary}, timeout=self.config.hedge_s)
        except asyncio.CancelledError:
            primary.cancel()
            self._drop_conn(conns, sid)
            raise
        if primary in done:
            return self._settle(primary, sid, conns), sid
        hedge_sid = next(
            (s for s in order
             if s != sid and s not in tried and self.breakers[s].state == CLOSED),
            None,
        )
        if hedge_sid is None:
            # Nowhere to hedge; keep waiting on the primary alone.
            await self._guard(primary, sid, conns)
            return self._settle(primary, sid, conns), sid
        tried.add(hedge_sid)
        self.stats.hedges += 1
        if self.instruments is not None:
            self.instruments.hedged()
        instant_or_null(self.recorder, ROUTER_HEDGE,
                        primary=sid, hedge=hedge_sid)
        hedge = asyncio.ensure_future(
            self._forward_once(hedge_sid, line, conns, rank=rank + 1)
        )
        pending = {primary: sid, hedge: hedge_sid}
        last_exc: Exception | None = None
        try:
            while pending:
                done, _ = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    task_sid = pending.pop(task)
                    exc = task.exception()
                    if exc is None:
                        if task is hedge:
                            self.stats.hedge_wins += 1
                            if self.instruments is not None:
                                self.instruments.hedge_won()
                        await self._cancel_losers(pending, conns)
                        return self._settle(task, task_sid, conns), task_sid
                    last_exc = exc
                    self.breakers[task_sid].record_failure()
                    self._drop_conn(conns, task_sid)
        except asyncio.CancelledError:
            await self._cancel_losers(pending, conns)
            raise
        raise last_exc if last_exc is not None else ReproError(
            "hedged forward resolved without a reply"
        )

    async def _guard(self, task: asyncio.Task, sid: int, conns: dict):
        """Await a lone forward, dropping its connection on cancellation."""
        try:
            await asyncio.wait({task})
        except asyncio.CancelledError:
            task.cancel()
            self._drop_conn(conns, sid)
            raise
        return task

    async def _cancel_losers(self, pending: dict, conns: dict) -> None:
        for loser, loser_sid in pending.items():
            loser.cancel()
            # The abandoned request may still be computing on the loser
            # shard; closing the upstream pins its (possible) reply
            # segment's teardown to the shard's disconnect sweep.
            self._drop_conn(conns, loser_sid)
            # CancelledError is a BaseException: suppress(Exception)
            # would let the loser's own cancellation escape and take
            # the whole client handler down with it.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await loser
        pending.clear()

    def _settle(self, task: asyncio.Task, sid: int, conns: dict) -> bytes:
        """Harvest one finished forward, folding its outcome into the
        shard's breaker."""
        exc = task.exception()
        if exc is not None:
            self.breakers[sid].record_failure()
            self._drop_conn(conns, sid)
            raise exc
        self.breakers[sid].record_success()
        return task.result()

    # -- reading back ------------------------------------------------------

    def snapshot(self) -> dict:
        out = {
            "schema": "repro-router-stats/v1",
            "router": {
                **self.stats.snapshot(),
                "draining": self._draining,
                "open_requests": self._open_requests,
                "healthy": self.healthy_shards,
                "shards": len(self.shard_ids),
            },
            "shards": {},
        }
        for sid in self.shard_ids:
            proc = self.procs.get(sid)
            out["shards"][str(sid)] = {
                "socket": self.shard_sockets[sid],
                "breaker": self.breakers[sid].snapshot(),
                "forwards": self._forward_counts.get(sid, 0),
                "probes": self.monitors[sid].probes,
                "minted_live": len(self._minted.get(sid, ())),
                "spawns": proc.spawns if proc is not None else None,
                "alive": proc.alive if proc is not None else None,
            }
        return out

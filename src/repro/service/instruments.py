"""The service tier's metric catalog, bound to one MetricsRegistry.

Every metric the serving layers emit is declared here -- one place for
names, help strings, units, and label sets -- so the Prometheus
exposition, the JSON time-series, ``docs/OBSERVABILITY.md``, and the
tests cannot drift apart.  The layers (:class:`~repro.service.server.
BatchService`, :class:`~repro.service.admission.AdmissionQueue`,
:class:`~repro.service.batcher.MicroBatcher`, the socket front-end)
hold a :class:`ServiceInstruments` and call its typed methods; none of
them spells a metric name inline.

Label cardinality is bounded by construction: the only labels are the
op name (clamped to the known :data:`~repro.service.ops.OPS` plus
``"other"`` for rejected ops) and the error type name (always one of
the typed :mod:`repro.utils.errors` classes by the time it reaches the
counter).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.service.ops import OPS

#: Latency histograms (seconds) -- one per instrumented segment.
M_REQUEST_LATENCY = "repro_request_latency_seconds"
M_QUEUE_WAIT = "repro_queue_wait_seconds"
M_BATCH_ASSEMBLY = "repro_batch_assembly_seconds"
M_EXEC = "repro_exec_seconds"
M_CACHE_LOOKUP = "repro_cache_lookup_seconds"
M_DECODE = "repro_decode_seconds"
M_ENCODE = "repro_encode_seconds"

#: Size distribution of dispatched batches (requests per batch).
M_BATCH_SIZE = "repro_batch_size"

#: Counters.
M_REQUESTS = "repro_requests_total"
M_ERRORS = "repro_request_errors_total"
M_CACHE_HITS = "repro_cache_hits_total"
M_CACHE_MISSES = "repro_cache_misses_total"
M_CACHE_EVICTIONS = "repro_cache_evictions_total"
M_COALESCED = "repro_requests_coalesced_total"
M_SHED = "repro_requests_shed_total"
M_EXPIRED = "repro_requests_expired_total"
M_DEGRADED = "repro_batches_degraded_total"

#: Gauges.
M_QUEUE_DEPTH = "repro_queue_depth"
M_INFLIGHT = "repro_inflight_requests"
M_CACHE_ENTRIES = "repro_cache_entries"
M_CACHE_BYTES = "repro_cache_bytes"


#: Wire-mode label values for the front-end decode/encode histograms.
WIRE_LABELS = ("ndjson", "shmem")


def op_label(op) -> str:
    """Clamp an op name to a bounded label value."""
    return op if op in OPS else "other"


def wire_label(wire) -> str:
    """Clamp a wire mode to a bounded label value."""
    return wire if wire in WIRE_LABELS else "ndjson"


class ServiceInstruments:
    """Typed emit methods over the shared registry; one per service.

    Instrument handles are resolved **once** here and cached: the label
    space is bounded by construction (the clamped op set), so the hot
    request path touches a plain dict/attribute instead of paying the
    registry's name validation and family lookup per event.  Only the
    error counter (labelled by exception type, cold path) still goes
    through the registry at emit time.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        ops = (*OPS, "other")
        # Touch the un-labelled families once so an idle service still
        # exposes them (scrapers see the catalog, not just past traffic).
        self._queue_wait = registry.histogram(
            M_QUEUE_WAIT, "Admission-to-batch queue wait", unit="seconds")
        self._batch_assembly = registry.histogram(
            M_BATCH_ASSEMBLY, "Window open to flush per dispatched batch",
            unit="seconds")
        self._cache_lookup = registry.histogram(
            M_CACHE_LOOKUP, "Result-cache lookup time", unit="seconds")
        self._batch_size = registry.histogram(
            M_BATCH_SIZE, "Requests coalesced per dispatch")
        self._queue_depth = registry.gauge(
            M_QUEUE_DEPTH, "Requests admitted but not yet batched")
        self._inflight = registry.gauge(
            M_INFLIGHT, "Requests inside submit() right now")
        self._requests = {
            op: registry.counter(M_REQUESTS, "Requests received",
                                 labels={"op": op})
            for op in ops
        }
        self._latency = {
            op: registry.histogram(M_REQUEST_LATENCY,
                                   "End-to-end submit latency",
                                   unit="seconds", labels={"op": op})
            for op in ops
        }
        self._exec = {
            op: registry.histogram(M_EXEC, "Pool dispatch time per batch",
                                   unit="seconds", labels={"op": op})
            for op in ops
        }
        self._cache_hits = registry.counter(M_CACHE_HITS, "Result-cache hits")
        self._cache_misses = registry.counter(
            M_CACHE_MISSES, "Result-cache misses")
        self._cache_entries = registry.gauge(M_CACHE_ENTRIES, "Cached results")
        self._cache_bytes = registry.gauge(
            M_CACHE_BYTES, "Cached result bytes", unit="bytes")
        self._coalesced = registry.counter(
            M_COALESCED, "Requests coalesced onto an in-flight twin")
        # Decode/encode are split by wire mode, so the shmem-vs-ndjson
        # comparison the zero-copy plane exists for is readable straight
        # off the exposition instead of needing a benchmark run.
        self._decode = {
            w: registry.histogram(M_DECODE, "Wire image decode time",
                                  unit="seconds", labels={"wire": w})
            for w in WIRE_LABELS
        }
        self._encode = {
            w: registry.histogram(M_ENCODE, "Wire result encode time",
                                  unit="seconds", labels={"wire": w})
            for w in WIRE_LABELS
        }

    # -- request lifecycle -------------------------------------------------

    def request_started(self, op) -> None:
        self._requests[op_label(op)].inc()
        self._inflight.inc()

    def request_finished(self, op, seconds: float) -> None:
        self._inflight.dec()
        self._latency[op_label(op)].observe(seconds)

    def request_error(self, op, exc: BaseException) -> None:
        self.registry.counter(
            M_ERRORS, "Requests failed, by error type",
            labels={"op": op_label(op), "type": type(exc).__name__},
        ).inc()

    # -- cache / coalescing ------------------------------------------------

    def cache_lookup(self, seconds: float, *, hit: bool) -> None:
        self._cache_lookup.observe(seconds)
        if hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()

    def cache_evicted(self, n: int) -> None:
        if n:
            self.registry.counter(M_CACHE_EVICTIONS, "LRU evictions").inc(n)

    def cache_size(self, entries: int, total_bytes: int) -> None:
        self._cache_entries.set(entries)
        self._cache_bytes.set(total_bytes)

    def coalesced(self) -> None:
        self._coalesced.inc()

    # -- admission / batching ----------------------------------------------

    def shed(self) -> None:
        self.registry.counter(M_SHED, "Requests shed at admission").inc()

    def expired(self) -> None:
        self.registry.counter(M_EXPIRED, "Requests expired in queue").inc()

    def queue_depth(self, depth: int) -> None:
        self._queue_depth.set(depth)

    def queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    def batch_flushed(self, size: int, assembly_seconds: float) -> None:
        self._batch_size.observe(size)
        self._batch_assembly.observe(assembly_seconds)

    def exec_done(self, op, seconds: float) -> None:
        self._exec[op_label(op)].observe(seconds)

    def degraded(self) -> None:
        self.registry.counter(M_DEGRADED,
                              "Batches degraded to serial execution").inc()

    # -- wire front-end ----------------------------------------------------

    def decode(self, seconds: float, *, wire: str = "ndjson") -> None:
        self._decode[wire_label(wire)].observe(seconds)

    def encode(self, seconds: float, *, wire: str = "ndjson") -> None:
        self._encode[wire_label(wire)].observe(seconds)

    # -- reading back ------------------------------------------------------

    def latency_summary(self) -> dict:
        """Per-op end-to-end latency quantiles for ``stats`` snapshots."""
        family = self.registry.family(M_REQUEST_LATENCY)
        if family is None:
            return {}
        out = {}
        for values, hist in sorted(family.children.items()):
            if hist.count == 0:
                continue  # pre-registered op never driven; keep summaries lean
            label = values[0] if values else ""
            out[label] = {
                "count": hist.count,
                "p50_ms": hist.quantile(0.50) * 1e3,
                "p95_ms": hist.quantile(0.95) * 1e3,
                "p99_ms": hist.quantile(0.99) * 1e3,
            }
        return out

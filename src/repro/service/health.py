"""Per-shard health probing and the circuit-breaker state machine.

The router never *guesses* that a shard is healthy: each shard gets a
:class:`HealthMonitor` coroutine sending ``ping`` probes with a hard
deadline, and a :class:`CircuitBreaker` folds probe results together
with live forwarding outcomes into the classic three-state machine:

* **closed** -- traffic flows; consecutive failures are counted.
* **open** -- tripped after ``fail_threshold`` consecutive failures;
  every routing decision skips the shard (requests go to its ring
  successor) until the cooldown elapses.
* **half-open** -- after the cooldown one trial is let through; success
  closes the breaker, failure re-opens it with an exponentially longer
  cooldown.

The deadline/backoff vocabulary is deliberately the dispatcher's
(:mod:`repro.runtime.dispatch`): probe deadlines default through
:func:`~repro.runtime.dispatch.resolve_timeout` (clamped to stay
probe-sized) and the re-open cooldown grows as ``open_s * 2**n`` --
the same ``backoff * 2**attempt`` schedule task retries use -- so the
service tier and the batch runtime below it speak one timeout
language.

Probes honor the ``svc:health`` fault site: a seeded plan can hang or
fail a probe deterministically, driving a breaker open (and back
closed) without harming a real process.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.faults.inject import fire_async
from repro.runtime.dispatch import resolve_timeout
from repro.utils.errors import ValidationError

#: Breaker states.
CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"

#: Consecutive failures that trip a closed breaker.
DEFAULT_FAIL_THRESHOLD = 3

#: Base cooldown before an open breaker admits a half-open trial.
DEFAULT_OPEN_S = 0.5

#: Cap on the exponential cooldown (``open_s * 2**n`` stops doubling
#: here, so a long-dead shard is still re-probed within seconds of its
#: respawn instead of minutes later).
MAX_OPEN_S = 8.0

#: Default wall budget of one health probe.  ``resolve_timeout`` feeds
#: task deadlines (seconds-to-minutes); a liveness probe must stay two
#: orders of magnitude tighter, hence the clamp in :func:`probe_timeout`.
DEFAULT_PROBE_TIMEOUT_S = 0.5

#: StreamReader limit for a probe connection.  A ``ping`` reply is a
#: few hundred bytes of JSON; this is generous headroom, not the wire's
#: ``MAX_REQUEST_BYTES`` (a probe never carries image payloads).
PROBE_LIMIT_BYTES = 16 * 1024

#: Most recent transitions a breaker keeps for its snapshot.
TRANSITION_LOG_LIMIT = 64


def probe_timeout(timeout_s: float | None = None) -> float:
    """Resolve a probe deadline: explicit value, else the dispatcher's
    resolved task timeout clamped to probe scale."""
    if timeout_s is not None:
        if timeout_s <= 0:
            raise ValidationError("probe timeout must be positive")
        return float(timeout_s)
    return min(resolve_timeout(None), DEFAULT_PROBE_TIMEOUT_S)


@dataclass
class BreakerStats:
    failures: int = 0          # total recorded failures
    successes: int = 0         # total recorded successes
    opened: int = 0            # transitions into OPEN
    half_opened: int = 0       # transitions into HALF_OPEN
    closed: int = 0            # transitions into CLOSED (recoveries)

    def snapshot(self) -> dict:
        return {
            "failures": self.failures,
            "successes": self.successes,
            "opened": self.opened,
            "half_opened": self.half_opened,
            "closed": self.closed,
        }


@dataclass
class Transition:
    """One recorded state change, timed on the monotonic clock."""

    t_s: float
    frm: str
    to: str


class CircuitBreaker:
    """Closed / open / half-open availability state for one shard.

    Success and failure reports may come from health probes *or* from
    live request forwards -- both are evidence about the same shard.
    ``on_transition(shard_id, frm, to)`` (when given) fires on every
    state change, which is how the router keeps its metrics gauge and
    event log current without the breaker knowing either exists.
    """

    def __init__(self, shard_id: int, *,
                 fail_threshold: int = DEFAULT_FAIL_THRESHOLD,
                 open_s: float = DEFAULT_OPEN_S,
                 max_open_s: float = MAX_OPEN_S,
                 on_transition=None,
                 clock=time.monotonic):
        if fail_threshold < 1:
            raise ValidationError("fail_threshold must be at least 1")
        if open_s <= 0:
            raise ValidationError("open_s must be positive")
        self.shard_id = shard_id
        self.fail_threshold = int(fail_threshold)
        self.open_s = float(open_s)
        self.max_open_s = float(max_open_s)
        self.state = CLOSED
        self.stats = BreakerStats()
        self.transitions: list[Transition] = []
        self._consecutive = 0
        self._opened_at = 0.0
        self._reopen_count = 0  # consecutive OPEN entries without a recovery
        self._on_transition = on_transition
        self._clock = clock

    # -- state machine -----------------------------------------------------

    def _transition(self, to: str) -> None:
        frm, self.state = self.state, to
        if to == OPEN:
            self.stats.opened += 1
            self._opened_at = self._clock()
        elif to == HALF_OPEN:
            self.stats.half_opened += 1
        else:
            self.stats.closed += 1
            self._reopen_count = 0
        self.transitions.append(Transition(self._clock(), frm, to))
        del self.transitions[:-TRANSITION_LOG_LIMIT]
        if self._on_transition is not None:
            self._on_transition(self.shard_id, frm, to)

    @property
    def cooldown_s(self) -> float:
        """Current re-open cooldown (exponential, like task backoff)."""
        return min(self.open_s * (2 ** max(self._reopen_count - 1, 0)),
                   self.max_open_s)

    def allow(self) -> bool:
        """May a request (or probe) be sent to this shard right now?

        An open breaker whose cooldown has elapsed flips to half-open
        and admits exactly this one trial; further calls say no until
        the trial reports back.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._transition(HALF_OPEN)
                return True
            return False
        # HALF_OPEN: the single trial is already in flight.
        return False

    def record_success(self) -> None:
        self.stats.successes += 1
        self._consecutive = 0
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.stats.failures += 1
        self._consecutive += 1
        if self.state == HALF_OPEN:
            self._reopen_count += 1
            self._transition(OPEN)
        elif self.state == CLOSED and self._consecutive >= self.fail_threshold:
            self._reopen_count += 1
            self._transition(OPEN)

    # -- reading back ------------------------------------------------------

    def recovered(self) -> bool:
        """Did this breaker ever complete a full open -> half-open ->
        closed recovery?  (What the chaos acceptance asserts.)"""
        states = [t.to for t in self.transitions]
        try:
            i = states.index(OPEN)
            j = states.index(HALF_OPEN, i + 1)
            states.index(CLOSED, j + 1)
        except ValueError:
            return False
        return True

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "cooldown_s": self.cooldown_s,
            **self.stats.snapshot(),
            "recovered": self.recovered(),
        }


class HealthMonitor:
    """One shard's probe loop: ``ping`` with a deadline, on a cadence.

    Each probe opens a fresh connection (a dead listener must fail the
    probe, which a cached connection would mask), sends ``ping``, and
    demands a well-formed reply within :func:`probe_timeout` seconds.
    Outcomes feed the shard's :class:`CircuitBreaker`; the monitor
    respects ``allow()`` so an open breaker is only probed once per
    cooldown (the half-open trial).
    """

    def __init__(self, shard_id: int, socket_path: str,
                 breaker: CircuitBreaker, *,
                 interval_s: float = 0.1,
                 timeout_s: float | None = None):
        if interval_s <= 0:
            raise ValidationError("probe interval must be positive")
        self.shard_id = shard_id
        self.socket_path = str(socket_path)
        self.breaker = breaker
        self.interval_s = float(interval_s)
        self.timeout_s = probe_timeout(timeout_s)
        self.probes = 0
        #: Why the most recent failed probe failed (``None`` after a
        #: success) -- surfaced so a stats snapshot can say *why* a
        #: breaker is open, not just that it is.
        self.last_error: str | None = None

    async def probe_once(self) -> bool:
        """One probe round trip; records the outcome on the breaker."""
        seq, self.probes = self.probes, self.probes + 1
        try:
            # The fault site fires *inside* the deadline on purpose: an
            # injected hang must miss the deadline exactly as a wedged
            # shard would.
            ok = await asyncio.wait_for(
                self._probe(seq), timeout=self.timeout_s
            )
        except Exception as exc:
            # Any failure mode -- refused connect, missed deadline,
            # malformed reply, injected fault -- is the same verdict
            # (unhealthy); the cause is kept for the snapshot.
            self.last_error = f"{type(exc).__name__}: {exc}"
            ok = False
        if ok:
            self.last_error = None
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        return ok

    async def _probe(self, seq: int) -> bool:
        await fire_async("svc:health", task=self.shard_id, attempt=seq)
        reader = writer = None
        try:
            reader, writer = await asyncio.open_unix_connection(
                self.socket_path, limit=PROBE_LIMIT_BYTES
            )
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            line = await reader.readline()
        finally:
            if writer is not None:
                writer.close()
        if not line:
            return False
        reply = json.loads(line)
        if not reply.get("ok"):
            return False
        result = reply.get("result")
        if isinstance(result, dict):
            # A sharded server echoes its identity; a probe answered by
            # the wrong shard (stale socket path) is a failure, and a
            # draining shard stops taking traffic before it exits.
            if result.get("shard_id") not in (None, self.shard_id):
                return False
            if result.get("draining"):
                return False
        return True

    async def run(self) -> None:
        """Probe forever (cancelled by the router's stop())."""
        while True:
            if self.breaker.allow():
                await self.probe_once()
            await asyncio.sleep(self.interval_s)

"""Broadcast on the BDM machine (Algorithm 2 of the paper).

``q`` elements held by processor 0 are delivered to all ``p``
processors using *two* matrix transpositions:

1. a blocked transpose spreads processor 0's data so that processor
   ``i`` holds the slice ``i*q/p .. (i+1)*q/p - 1`` (it lands in slot 0
   of the transposed layout, the slot fetched from processor 0);
2. a second, *specialized* transpose in which every processor
   prefetches just that first slot from every other processor, leaving
   each processor with a full copy of all ``q`` elements.

Total communication cost: ``2(tau + q - q/p)`` -- equation (2).
"""

from __future__ import annotations

from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.bdm.transpose import transpose
from repro.machines.params import MachineParams
from repro.utils.errors import ValidationError


def broadcast(
    machine: Machine,
    A: GlobalArray,
    *,
    root: int = 0,
    phase_name: str = "broadcast",
) -> GlobalArray:
    """Broadcast ``root``'s block of ``A`` to every processor.

    ``A`` must have equal block lengths ``q`` with ``p | q`` (pad the
    payload if needed); only ``root``'s block is read.  Returns a new
    :class:`GlobalArray` where every processor holds a copy of the ``q``
    elements.
    """
    p = machine.p
    q = A.block_length(root)
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}; pad the payload")
    size = q // p

    # Step 1-2: blocked transpose; processor i's slot `root` afterwards
    # holds root's elements [i*size, (i+1)*size).
    AT = transpose(machine, A, phase_name=f"{phase_name}:spread")

    # Step 3-4: specialized transpose -- prefetch only slot `root` (the
    # valid data) from every processor.
    out = GlobalArray(machine, q, dtype=A.dtype, name=f"bcast({A.name})")
    with machine.phase(f"{phase_name}:collect"):
        for proc in machine.procs:
            i = proc.pid
            with proc.prefetch_batch():
                for loop in range(p):
                    r = (i + loop) % p
                    piece = AT.read(proc, r, root * size, (root + 1) * size)
                    out.write(proc, i, piece, start=r * size)
            proc.charge_copy(q)
    return out


def broadcast_cost_model(params: MachineParams, q: int, p: int) -> dict[str, float]:
    """Closed-form BDM cost of the broadcast -- equation (2)."""
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}")
    words = q - q // p
    return {
        "comm_s": 2.0 * (params.latency_s + words * params.word_time_s()),
        "comp_s": params.copy_time_s(2 * q),
    }

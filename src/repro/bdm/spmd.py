"""Generator-based SPMD execution on the BDM machine.

The phase-style API of :class:`~repro.bdm.machine.Machine` makes the
driver enumerate processors inside each phase.  This module offers the
inverse -- and more Split-C-faithful -- style: the user writes ONE
program that every processor executes, yielding at synchronization
points, exactly like the paper's Algorithm 1 listing ("Processor i runs
the following program").

::

    def program(ctx: SpmdContext):
        A = ctx.array("A", q)                 # collective allocation
        for loop in range(ctx.p):
            r = (ctx.pid + loop) % ctx.p
            block = ctx.prefetch(A, r)        # split-phase read
        yield ctx.sync()                      # wait for prefetches
        ...
        yield ctx.barrier()                   # global barrier

    run_spmd(machine, program)

Execution model: all ``p`` program instances are generators advanced in
lock step between synchronization points.  ``prefetch`` returns a
:class:`Handle` whose ``.value`` becomes available after the next
``sync()`` (reading earlier raises), faithfully reproducing Split-C's
``:=`` / ``sync()`` semantics -- including the failure mode where
un-synchronized data is consumed.  Costs are charged through the same
machinery as the phase API, so both styles produce identical reports
for identical access patterns.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.utils.errors import ConfigurationError, HazardError, ValidationError


class Handle:
    """A split-phase prefetch result; readable only after ``sync()``."""

    __slots__ = ("_value", "_ready")

    def __init__(self):
        self._value = None
        self._ready = False

    @property
    def value(self) -> np.ndarray:
        if not self._ready:
            raise ValidationError(
                "prefetch handle read before sync(): insert `yield ctx.sync()`"
            )
        return self._value

    def _fulfill(self, value: np.ndarray) -> None:
        self._value = value
        self._ready = True


class _Sync:
    """Yield token: wait for this processor's outstanding prefetches."""


class _Barrier:
    """Yield token: global barrier across all processors."""


class SpmdContext:
    """Per-processor view handed to the SPMD program."""

    def __init__(self, runner: "_SpmdRunner", pid: int):
        self._runner = runner
        self.pid = pid
        self._pending: list[tuple[Handle, object]] = []

    @property
    def p(self) -> int:
        return self._runner.machine.p

    @property
    def proc(self):
        return self._runner.machine.procs[self.pid]

    # -- collective allocation ------------------------------------------

    def array(self, name: str, length, dtype=np.int64) -> GlobalArray:
        """Get-or-create a named distributed array (collective).

        Every processor must request the same (name, length, dtype);
        the first caller allocates.
        """
        return self._runner.get_array(name, length, dtype)

    # -- split-phase communication ----------------------------------------

    def prefetch(self, arr: GlobalArray, owner: int, start: int = 0, stop: int | None = None) -> Handle:
        """Issue a split-phase read (Split-C ``:=``); costs charged and
        data delivered at the next ``sync()``."""
        handle = Handle()
        self._pending.append(
            (handle, lambda proc, a=arr, o=owner, s=start, e=stop: a.read(proc, o, s, e))
        )
        return handle

    def prefetch_indices(self, arr: GlobalArray, owner: int, indices: np.ndarray) -> Handle:
        """Split-phase read of scattered elements (e.g. a tile edge)."""
        handle = Handle()
        idx = np.asarray(indices, dtype=np.int64).copy()
        self._pending.append(
            (handle, lambda proc, a=arr, o=owner, ix=idx: a.read_indices(proc, o, ix))
        )
        return handle

    def write(self, arr: GlobalArray, values, start: int = 0, *, owner: int | None = None) -> None:
        """Write (by default into this processor's own block)."""
        arr.write(self.proc, self.pid if owner is None else owner, values, start=start)

    def write_indices(self, arr: GlobalArray, indices: np.ndarray, values, *, owner: int | None = None) -> None:
        """Scattered write (by default into this processor's own block)."""
        arr.write_indices(
            self.proc, self.pid if owner is None else owner, indices, values
        )

    def read_local(self, arr: GlobalArray) -> np.ndarray:
        """Read-only view of this processor's own block."""
        return arr.local(self.pid)

    def charge(self, ops: float) -> None:
        self.proc.charge_comp(ops)

    def sync(self) -> _Sync:
        """Token to ``yield``: completes all outstanding prefetches."""
        return _Sync()

    def barrier(self) -> _Barrier:
        """Token to ``yield``: global synchronization."""
        return _Barrier()

    # -- runner internals ---------------------------------------------------

    def _complete_prefetches(self) -> None:
        if not self._pending:
            return
        with self.proc.prefetch_batch():
            for handle, read in self._pending:
                handle._fulfill(read(self.proc))
        self._pending.clear()


class _SpmdRunner:
    def __init__(self, machine: Machine, program: Callable[[SpmdContext], Iterator]):
        self.machine = machine
        self.program = program
        self._arrays: dict[str, GlobalArray] = {}

    def get_array(self, name: str, length, dtype) -> GlobalArray:
        if name in self._arrays:
            arr = self._arrays[name]
            if arr.dtype != np.dtype(dtype):
                raise ConfigurationError(
                    f"array {name!r} re-requested with dtype {dtype}, has {arr.dtype}"
                )
            return arr
        arr = GlobalArray(self.machine, length, dtype=dtype, name=name)
        self._arrays[name] = arr
        return arr

    def run(self) -> list:
        machine = self.machine
        contexts = [SpmdContext(self, pid) for pid in range(machine.p)]
        gens = []
        for ctx in contexts:
            gen = self.program(ctx)
            if not hasattr(gen, "__next__"):
                raise ConfigurationError(
                    "SPMD program must be a generator (use `yield ctx.barrier()`)"
                )
            gens.append(gen)

        results: list = [None] * machine.p
        active = set(range(machine.p))
        step = 0
        while active:
            done: set[int] = set()
            tokens: dict[int, object] = {}
            with machine.phase(f"spmd:step{step}"):
                for pid in sorted(active):
                    try:
                        tokens[pid] = next(gens[pid])
                    except StopIteration as stop:
                        if contexts[pid]._pending:
                            # A prefetch that is never sync()ed would be
                            # silently dropped -- on a real machine the
                            # transfer is in flight and its cost unpaid.
                            raise HazardError(
                                f"SPMD program on pid {pid} completed with "
                                f"{len(contexts[pid]._pending)} unserviced "
                                "prefetch(es); add `yield ctx.sync()` "
                                "before returning"
                            ) from None
                        results[pid] = stop.value
                        done.add(pid)
                # A sync completes only the issuing processor's own
                # prefetches (a local wait); barriers end the superstep
                # for everyone.  Both are serviced at the phase edge,
                # which the lock-step construction makes safe.
                for pid in sorted(active - done):
                    if isinstance(tokens.get(pid), _Sync):
                        contexts[pid]._complete_prefetches()
            active -= done
            step += 1
            if step > 1_000_000:  # pragma: no cover - runaway guard
                raise ConfigurationError("SPMD program exceeded step limit")
        return results


def run_spmd(machine: Machine, program: Callable[[SpmdContext], Iterator]) -> list:
    """Run an SPMD generator program on every processor of ``machine``.

    Returns the per-processor ``return`` values of the generators.
    Between two consecutive ``yield`` points all processors execute
    concurrently (one simulated superstep); the hazard checker applies
    within each superstep just as in the phase API.
    """
    return _SpmdRunner(machine, program).run()

"""Distributed global arrays for the BDM simulator.

A :class:`GlobalArray` owns one local NumPy block per processor (blocks
may differ in length and even in shape).  All access goes through
``read``/``write`` so the accessing processor can be charged for remote
traffic and so the simulator can detect same-phase read/write hazards.

Hazard discipline
-----------------
The simulator executes a phase's per-processor programs sequentially,
so a remote read could observe data written *within the same phase* --
something a real SPMD machine would only guarantee after the next
barrier.  To keep simulations faithful, every access is recorded in a
per-word shadow memory (:class:`repro.checker.shadow.ShadowMemory`)
and same-phase conflicts raise
:class:`~repro.utils.errors.HazardError` when checking is enabled:
read-after-write (a remote read of words another processor wrote),
write-after-write (two processors writing the same word), and
write-after-read (a write landing on words another processor already
read).  Scattered :meth:`read_indices`/:meth:`write_indices` accesses
are checked on their exact index sets, not a covering interval, so
disjoint strided accesses from different processors are allowed.
Local reads of one's own memory are always allowed (a processor sees
its own writes immediately on a real machine too), and any processor's
repeated accesses to the same words never conflict with themselves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.checker.shadow import ShadowMemory
from repro.utils.errors import HazardError, ValidationError


class GlobalArray:
    """An array distributed over the ``p`` processors of a machine.

    Parameters
    ----------
    machine:
        The owning :class:`~repro.bdm.machine.Machine`; traffic is
        charged through its processors.
    shape_per_proc:
        Either an int (every processor owns a 1-D block of that length)
        or a sequence of per-processor lengths.
    dtype:
        NumPy dtype of the elements; must be an integer or float type.
    name:
        Optional debugging name.
    """

    def __init__(self, machine, shape_per_proc, dtype=np.int64, name: str = ""):
        self._machine = machine
        p = machine.p
        if isinstance(shape_per_proc, (int, np.integer)):
            lengths = [int(shape_per_proc)] * p
        else:
            lengths = [int(s) for s in shape_per_proc]
            if len(lengths) != p:
                raise ValidationError(
                    f"need one block length per processor ({p}), got {len(lengths)}"
                )
        if any(length < 0 for length in lengths):
            raise ValidationError("block lengths must be non-negative")
        self._blocks = [np.zeros(length, dtype=dtype) for length in lengths]
        self.name = name or f"garray@{id(self):x}"
        self.dtype = np.dtype(dtype)
        # Per-word same-phase access log (writer/reader pids).
        self._shadow = ShadowMemory(self.name, lengths)
        machine._register_array(self)

    # -- structure -------------------------------------------------------

    @property
    def p(self) -> int:
        return len(self._blocks)

    def block_length(self, owner: int) -> int:
        """Number of elements held by processor ``owner``."""
        return len(self._blocks[owner])

    def total_length(self) -> int:
        return sum(len(b) for b in self._blocks)

    # -- phase bookkeeping ------------------------------------------------

    def _clear_phase_writes(self) -> None:
        self._shadow.clear()

    @property
    def _checking(self) -> bool:
        """Shadow tracking applies inside a phase with checking enabled."""
        return self._machine.check_hazards and self._machine.in_phase

    def _shadow_read(self, owner: int, sel, pid: int) -> None:
        try:
            self._shadow.record_read(owner, sel, pid, self._machine.phase_name)
        except HazardError as exc:
            # Land the provenance in the event stream before raising.
            self._machine._note_hazard(getattr(exc, "hazard", None))
            raise

    def _shadow_write(self, owner: int, sel, pid: int) -> None:
        try:
            self._shadow.record_write(owner, sel, pid, self._machine.phase_name)
        except HazardError as exc:
            self._machine._note_hazard(getattr(exc, "hazard", None))
            raise

    # -- access ------------------------------------------------------------

    def read(self, proc, owner: int, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Read ``[start:stop)`` of ``owner``'s block on behalf of ``proc``.

        Remote reads (``owner != proc.pid``) are charged to ``proc`` as a
        block prefetch of ``stop - start`` words and are hazard-checked.
        Returns a copy (remote data lands in local memory on a real
        machine; local reads also copy, for uniform semantics).
        """
        if not (0 <= owner < self.p):
            raise ValidationError(f"owner {owner} out of range [0, {self.p})")
        block = self._blocks[owner]
        if stop is None:
            stop = len(block)
        self._validate_range(owner, start, stop)
        if owner != proc.pid:
            if self._checking:
                self._shadow_read(owner, slice(start, stop), proc.pid)
            proc._charge_comm(stop - start, from_pid=owner)
            self._machine._charge_server(owner, stop - start)
        return block[start:stop].copy()

    def write(self, proc, owner: int, values, start: int = 0) -> None:
        """Write ``values`` into ``owner``'s block at offset ``start``.

        Remote writes are charged like remote reads (one-sided put).
        """
        values = np.asarray(values, dtype=self.dtype)
        if values.ndim != 1:
            values = values.ravel()
        stop = start + len(values)
        self._validate_range(owner, start, stop)
        if owner != proc.pid:
            proc._charge_comm(len(values), from_pid=owner)
            self._machine._charge_server(owner, len(values))
        if self._checking:
            self._shadow_write(owner, slice(start, stop), proc.pid)
        self._blocks[owner][start:stop] = values

    def read_indices(self, proc, owner: int, indices: np.ndarray) -> np.ndarray:
        """Read scattered elements of ``owner``'s block on behalf of ``proc``.

        Used for tile-edge pixels, whose flat offsets are strided.  The
        BDM model prices ``l`` pipelined word prefetches at ``tau + l``,
        so the charge equals an ``len(indices)``-word block read.
        Hazard checking is performed on the exact index set.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(0, dtype=self.dtype)
        self._validate_range(owner, int(indices.min()), int(indices.max()) + 1)
        if owner != proc.pid:
            if self._checking:
                self._shadow_read(owner, indices, proc.pid)
            proc._charge_comm(len(indices), from_pid=owner)
            self._machine._charge_server(owner, len(indices))
        return self._blocks[owner][indices].copy()

    def write_indices(self, proc, owner: int, indices: np.ndarray, values) -> None:
        """Write scattered elements into ``owner``'s block.

        ``indices`` must be duplicate-free: with a repeated index the
        store would silently keep the last value (NumPy fancy-assignment
        order), which on a real machine is an unordered self-race.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype).ravel()
        if indices.shape != values.shape:
            raise ValidationError("indices and values must have equal length")
        if indices.size == 0:
            return
        if np.unique(indices).size != indices.size:
            raise ValidationError(
                f"write_indices to {self.name}[{owner}] has duplicate "
                "indices; the winning value would be arbitrary"
            )
        self._validate_range(owner, int(indices.min()), int(indices.max()) + 1)
        if owner != proc.pid:
            proc._charge_comm(len(values), from_pid=owner)
            self._machine._charge_server(owner, len(values))
        if self._checking:
            self._shadow_write(owner, indices, proc.pid)
        self._blocks[owner][indices] = values

    def local(self, pid: int) -> np.ndarray:
        """Direct *read-only* view of a processor's block.

        For write access use :meth:`write` (so hazards are tracked);
        this view is handy for cheap local scans that need no charging
        beyond what the algorithm accounts for explicitly.
        """
        view = self._blocks[pid].view()
        view.flags.writeable = False
        return view

    def place(self, pid: int, values) -> None:
        """Load ``values`` into ``pid``'s whole block, free of charge.

        *Initial data placement*: the BDM model (like every BSP-style
        experimental study) charges only traffic between processors,
        not loading the input before timed phases begin.  This is the
        one sanctioned way to seed a block directly -- the cost linter
        (COST401) flags any other ``._blocks`` access outside this
        module as unaccounted traffic.
        """
        if not (0 <= pid < self.p):
            raise ValidationError(f"pid {pid} out of range [0, {self.p})")
        block = self._blocks[pid]
        flat = np.asarray(values, dtype=self.dtype).ravel()
        if flat.shape != block.shape:
            raise ValidationError(
                f"placement of {flat.shape[0]} element(s) into block of "
                f"{block.shape[0]} on processor {pid}"
            )
        block[:] = flat

    def scatter_rows(self, matrix: np.ndarray) -> None:
        """Initialize from a ``p x q`` matrix: row ``i`` -> processor ``i``.

        This is *initial data placement* (allowed free of charge by the
        BDM model), not communication.
        """
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.p:
            raise ValidationError(
                f"matrix has {matrix.shape[0]} rows, machine has {self.p} processors"
            )
        for i in range(self.p):
            row = np.asarray(matrix[i], dtype=self.dtype).ravel()
            if len(row) != len(self._blocks[i]):
                raise ValidationError(
                    f"row {i} has {len(row)} elements, block holds "
                    f"{len(self._blocks[i])}"
                )
            self._blocks[i][:] = row

    def gather_rows(self) -> np.ndarray:
        """Collect all blocks into a ``p x q`` matrix (equal lengths only).

        Diagnostic counterpart of :meth:`scatter_rows`; free of charge.
        """
        lengths = {len(b) for b in self._blocks}
        if len(lengths) != 1:
            raise ValidationError("gather_rows requires equal block lengths")
        return np.stack([b.copy() for b in self._blocks])

    def to_list(self) -> list[np.ndarray]:
        """Copies of every block (diagnostic)."""
        return [b.copy() for b in self._blocks]

    # -- internals ---------------------------------------------------------

    def _validate_range(self, owner: int, start: int, stop: int) -> None:
        if not (0 <= owner < self.p):
            raise ValidationError(f"owner {owner} out of range [0, {self.p})")
        n = len(self._blocks[owner])
        if not (0 <= start <= stop <= n):
            raise ValidationError(
                f"range [{start}:{stop}) out of bounds for block of length {n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lengths = [len(b) for b in self._blocks]
        return f"GlobalArray({self.name!r}, p={self.p}, lengths={lengths})"


def distribute_sequence(machine, values: Sequence, dtype=np.int64, name: str = "") -> GlobalArray:
    """Place ``values[i]`` (a 1-D array) in processor ``i``'s memory."""
    lengths = [len(np.ravel(v)) for v in values]
    arr = GlobalArray(machine, lengths, dtype=dtype, name=name)
    for i, v in enumerate(values):
        arr._blocks[i][:] = np.asarray(v, dtype=dtype).ravel()
    return arr

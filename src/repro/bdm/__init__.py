"""Block Distributed Memory (BDM) machine simulator.

The BDM model (JaJa & Ryu) is the computation model the paper uses: a
single address space over ``p`` distributed memories, where a remote
access to a block of ``b`` words costs ``tau + b`` time units and ``l``
pipelined prefetches cost ``tau + l``.  This package provides

* :class:`~repro.bdm.machine.Machine` -- ``p`` virtual processors with
  per-phase cost accounting (simulated communication and computation
  time per processor, global elapsed time),
* :class:`~repro.bdm.memory.GlobalArray` -- an array distributed across
  the processors' memories, with remote reads/writes charged to the
  accessing processor and an optional same-phase hazard checker,
* the two data-movement primitives of Section 2:
  :func:`~repro.bdm.transpose.transpose` (Algorithm 1) and
  :func:`~repro.bdm.broadcast.broadcast` (Algorithm 2).

Algorithms are written phase-style: within ``with machine.phase(...):``
every processor's program for that phase runs to completion (processor
order is irrelevant by the hazard discipline), and a barrier separates
phases, exactly like the ``barrier()``-separated supersteps of the
paper's Split-C programs.
"""

from repro.bdm.cost import CostCounter, PhaseRecord, MachineReport
from repro.bdm.memory import GlobalArray, distribute_sequence
from repro.bdm.machine import Machine, Processor
from repro.bdm.transpose import transpose, transpose_cost_model, gather_to
from repro.bdm.broadcast import broadcast, broadcast_cost_model
from repro.bdm.spmd import run_spmd, SpmdContext, Handle
from repro.bdm.trace import Tracer, PhaseTrace
from repro.bdm.collectives import (
    allgather,
    allreduce,
    prefix_sum,
    reduce_cost_model,
    reduce_to,
    scatter_from,
)

__all__ = [
    "CostCounter",
    "PhaseRecord",
    "MachineReport",
    "GlobalArray",
    "distribute_sequence",
    "Machine",
    "Processor",
    "transpose",
    "transpose_cost_model",
    "gather_to",
    "broadcast",
    "broadcast_cost_model",
    "allgather",
    "allreduce",
    "prefix_sum",
    "reduce_cost_model",
    "reduce_to",
    "scatter_from",
    "run_spmd",
    "Tracer",
    "PhaseTrace",
    "SpmdContext",
    "Handle",
]

"""Matrix transposition on the BDM machine (Algorithm 1 of the paper).

The ``q x p`` matrix ``A`` is stored column-major across processors:
processor ``i`` owns column ``i`` (``q`` elements).  The transpose
rearranges the data so that processor ``t`` ends up with rows
``t*q/p .. (t+1)*q/p - 1`` from *every* column, i.e. each processor
ends with ``q`` elements again, laid out as ``p`` contiguous slots of
``q/p`` (slot ``r`` holding the piece fetched from processor ``r``).

Processor ``i`` executes ``p`` rounds; in round ``loop`` it prefetches
the block of ``q/p`` elements it needs from processor
``r = (i + loop) mod p`` (round 0 is the local block).  Since the
``p - 1`` remote prefetches are pipelined, the communication cost is
``tau + (q - q/p)`` word-times -- equation (1) of the paper.

A *truncated* variant handles ``q < p`` (used by histogramming when the
number of grey levels ``k`` is smaller than ``p``): only the first
``q`` processors receive data -- processor ``i < q`` collects element
``i`` of every column, ending with ``p`` elements.
"""

from __future__ import annotations

import numpy as np

from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.machines.params import MachineParams
from repro.utils.errors import ValidationError


def transpose(machine: Machine, A: GlobalArray, *, phase_name: str = "transpose") -> GlobalArray:
    """Transpose the distributed ``q x p`` matrix ``A``.

    Dispatches to the blocked transpose when ``p`` divides ``q`` and to
    the truncated transpose when ``q < p``.  Returns a new
    :class:`GlobalArray` holding the transposed layout.
    """
    p = machine.p
    q = A.block_length(0)
    for owner in range(p):
        if A.block_length(owner) != q:
            raise ValidationError("transpose requires equal block lengths")
    if q >= p:
        if q % p != 0:
            raise ValidationError(f"p={p} must divide q={q} for the blocked transpose")
        return _blocked_transpose(machine, A, q, phase_name)
    return _truncated_transpose(machine, A, q, phase_name)


def _blocked_transpose(machine: Machine, A: GlobalArray, q: int, phase_name: str) -> GlobalArray:
    p = machine.p
    size = q // p
    AT = GlobalArray(machine, q, dtype=A.dtype, name=f"{A.name}^T")
    with machine.phase(phase_name):
        for proc in machine.procs:
            i = proc.pid
            with proc.prefetch_batch():
                for loop in range(p):
                    r = (i + loop) % p
                    block = A.read(proc, r, i * size, (i + 1) * size)
                    AT.write(proc, i, block, start=r * size)
            proc.charge_copy(q)  # local placement of q elements
    return AT


def _truncated_transpose(machine: Machine, A: GlobalArray, q: int, phase_name: str) -> GlobalArray:
    """``q < p``: row ``i`` of the matrix is gathered onto processor ``i``."""
    p = machine.p
    lengths = [p if i < q else 0 for i in range(p)]
    AT = GlobalArray(machine, lengths, dtype=A.dtype, name=f"{A.name}^T")
    with machine.phase(phase_name):
        for proc in machine.procs:
            i = proc.pid
            if i >= q:
                continue
            with proc.prefetch_batch():
                for loop in range(p):
                    r = (i + loop) % p
                    element = A.read(proc, r, i, i + 1)
                    AT.write(proc, i, element, start=r)
            proc.charge_copy(p)
    return AT


def gather_to(machine: Machine, A: GlobalArray, root: int = 0, *, phase_name: str = "gather") -> np.ndarray:
    """Collect every processor's block onto ``root`` (circular prefetch).

    Used by the histogramming algorithm's final step, where ``P0``
    prefetches the per-processor histogram slices.  Returns the
    concatenation ``block_0 | block_1 | ... | block_{p-1}`` as a plain
    array held by ``root``.
    """
    p = machine.p
    parts: list[np.ndarray] = [None] * p  # type: ignore[list-item]
    with machine.phase(phase_name):
        proc = machine.procs[root]
        with proc.prefetch_batch():
            for loop in range(p):
                r = (root + loop) % p
                parts[r] = A.read(proc, r)
        proc.charge_copy(A.total_length())
    return np.concatenate(parts) if parts else np.empty(0, dtype=A.dtype)


def transpose_cost_model(params: MachineParams, q: int, p: int) -> dict[str, float]:
    """Closed-form BDM cost of the blocked transpose -- equation (1).

    Returns a dict with ``comm_s`` (``tau + (q - q/p)`` word-times) and
    ``comp_s`` (``q`` operations), in simulated seconds.
    """
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}")
    words = q - q // p
    return {
        "comm_s": params.latency_s + words * params.word_time_s(),
        "comp_s": params.copy_time_s(q),
    }

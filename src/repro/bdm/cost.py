"""Cost accounting for the BDM simulator.

Each processor accumulates simulated communication seconds, computation
seconds, and traffic counters.  The machine aggregates them per *phase*
(the region between two barriers): the phase's elapsed time is the
maximum over processors of (communication + computation) spent in the
phase, matching the BDM convention that ``T(n, p)`` is the maximum over
processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostCounter:
    """Mutable per-processor cost accumulator.

    Attributes
    ----------
    comm_s / comp_s:
        Simulated seconds of (receive-side) communication / local
        computation.
    serve_s:
        Seconds this processor's send port was occupied serving other
        processors' remote reads (the BDM one-word-at-a-time rule; the
        send and receive ports are independent, so a processor's phase
        time is ``comp_s + max(comm_s, serve_s)``).
    words_moved / words_served:
        Remote words fetched by / served from this processor.
    messages:
        Number of latency charges incurred (one per non-pipelined remote
        access or per prefetch batch).
    ops:
        Abstract local operations charged.
    """

    comm_s: float = 0.0
    comp_s: float = 0.0
    serve_s: float = 0.0
    words_moved: int = 0
    words_served: int = 0
    messages: int = 0
    ops: float = 0.0

    def snapshot(self) -> "CostCounter":
        """Return an independent copy of the current totals."""
        return CostCounter(
            comm_s=self.comm_s,
            comp_s=self.comp_s,
            serve_s=self.serve_s,
            words_moved=self.words_moved,
            words_served=self.words_served,
            messages=self.messages,
            ops=self.ops,
        )

    def minus(self, other: "CostCounter") -> "CostCounter":
        """Component-wise difference ``self - other`` (for phase deltas)."""
        return CostCounter(
            comm_s=self.comm_s - other.comm_s,
            comp_s=self.comp_s - other.comp_s,
            serve_s=self.serve_s - other.serve_s,
            words_moved=self.words_moved - other.words_moved,
            words_served=self.words_served - other.words_served,
            messages=self.messages - other.messages,
            ops=self.ops - other.ops,
        )

    @property
    def port_s(self) -> float:
        """Network time: the busier of the receive and send ports."""
        return max(self.comm_s, self.serve_s)

    @property
    def total_s(self) -> float:
        """Communication plus computation seconds."""
        return self.port_s + self.comp_s


@dataclass
class PhaseRecord:
    """Aggregated cost of one phase (barrier-to-barrier region).

    ``elapsed_s`` is the max over processors of that processor's time in
    the phase; ``comm_s``/``comp_s`` are the per-processor maxima of the
    communication / computation components (so ``comm_s + comp_s`` may
    slightly exceed ``elapsed_s`` when different processors dominate the
    two components).
    """

    name: str
    elapsed_s: float
    comm_s: float
    comp_s: float
    words_moved: int
    barrier_s: float = 0.0
    messages: int = 0


@dataclass
class MachineReport:
    """Summary of a completed simulated run.

    The headline quantity is ``elapsed_s``: the simulated wall-clock of
    the run, i.e. the sum over phases of each phase's critical-path time
    plus barrier costs.
    """

    p: int
    machine_name: str
    phases: list[PhaseRecord] = field(default_factory=list)

    @property
    def elapsed_s(self) -> float:
        return sum(ph.elapsed_s + ph.barrier_s for ph in self.phases)

    @property
    def comm_s(self) -> float:
        """Sum over phases of the per-phase maximum communication time."""
        return sum(ph.comm_s for ph in self.phases)

    @property
    def comp_s(self) -> float:
        """Sum over phases of the per-phase maximum computation time."""
        return sum(ph.comp_s for ph in self.phases)

    @property
    def barrier_total_s(self) -> float:
        return sum(ph.barrier_s for ph in self.phases)

    @property
    def words_moved(self) -> int:
        """Total remote words moved by all processors over the run."""
        return sum(ph.words_moved for ph in self.phases)

    @property
    def messages(self) -> int:
        """Total latency charges (messages / prefetch batches) over the run."""
        return sum(ph.messages for ph in self.phases)

    def phases_matching(self, prefix: str) -> list[PhaseRecord]:
        """All phases whose name starts with ``prefix``."""
        return [ph for ph in self.phases if ph.name.startswith(prefix)]

    def time_in(self, prefix: str) -> float:
        """Elapsed seconds (incl. barriers) in phases matching ``prefix``."""
        return sum(ph.elapsed_s + ph.barrier_s for ph in self.phases_matching(prefix))

    def breakdown(self) -> dict[str, float]:
        """Elapsed seconds grouped by phase name."""
        out: dict[str, float] = {}
        for ph in self.phases:
            out[ph.name] = out.get(ph.name, 0.0) + ph.elapsed_s + ph.barrier_s
        return out

    def summary(self, *, top: int = 0) -> str:
        """Human-readable cost table.

        ``top`` limits the listing to the N most expensive phase groups
        (0 = all).  Times are scaled to the most readable unit.
        """
        def fmt(seconds: float) -> str:
            if seconds >= 1.0:
                return f"{seconds:9.3f} s "
            if seconds >= 1e-3:
                return f"{seconds * 1e3:9.3f} ms"
            return f"{seconds * 1e6:9.1f} us"

        groups = sorted(self.breakdown().items(), key=lambda kv: -kv[1])
        if top:
            groups = groups[:top]
        width = max([len(name) for name, _ in groups] + [12])
        lines = [
            f"simulated run on {self.machine_name} (p={self.p}): "
            f"{fmt(self.elapsed_s).strip()} total",
            f"  comm {fmt(self.comm_s).strip()}, comp {fmt(self.comp_s).strip()}, "
            f"barriers {fmt(self.barrier_total_s).strip()}, "
            f"{self.words_moved} words moved",
        ]
        for name, t in groups:
            share = t / self.elapsed_s * 100 if self.elapsed_s else 0.0
            lines.append(f"  {name:<{width}} {fmt(t)}  {share:5.1f}%")
        return "\n".join(lines)

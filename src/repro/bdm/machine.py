"""The simulated BDM machine: processors, phases, and barriers.

Usage sketch (SPMD, phase style)::

    machine = Machine(p=32, params=CM5)
    data = GlobalArray(machine, q, dtype=np.int64)
    with machine.phase("tally"):
        for proc in machine.procs:
            proc.charge_comp(2 * tile_pixels)      # local work
            with proc.prefetch_batch():            # pipelined prefetches
                block = data.read(proc, (proc.pid + 1) % machine.p)
    report = machine.report()

Within a phase each processor's program runs to completion; the
phase-closing barrier advances simulated time by the maximum over
processors plus the barrier cost, matching the superstep structure of
the paper's Split-C code (compute / ``sync()`` / ``barrier()``).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.bdm.cost import CostCounter, MachineReport, PhaseRecord
from repro.machines.params import MachineParams, IDEAL
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.validation import check_power_of_two


class MachineObserver:
    """Base class for consumers of a machine's event stream.

    Attach with :meth:`Machine.attach_observer`.  The machine invokes
    the hooks below as it runs; all default to no-ops so subclasses
    (e.g. :class:`~repro.bdm.trace.Tracer`,
    :class:`~repro.obs.sim.MachineRecorder`) override only what they
    need.
    """

    def on_phase(self, record, deltas, start_s: float) -> None:
        """A phase closed: aggregated ``record``
        (:class:`~repro.bdm.cost.PhaseRecord`), per-processor cost
        ``deltas`` (:class:`~repro.bdm.cost.CostCounter` list), and the
        simulated time ``start_s`` at which the phase began."""

    def on_traffic(self, server: int, mover: int, words: int) -> None:
        """``words`` words crossed the network between ``server`` (the
        processor whose port served the transfer) and ``mover`` (the
        processor charged for moving them)."""

    def on_hazard(self, hazard) -> None:
        """A same-phase hazard was detected (before the raise);
        ``hazard`` is a :class:`repro.checker.shadow.Hazard`."""

    def on_instant(self, name: str, lane, t_s: float, args: dict) -> None:
        """A point event was noted via :meth:`Machine.note_instant`
        (e.g. a fault injection or a shadow-manager failover); ``lane``
        is the processor id it concerns (or ``None`` for the machine),
        ``t_s`` the simulated time, ``args`` structured context."""

    def on_reset(self) -> None:
        """The machine's cost records were cleared."""


class Processor:
    """One virtual processor: identity plus cost charging."""

    def __init__(self, machine: "Machine", pid: int):
        self.machine = machine
        self.pid = pid
        self.cost = CostCounter()
        self._batch_depth = 0
        self._batch_latency_charged = False

    # -- computation -----------------------------------------------------

    def charge_comp(self, ops: float) -> None:
        """Charge ``ops`` abstract local operations."""
        if ops < 0:
            raise ValidationError("ops must be non-negative")
        self.cost.ops += ops
        self.cost.comp_s += self.machine.params.comp_time_s(ops)

    def charge_copy(self, words: float) -> None:
        """Charge a bulk local placement of ``words`` words.

        Separate from :meth:`charge_comp` because streaming copies are
        much cheaper per word than pointer-chasing algorithm steps; the
        rate comes from :attr:`MachineParams.copy_ns` (zero by default,
        see its docstring).
        """
        if words < 0:
            raise ValidationError("words must be non-negative")
        self.cost.comp_s += self.machine.params.copy_time_s(words)

    # -- communication ---------------------------------------------------

    @contextlib.contextmanager
    def prefetch_batch(self) -> Iterator[None]:
        """Group remote accesses into one pipelined batch.

        The BDM model charges ``l`` pipelined prefetches as ``tau + l``:
        inside this context only the first remote access pays the
        latency ``tau``; every access still pays its word-transfer time.
        Batches may nest; latency is charged once for the outermost.
        """
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._batch_latency_charged = False

    def charge_comm(self, words: int) -> None:
        """Explicitly charge a remote access of ``words`` words.

        For modeled transfers that do not go through a
        :class:`~repro.bdm.memory.GlobalArray` (prefer
        :meth:`Machine.transfer`, which also charges the serving side).
        """
        if words < 0:
            raise ValidationError("words must be non-negative")
        self._charge_comm(words)

    def _charge_comm(self, words: int, *, from_pid: int | None = None) -> None:
        """Charge a remote access of ``words`` words (called by arrays).

        ``from_pid`` names the processor on the other end of the
        transfer (the serving port); when given, the traffic is also
        reported to the machine's observers for the communication
        matrix.
        """
        params = self.machine.params
        charge_latency = True
        if self._batch_depth > 0:
            if self._batch_latency_charged:
                charge_latency = False
            else:
                self._batch_latency_charged = True
        if charge_latency:
            self.cost.comm_s += params.latency_s
            self.cost.messages += 1
        self.cost.comm_s += words * params.word_time_s()
        self.cost.words_moved += words
        if from_pid is not None and from_pid != self.pid:
            self.machine._note_traffic(from_pid, self.pid, words)

    def _charge_words_only(self, words: int) -> None:
        """Occupy this processor's network port for ``words`` word-times.

        The BDM model lets no processor send or receive more than one
        word at a time, so a processor *serving* remote reads is busy
        for their duration; this charge (no latency) models that.
        """
        self.cost.serve_s += words * self.machine.params.word_time_s()
        self.cost.words_served += words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Processor(pid={self.pid})"


class Machine:
    """A ``p``-processor BDM machine with phase-based cost accounting.

    Parameters
    ----------
    p:
        Number of processors; the paper assumes ``p = 2^d``.
    params:
        Platform cost parameters (defaults to the frictionless
        :data:`~repro.machines.params.IDEAL` machine).
    check_hazards:
        Enable the same-phase read/write hazard checker on all
        :class:`~repro.bdm.memory.GlobalArray` traffic.
    charge_server:
        Also charge the *owning* processor's port time for remote
        accesses (the model's "no processor can send or receive more
        than one word at a time"); makes hub contention visible.
    overlap:
        Model perfect split-phase overlap: a processor's phase time is
        ``max(comp, comm)`` instead of ``comp + comm``.  Split-C's
        ``:=`` prefetch allows computation to proceed while remote data
        is in flight ("computation can be overlapped with the remote
        request"); the default (False) is the conservative no-overlap
        accounting the paper's summed bounds use.
    """

    def __init__(
        self,
        p: int,
        params: MachineParams = IDEAL,
        *,
        check_hazards: bool = True,
        charge_server: bool = True,
        overlap: bool = False,
    ):
        check_power_of_two("p", p)
        self.p = int(p)
        self.params = params
        self.check_hazards = bool(check_hazards)
        self.charge_server = bool(charge_server)
        self.overlap = bool(overlap)
        self.procs = [Processor(self, pid) for pid in range(self.p)]
        self._phases: list[PhaseRecord] = []
        self._arrays: list = []
        self.in_phase = False
        self.phase_name: str | None = None  # label of the running phase
        self._tracer = None  # set by repro.bdm.trace.Tracer
        self._observers: list[MachineObserver] = []
        self._sim_time_s = 0.0  # simulated clock at the last barrier

    # -- observers ---------------------------------------------------------

    def attach_observer(self, observer: MachineObserver) -> None:
        """Subscribe ``observer`` to this machine's event stream."""
        if observer not in self._observers:
            self._observers.append(observer)

    def detach_observer(self, observer: MachineObserver) -> None:
        """Unsubscribe ``observer`` (no-op if not attached)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _note_traffic(self, server: int, mover: int, words: int) -> None:
        if words and self._observers:
            for obs in self._observers:
                obs.on_traffic(server, mover, words)

    def _note_hazard(self, hazard) -> None:
        for obs in self._observers:
            obs.on_hazard(hazard)

    def note_instant(self, name: str, lane=None, **args) -> None:
        """Publish a point event at the current simulated time.

        Used by the fault-injection / failover machinery (and open to
        algorithm code) to mark occurrences -- a lost manager, a
        shadow takeover -- on the simulated timeline; observers such as
        :class:`~repro.obs.sim.MachineRecorder` turn them into
        :class:`~repro.obs.events.Instant` log entries.
        """
        for obs in self._observers:
            obs.on_instant(name, lane, self._sim_time_s, args)

    # -- arrays ------------------------------------------------------------

    def _register_array(self, arr) -> None:
        self._arrays.append(arr)

    def _charge_server(self, owner: int, words: int) -> None:
        if self.charge_server:
            self.procs[owner]._charge_words_only(words)

    # -- point-to-point transfers -------------------------------------------

    def transfer(self, src_pid: int, dst_pid: int, words: int) -> None:
        """Charge a modeled transfer of ``words`` words from ``src`` to ``dst``.

        For data that lives in Python-side processor workspaces rather
        than a :class:`GlobalArray` (e.g. a group manager's change
        list).  The destination pays latency plus word time; the source
        is occupied for the word time.
        """
        if words < 0:
            raise ValidationError("words must be non-negative")
        if src_pid == dst_pid or words == 0:
            return
        self.procs[dst_pid]._charge_comm(words, from_pid=src_pid)
        self._charge_server(src_pid, words)

    # -- phases ------------------------------------------------------------

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Run one barrier-terminated phase named ``name``.

        On exit the phase's per-processor cost deltas are folded into a
        :class:`~repro.bdm.cost.PhaseRecord` and a barrier is charged.
        """
        if self.in_phase:
            raise ConfigurationError("phases cannot be nested")
        before = [proc.cost.snapshot() for proc in self.procs]
        self.in_phase = True
        self.phase_name = name
        try:
            yield
        finally:
            self.in_phase = False
            self.phase_name = None
            deltas = [
                proc.cost.minus(prev) for proc, prev in zip(self.procs, before)
            ]
            if self.overlap:
                elapsed = max(max(d.comp_s, d.port_s) for d in deltas)
            else:
                elapsed = max(d.total_s for d in deltas)
            record = PhaseRecord(
                name=name,
                elapsed_s=elapsed,
                comm_s=max(d.port_s for d in deltas),
                comp_s=max(d.comp_s for d in deltas),
                words_moved=sum(d.words_moved for d in deltas),
                messages=sum(d.messages for d in deltas),
                barrier_s=self.params.barrier_s,
            )
            self._phases.append(record)
            start_s = self._sim_time_s
            self._sim_time_s += record.elapsed_s + record.barrier_s
            for arr in self._arrays:
                arr._clear_phase_writes()
            for obs in self._observers:
                obs.on_phase(record, deltas, start_s)

    def each_proc(self) -> Iterator[Processor]:
        """Iterate over processors (the SPMD 'my pid' loop)."""
        return iter(self.procs)

    # -- results -------------------------------------------------------------

    def report(self) -> MachineReport:
        """Aggregate the recorded phases into a :class:`MachineReport`."""
        return MachineReport(
            p=self.p,
            machine_name=self.params.name,
            phases=list(self._phases),
        )

    def reset(self) -> None:
        """Clear all cost records (arrays keep their contents).

        Attached observers are told via
        :meth:`MachineObserver.on_reset`, so an attached
        :class:`~repro.bdm.trace.Tracer` drops its recorded phases
        instead of carrying stale pre-reset data.
        """
        for proc in self.procs:
            proc.cost = CostCounter()
        self._phases.clear()
        self._sim_time_s = 0.0
        for obs in self._observers:
            obs.on_reset()

    @property
    def elapsed_s(self) -> float:
        """Simulated wall-clock so far."""
        return self.report().elapsed_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(p={self.p}, params={self.params.name!r})"

"""Further BDM collectives composed from the Section-2 primitives.

The paper builds broadcasting out of two matrix transpositions; the
same technique yields the other staple collectives, each with the
familiar ``O(tau + q)`` communication bound:

* :func:`reduce_to` -- elementwise reduction of per-processor blocks
  onto a root (transpose, local reduce, gather): ``2 tau + O(q)``.
* :func:`allreduce` -- reduction delivered to every processor
  (transpose, local reduce, allgather of the reduced slices).
* :func:`allgather` -- every processor obtains every block (the
  specialized second transpose of Algorithm 2, generalized).
* :func:`prefix_sum` -- exclusive scan of one value per processor by
  recursive doubling: ``ceil(log p)`` rounds of one-word exchanges,
  ``T_comm = log p (tau + 1)``.

These are not used by the paper's two algorithms directly, but they
complete the substrate a Split-C programmer of the era would lean on
(and the histogramming algorithm is precisely ``reduce_to`` with a
bincount front end).
"""

from __future__ import annotations

import numpy as np

from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.bdm.transpose import gather_to, transpose
from repro.machines.params import MachineParams
from repro.utils.errors import ValidationError
from repro.utils.validation import ilog2

_REDUCERS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def _reduce_slices(machine: Machine, A: GlobalArray, op, phase_name: str) -> GlobalArray:
    """Transpose then locally reduce: proc i ends with reduced slice i."""
    p = machine.p
    q = A.block_length(0)
    AT = transpose(machine, A, phase_name=f"{phase_name}:transpose")
    size = q // p
    R = GlobalArray(machine, size, dtype=A.dtype, name=f"red({A.name})")
    with machine.phase(f"{phase_name}:reduce"):
        for proc in machine.procs:
            block = AT.local(proc.pid).reshape(p, size)
            R.write(proc, proc.pid, op.reduce(block, axis=0))
            proc.charge_comp(q)
    return R


def reduce_to(
    machine: Machine,
    A: GlobalArray,
    *,
    root: int = 0,
    op: str = "sum",
    phase_name: str = "reduce",
) -> np.ndarray:
    """Elementwise reduction of all blocks, delivered to ``root``.

    Every processor must hold a block of equal length ``q`` with
    ``p | q``.  Returns the length-``q`` reduced vector.
    """
    if op not in _REDUCERS:
        raise ValidationError(f"unknown op {op!r}; known: {sorted(_REDUCERS)}")
    q = A.block_length(0)
    if q % machine.p != 0:
        raise ValidationError(f"p={machine.p} must divide q={q}")
    R = _reduce_slices(machine, A, _REDUCERS[op], phase_name)
    return gather_to(machine, R, root=root, phase_name=f"{phase_name}:gather")


def allgather(machine: Machine, A: GlobalArray, *, phase_name: str = "allgather") -> GlobalArray:
    """Every processor obtains the concatenation of all blocks.

    Each processor circularly prefetches every other block (pipelined),
    costing ``tau + (p-1) q`` words -- the generalized second step of
    Algorithm 2.
    """
    p = machine.p
    lengths = [A.block_length(i) for i in range(p)]
    total = sum(lengths)
    starts = np.concatenate([[0], np.cumsum(lengths)])
    out = GlobalArray(machine, total, dtype=A.dtype, name=f"ag({A.name})")
    with machine.phase(phase_name):
        for proc in machine.procs:
            i = proc.pid
            with proc.prefetch_batch():
                for loop in range(p):
                    r = (i + loop) % p
                    if lengths[r] == 0:
                        continue
                    block = A.read(proc, r)
                    out.write(proc, i, block, start=int(starts[r]))
            proc.charge_copy(total)
    return out


def allreduce(
    machine: Machine,
    A: GlobalArray,
    *,
    op: str = "sum",
    phase_name: str = "allreduce",
) -> GlobalArray:
    """Elementwise reduction delivered to every processor."""
    if op not in _REDUCERS:
        raise ValidationError(f"unknown op {op!r}; known: {sorted(_REDUCERS)}")
    q = A.block_length(0)
    if q % machine.p != 0:
        raise ValidationError(f"p={machine.p} must divide q={q}")
    R = _reduce_slices(machine, A, _REDUCERS[op], phase_name)
    return allgather(machine, R, phase_name=f"{phase_name}:allgather")


def scatter_from(
    machine: Machine,
    values: np.ndarray,
    *,
    root: int = 0,
    dtype=np.int64,
    phase_name: str = "scatter",
) -> GlobalArray:
    """Root distributes a length-``q`` vector: slice ``i`` to processor ``i``.

    The inverse of :func:`~repro.bdm.transpose.gather_to`.  Each
    non-root processor prefetches its ``q/p`` slice from the root
    (the root's port serializes them: ``tau + (q - q/p)`` on the
    receivers, ``q - q/p`` serve time on the root, as the one-port
    model dictates).
    """
    p = machine.p
    values = np.asarray(values, dtype=dtype).ravel()
    q = len(values)
    if q % p != 0:
        raise ValidationError(f"p={p} must divide the payload length {q}")
    size = q // p
    src = GlobalArray(machine, [q if pid == root else 0 for pid in range(p)],
                      dtype=dtype, name="scatter:src")
    src.place(root, values)  # initial placement on the root
    out = GlobalArray(machine, size, dtype=dtype, name="scatter:out")
    with machine.phase(phase_name):
        for proc in machine.procs:
            i = proc.pid
            with proc.prefetch_batch():
                piece = src.read(proc, root, i * size, (i + 1) * size)
            out.write(proc, i, piece)
    return out


def prefix_sum(machine: Machine, values, *, phase_name: str = "scan") -> np.ndarray:
    """Exclusive prefix sum of one integer per processor.

    Recursive doubling: in round ``d`` processor ``i`` adds the partial
    sum of processor ``i - 2^d`` -- ``ceil(log p)`` one-word rounds.
    Returns the exclusive scan as a plain array (``out[i] = sum of
    values[:i]``).
    """
    p = machine.p
    values = np.asarray(values, dtype=np.int64)
    if values.shape != (p,):
        raise ValidationError(f"need exactly one value per processor ({p})")
    inclusive = GlobalArray(machine, 1, dtype=np.int64, name="scan")
    for pid in range(p):
        inclusive.place(pid, values[pid])  # initial placement
    rounds = ilog2(p) if p > 1 else 0
    for d in range(rounds):
        stride = 1 << d
        incoming = {}
        with machine.phase(f"{phase_name}:round{d}"):
            for proc in machine.procs:
                src = proc.pid - stride
                if src >= 0:
                    incoming[proc.pid] = int(inclusive.read(proc, src)[0])
                proc.charge_comp(1)
        with machine.phase(f"{phase_name}:add{d}"):
            for proc in machine.procs:
                if proc.pid in incoming:
                    current = int(inclusive.local(proc.pid)[0])
                    inclusive.write(proc, proc.pid, [current + incoming[proc.pid]])
                    proc.charge_comp(1)
    inc = np.array([int(inclusive.local(pid)[0]) for pid in range(p)])
    return inc - values


def reduce_cost_model(params: MachineParams, q: int, p: int) -> dict[str, float]:
    """Closed-form cost of :func:`reduce_to`: a transpose + gather."""
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}")
    comm = 2 * params.latency_s + (2 * q - 2 * q // p) * params.word_time_s()
    return {"comm_s": comm, "comp_s": params.comp_time_s(q)}

"""Per-processor execution traces and ASCII Gantt rendering.

The :class:`~repro.bdm.cost.MachineReport` aggregates each phase to its
critical path; this module keeps the *per-processor* breakdown so load
imbalance is visible -- e.g. the CC merge phases, where a handful of
group managers work while the clients idle at the barrier.

Usage::

    tracer = Tracer(machine)          # attach before running
    ... run the algorithm ...
    print(tracer.gantt())             # one row per processor
    print(tracer.imbalance_table())   # per-phase utilization
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bdm.machine import Machine
from repro.utils.errors import ConfigurationError


@dataclass
class PhaseTrace:
    """Per-processor busy seconds of one phase."""

    name: str
    busy_s: np.ndarray  # shape (p,)
    barrier_s: float

    @property
    def elapsed_s(self) -> float:
        return float(self.busy_s.max())

    @property
    def utilization(self) -> float:
        """Mean busy time over the phase's critical path, in [0, 1]."""
        peak = self.elapsed_s
        if peak <= 0:
            return 1.0
        return float(self.busy_s.mean() / peak)


class Tracer:
    """Records per-processor costs of every phase run on a machine.

    Wraps the machine's ``phase`` context manager; attach exactly one
    tracer per machine, before the first phase.
    """

    def __init__(self, machine: Machine):
        if getattr(machine, "_tracer", None) is not None:
            raise ConfigurationError("machine already has a tracer attached")
        if machine._phases:
            raise ConfigurationError("attach the tracer before running phases")
        self.machine = machine
        self.phases: list[PhaseTrace] = []
        machine._tracer = self
        self._original_phase = machine.phase
        machine.phase = self._traced_phase  # type: ignore[method-assign]

    def _traced_phase(self, name: str):
        return _TracedPhase(self, name)

    def gantt(self, *, width: int = 60) -> str:
        """ASCII Gantt chart: one row per processor, time left-to-right.

        Each phase occupies a horizontal span proportional to its
        critical-path time; within the span, a processor's row is
        filled ('#') for its busy fraction and dotted for idle time.
        """
        if not self.phases:
            return "(no phases recorded)"
        p = self.machine.p
        total = sum(ph.elapsed_s for ph in self.phases)
        if total <= 0:
            return "(no time elapsed)"
        rows = [[] for _ in range(p)]
        header = []
        for ph in self.phases:
            span = max(1, int(round(width * ph.elapsed_s / total)))
            header.append(ph.name[: max(span - 1, 1)].ljust(span, " ")[:span])
            for pid in range(p):
                frac = ph.busy_s[pid] / ph.elapsed_s if ph.elapsed_s else 0.0
                fill = int(round(span * frac))
                rows[pid].append("#" * fill + "." * (span - fill))
        lines = ["phase: " + "|".join(header)]
        for pid in range(p):
            lines.append(f"P{pid:<4} |" + "|".join(rows[pid]))
        return "\n".join(lines)

    def imbalance_table(self) -> str:
        """Per-phase utilization: mean busy / critical path."""
        width = max([len(ph.name) for ph in self.phases] + [10])
        lines = [f"{'phase':<{width}} {'elapsed':>12} {'utilization':>12}"]
        for ph in self.phases:
            lines.append(
                f"{ph.name:<{width}} {ph.elapsed_s * 1e6:>10.1f}us "
                f"{ph.utilization * 100:>10.1f}%"
            )
        return "\n".join(lines)

    def utilization(self) -> float:
        """Whole-run utilization (busy processor-seconds / p * elapsed)."""
        total_busy = sum(float(ph.busy_s.sum()) for ph in self.phases)
        total_elapsed = sum(ph.elapsed_s for ph in self.phases)
        if total_elapsed <= 0:
            return 1.0
        return total_busy / (self.machine.p * total_elapsed)


class _TracedPhase:
    def __init__(self, tracer: Tracer, name: str):
        self.tracer = tracer
        self.name = name
        self._inner = tracer._original_phase(name)

    def __enter__(self):
        machine = self.tracer.machine
        self._before = [proc.cost.snapshot() for proc in machine.procs]
        return self._inner.__enter__()

    def __exit__(self, *exc):
        result = self._inner.__exit__(*exc)
        machine = self.tracer.machine
        busy = np.array(
            [
                proc.cost.minus(prev).total_s
                for proc, prev in zip(machine.procs, self._before)
            ]
        )
        self.tracer.phases.append(
            PhaseTrace(
                name=self.name,
                busy_s=busy,
                barrier_s=machine.params.barrier_s,
            )
        )
        return result

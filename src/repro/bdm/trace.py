"""Per-processor execution traces and ASCII Gantt rendering.

The :class:`~repro.bdm.cost.MachineReport` aggregates each phase to its
critical path; this module keeps the *per-processor* breakdown so load
imbalance is visible -- e.g. the CC merge phases, where a handful of
group managers work while the clients idle at the barrier.

:class:`Tracer` is a consumer of the machine's observer event stream
(see :class:`~repro.bdm.machine.MachineObserver`): it subscribes via
``machine.attach_observer`` rather than monkey-patching ``phase``, so
it composes with the richer recorders in :mod:`repro.obs`.  A
:meth:`Machine.reset() <repro.bdm.machine.Machine.reset>` clears the
tracer's recorded phases along with the machine's own records.

Usage::

    tracer = Tracer(machine)          # attach before running
    ... run the algorithm ...
    print(tracer.gantt())             # one row per processor
    print(tracer.imbalance_table())   # per-phase utilization
    tracer.detach()                   # stop recording (optional)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bdm.machine import Machine, MachineObserver
from repro.utils.errors import ConfigurationError


@dataclass
class PhaseTrace:
    """Per-processor busy seconds of one phase."""

    name: str
    busy_s: np.ndarray  # shape (p,)
    barrier_s: float

    @property
    def elapsed_s(self) -> float:
        return float(self.busy_s.max())

    @property
    def utilization(self) -> float:
        """Mean busy time over the phase's critical path, in [0, 1]."""
        peak = self.elapsed_s
        if peak <= 0:
            return 1.0
        return float(self.busy_s.mean() / peak)

    @property
    def imbalance(self) -> float:
        """Critical path over mean busy time (>= 1; 1 = perfectly even)."""
        mean = float(self.busy_s.mean())
        if mean <= 0:
            return 1.0
        return self.elapsed_s / mean


class Tracer(MachineObserver):
    """Records per-processor costs of every phase run on a machine.

    Subscribes to the machine's event stream; attach exactly one tracer
    per machine, before the first phase (use
    :class:`~repro.obs.sim.MachineRecorder` for unrestricted multi-
    consumer recording).  :meth:`detach` unsubscribes, restoring the
    machine's untraced state so another tracer may be attached.
    """

    def __init__(self, machine: Machine):
        if getattr(machine, "_tracer", None) is not None:
            raise ConfigurationError("machine already has a tracer attached")
        if machine._phases:
            raise ConfigurationError("attach the tracer before running phases")
        self.machine = machine
        self.phases: list[PhaseTrace] = []
        machine._tracer = self
        machine.attach_observer(self)

    def detach(self) -> None:
        """Stop recording and release the machine's tracer slot.

        Recorded phases are kept for inspection; the machine accepts a
        new :class:`Tracer` afterwards.
        """
        self.machine.detach_observer(self)
        if self.machine._tracer is self:
            self.machine._tracer = None

    # -- observer hooks ----------------------------------------------------

    def on_phase(self, record, deltas, start_s: float) -> None:
        self.phases.append(
            PhaseTrace(
                name=record.name,
                busy_s=np.array([d.total_s for d in deltas]),
                barrier_s=record.barrier_s,
            )
        )

    def on_reset(self) -> None:
        self.phases.clear()

    # -- rendering ---------------------------------------------------------

    def gantt(self, *, width: int = 60) -> str:
        """ASCII Gantt chart: one row per processor, time left-to-right.

        Each phase occupies a horizontal span proportional to its
        critical-path time; within the span, a processor's row is
        filled ('#') for its busy fraction and dotted for idle time.
        The spans are apportioned by largest remainder so every row is
        exactly ``width`` characters of bar (phases too short for one
        column are dropped from the rendering; per-phase rounding can
        therefore never push a row past ``width``).
        """
        if not self.phases:
            return "(no phases recorded)"
        p = self.machine.p
        total = sum(ph.elapsed_s for ph in self.phases)
        if total <= 0:
            return "(no time elapsed)"
        spans = _apportion([ph.elapsed_s for ph in self.phases], width)
        rows = [[] for _ in range(p)]
        header = []
        for ph, span in zip(self.phases, spans):
            if span == 0:
                continue
            header.append(ph.name[:span].ljust(span))
            for pid in range(p):
                frac = ph.busy_s[pid] / ph.elapsed_s if ph.elapsed_s else 0.0
                fill = min(span, int(round(span * frac)))
                rows[pid].append("#" * fill + "." * (span - fill))
        lines = ["phase: " + "|".join(header)]
        for pid in range(p):
            lines.append(f"P{pid:<4} |" + "|".join(rows[pid]))
        return "\n".join(lines)

    def imbalance_table(self) -> str:
        """Per-phase utilization: mean busy / critical path."""
        width = max([len(ph.name) for ph in self.phases] + [10])
        lines = [f"{'phase':<{width}} {'elapsed':>12} {'utilization':>12}"]
        for ph in self.phases:
            lines.append(
                f"{ph.name:<{width}} {ph.elapsed_s * 1e6:>10.1f}us "
                f"{ph.utilization * 100:>10.1f}%"
            )
        return "\n".join(lines)

    def utilization(self) -> float:
        """Whole-run utilization (busy processor-seconds / p * elapsed)."""
        total_busy = sum(float(ph.busy_s.sum()) for ph in self.phases)
        total_elapsed = sum(ph.elapsed_s for ph in self.phases)
        if total_elapsed <= 0:
            return 1.0
        return total_busy / (self.machine.p * total_elapsed)


def _apportion(weights: list[float], width: int) -> list[int]:
    """Integer spans proportional to ``weights`` summing to ``width``.

    Largest-remainder method: floor the exact quotas, then hand the
    remaining columns to the largest fractional parts.  The result sums
    to exactly ``width`` (unlike per-item rounding, which can overshoot).
    """
    total = sum(weights)
    if total <= 0 or width <= 0:
        return [0] * len(weights)
    quotas = [w / total * width for w in weights]
    spans = [int(q) for q in quotas]
    leftovers = width - sum(spans)
    order = sorted(
        range(len(weights)), key=lambda i: quotas[i] - spans[i], reverse=True
    )
    for i in order[:leftovers]:
        spans[i] += 1
    return spans

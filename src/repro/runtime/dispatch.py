"""Deadline-aware, fault-tolerant task dispatch for the process pool.

The seed runtime fanned every parallel step out with a bare
``pool.map`` -- an *unbounded* barrier: one crashed worker (its task is
simply lost by ``multiprocessing.Pool``) or one hung task deadlocked
the driver forever.  This module replaces it:

* every task attempt gets a **deadline** (``AsyncResult``-based
  collection instead of ``pool.map``; default from the
  ``REPRO_TASK_TIMEOUT`` environment variable);
* faulted attempts are **retried with exponential backoff**, up to a
  bounded budget (``REPRO_TASK_RETRIES``); retryable faults are missed
  deadlines (covering both hangs and hard worker crashes) and the
  typed transient errors
  (:class:`~repro.utils.errors.TransientTaskError`,
  :class:`~repro.utils.errors.CorruptPayloadError`) -- any other
  exception is a real bug and propagates immediately;
* a missed deadline **respawns the pool** (the
  :class:`PoolSupervisor` re-runs the initializer in fresh workers),
  because a pool that lost or wedged a worker cannot be trusted with
  the retry;
* exhausted budgets raise typed
  :class:`~repro.utils.errors.FaultError` subclasses -- never a hang;
* every recovery step is visible as a ``fault:*`` instant/counter on
  the attached :class:`~repro.obs.runtime.WallRecorder`.

Task functions receive ``(payload, attempt)`` tuples; the attempt
number feeds the deterministic fault injector
(:mod:`repro.faults.inject`), which is how a seeded plan can fault the
first attempt of a task and let its retry through.
"""

from __future__ import annotations

import os
import time

from repro.obs.events import (
    CAT_ROUND,
    FAULT_GIVEUP,
    FAULT_RESPAWN,
    FAULT_RETRY,
    FAULT_TIMEOUT,
    FAULT_WORKER_DEATH,
)
from repro.obs.runtime import WallRecorder, instant_or_null
from repro.obs.trace import TraceContext
from repro.utils.errors import (
    CorruptPayloadError,
    RecoveryExhaustedError,
    TaskTimeoutError,
    TransientTaskError,
    ValidationError,
)

#: Environment variable holding the default per-task deadline, seconds.
ENV_TIMEOUT = "REPRO_TASK_TIMEOUT"

#: Environment variable holding the default retry budget per task.
ENV_RETRIES = "REPRO_TASK_RETRIES"

#: Fallback deadline when neither argument nor environment provides one.
DEFAULT_TIMEOUT_S = 300.0

#: Fallback retry budget (retries *after* the first attempt).
DEFAULT_RETRIES = 2

#: Exceptions the dispatcher treats as transient and retries.
RETRYABLE = (TransientTaskError, CorruptPayloadError)

#: Poll step while waiting for results (bounded, so deadlines are
#: checked promptly even when the pool has silently lost a task).
_POLL_S = 0.005


def resolve_timeout(timeout: float | None = None) -> float:
    """Per-task deadline: argument, else ``REPRO_TASK_TIMEOUT``, else default."""
    if timeout is None:
        raw = os.environ.get(ENV_TIMEOUT)
        if raw is None or not raw.strip():
            return DEFAULT_TIMEOUT_S
        try:
            timeout = float(raw)
        except ValueError:
            raise ValidationError(f"{ENV_TIMEOUT}={raw!r} is not a number") from None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValidationError("task timeout must be positive")
    return timeout


def resolve_retries(retries: int | None = None) -> int:
    """Retry budget: argument, else ``REPRO_TASK_RETRIES``, else default."""
    if retries is None:
        raw = os.environ.get(ENV_RETRIES)
        if raw is None or not raw.strip():
            return DEFAULT_RETRIES
        try:
            retries = int(raw)
        except ValueError:
            raise ValidationError(f"{ENV_RETRIES}={raw!r} is not an integer") from None
    retries = int(retries)
    if retries < 0:
        raise ValidationError("retry budget must be non-negative")
    return retries


class PoolSupervisor:
    """Owns a worker pool it can respawn from its recorded recipe.

    A ``multiprocessing.Pool`` that lost a worker mid-task has lost the
    task forever, and a wedged worker occupies a slot indefinitely --
    so recovery always goes through :meth:`respawn`: terminate the old
    pool (SIGTERM reaches even a sleeping worker) and build a fresh one
    with the same initializer, which re-attaches shared memory and
    re-installs the fault plan in the new workers.
    """

    def __init__(
        self,
        ctx,
        processes: int,
        initializer=None,
        initargs: tuple = (),
        *,
        recorder: WallRecorder | None = None,
    ):
        self._ctx = ctx
        self._processes = processes
        self._initializer = initializer
        self._initargs = initargs
        self._recorder = recorder
        self._pool = None
        self.respawns = 0

    @property
    def pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(
                self._processes, initializer=self._initializer, initargs=self._initargs
            )
        return self._pool

    def dead_workers(self) -> list[int]:
        """Exit codes of workers that died abnormally (best effort)."""
        procs = getattr(self._pool, "_pool", None) or []
        return [
            p.exitcode
            for p in procs
            if getattr(p, "exitcode", None) not in (None, 0)
        ]

    def respawn(self, *, reason: str = "") -> None:
        """Terminate the pool and build a fresh one."""
        if self._pool is not None:
            dead = self.dead_workers()
            if dead:
                instant_or_null(
                    self._recorder, FAULT_WORKER_DEATH, exitcodes=dead, reason=reason
                )
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.respawns += 1
        instant_or_null(self._recorder, FAULT_RESPAWN, reason=reason)

    def close(self) -> None:
        if self._pool is not None:
            # terminate (not close/join): a wedged worker would block a
            # graceful close forever, and every completed result has
            # already been collected by run_tasks.
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_tasks(
    supervisor: PoolSupervisor,
    fn,
    payloads,
    *,
    site: str,
    timeout: float | None = None,
    max_retries: int | None = None,
    backoff_s: float = 0.05,
    recorder: WallRecorder | None = None,
    trace: TraceContext | None = None,
):
    """Run ``fn((payload, attempt))`` for each payload; return results in order.

    The deadline-aware replacement for ``pool.map``: same barrier
    semantics (returns only when every task has a result), but a lost
    or wedged attempt is detected within ``timeout`` seconds, the pool
    respawned, and the attempt retried with exponential backoff
    (``backoff_s * 2**attempt``) up to ``max_retries`` extra attempts.

    With both a ``recorder`` and a ``trace`` context, the whole dispatch
    (including retries and respawns) is recorded as one
    ``dispatch:<site>`` child span on the request's lane.

    Raises :class:`~repro.utils.errors.TaskTimeoutError` when a task
    misses its deadline with no budget left, and
    :class:`~repro.utils.errors.RecoveryExhaustedError` when a
    retryable exception persists; any non-retryable task exception
    propagates unwrapped at once.
    """
    if trace is not None and recorder is not None:
        with recorder.span(f"dispatch:{site}", lane=trace.lane, cat=CAT_ROUND,
                           **trace.child().span_args()):
            return run_tasks(
                supervisor, fn, payloads, site=site, timeout=timeout,
                max_retries=max_retries, backoff_s=backoff_s, recorder=recorder,
            )
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(max_retries)
    payloads = list(payloads)
    n = len(payloads)
    results = [None] * n
    pending: dict[int, tuple] = {}  # idx -> (AsyncResult, deadline, attempt)
    n_retries = n_timeouts = 0

    def dispatch(idx: int, attempt: int) -> None:
        res = supervisor.pool.apply_async(fn, ((payloads[idx], attempt),))
        pending[idx] = (res, time.monotonic() + timeout, attempt)

    def backoff(attempt: int) -> None:
        time.sleep(backoff_s * (2**attempt))

    for idx in range(n):
        dispatch(idx, 0)

    remaining = set(range(n))
    while pending:
        for idx in list(pending):
            res, _deadline, attempt = pending[idx]
            if not res.ready():
                continue
            del pending[idx]
            try:
                results[idx] = res.get()
                remaining.discard(idx)
            except RETRYABLE as exc:
                if attempt >= retries:
                    instant_or_null(
                        recorder, FAULT_GIVEUP, site=site, task=idx, attempt=attempt
                    )
                    _note_counts(recorder, site, n_retries, n_timeouts)
                    raise RecoveryExhaustedError(
                        f"{site} task {idx} still failing after "
                        f"{attempt + 1} attempts: {exc}",
                        site=site,
                    ) from exc
                n_retries += 1
                instant_or_null(
                    recorder, FAULT_RETRY, site=site, task=idx,
                    attempt=attempt, error=type(exc).__name__,
                )
                backoff(attempt)
                dispatch(idx, attempt + 1)
            # non-retryable exceptions propagate: they are real bugs,
            # and masking them behind retries would hide miscounts.

        if not pending:
            break
        now = time.monotonic()
        expired = {idx for idx, (_r, dl, _a) in pending.items() if now >= dl}
        if expired:
            n_timeouts += len(expired)
            for idx in sorted(expired):
                instant_or_null(
                    recorder, FAULT_TIMEOUT, site=site, task=idx,
                    attempt=pending[idx][2], timeout_s=timeout,
                )
            exhausted = sorted(
                idx for idx in expired if pending[idx][2] >= retries
            )
            if exhausted:
                instant_or_null(
                    recorder, FAULT_GIVEUP, site=site, tasks=exhausted,
                    attempt=pending[exhausted[0]][2],
                )
                _note_counts(recorder, site, n_retries, n_timeouts)
                raise TaskTimeoutError(
                    f"{site} task(s) {exhausted} missed the {timeout:g}s deadline "
                    f"on every allowed attempt "
                    f"({pending[exhausted[0]][2] + 1} of {retries + 1})",
                    site=site,
                )
            # The pool lost or wedged at least one worker; nothing it
            # still holds can be trusted, so respawn and re-dispatch
            # every pending attempt (expired ones count a retry and
            # back off; collateral ones keep their attempt number, so
            # deterministic injection decisions are unaffected).
            survivors = {idx: a for idx, (_r, _d, a) in pending.items()}
            pending.clear()
            supervisor.respawn(reason=f"{site} deadline")
            min_attempt = min(survivors[idx] for idx in expired)
            backoff(min_attempt)
            for idx, attempt in sorted(survivors.items()):
                if idx in expired:
                    n_retries += 1
                    instant_or_null(
                        recorder, FAULT_RETRY, site=site, task=idx,
                        attempt=attempt, error="TaskTimeout",
                    )
                    dispatch(idx, attempt + 1)
                else:
                    dispatch(idx, attempt)
        else:
            next_dl = min(dl for _r, dl, _a in pending.values())
            step = min(max(next_dl - now, 0.0), _POLL_S)
            # Wait on an arbitrary pending result; the bounded step
            # keeps deadline checks prompt even if that one is hung.
            next(iter(pending.values()))[0].wait(step)

    _note_counts(recorder, site, n_retries, n_timeouts)
    return results


def _note_counts(recorder, site: str, n_retries: int, n_timeouts: int) -> None:
    if recorder is None:
        return
    if n_retries:
        recorder.count(f"{FAULT_RETRY}:{site}", n_retries)
    if n_timeouts:
        recorder.count(f"{FAULT_TIMEOUT}:{site}", n_timeouts)

"""Real-parallel runtime: multiprocessing + shared memory backends.

The BDM simulator (:mod:`repro.bdm`) reproduces the paper's *cost
model*; this package executes the same tile-decomposed algorithms with
genuine OS processes for wall-clock speedups on multi-core hosts
(CPython's GIL rules out thread parallelism for this workload, hence
processes + :mod:`multiprocessing.shared_memory`, as is standard for
Python HPC).

* :func:`~repro.runtime.parallel.histogram` -- band-parallel tally.
* :func:`~repro.runtime.parallel.components` -- tile-parallel labeling
  with driver-side border merges and worker-side final relabeling;
  bit-identical output to the sequential engines.

On a single-core host (or ``backend="serial"``) both fall back to the
vectorized sequential implementations.
"""

from repro.runtime.shmem import (
    SharedNDArray,
    ShmArena,
    ShmDescriptor,
    array_digest,
    verify_descriptor_digest,
)
from repro.runtime.parallel import histogram, components, resolve_workers

__all__ = [
    "SharedNDArray",
    "ShmArena",
    "ShmDescriptor",
    "array_digest",
    "components",
    "histogram",
    "resolve_workers",
    "verify_descriptor_digest",
]

"""NumPy arrays backed by POSIX shared memory.

Workers attach to the segment by name, so large images are shared with
the pool instead of being pickled per task -- the standard idiom for
process-parallel NumPy.

Two layers live here:

* :class:`SharedNDArray` / :class:`ShmMeta` -- the in-process primitive
  the batch runtime has always used (owner creates, workers attach).
* The **zero-copy wire plane**: :class:`ShmDescriptor` (a validated,
  JSON-able content-addressed handle: name / dtype / shape / digest)
  and :class:`ShmArena` (a refcounted owner of segments whose lifetime
  outlives a single call -- the service's reply segments).  The unix
  socket carries only the descriptor; pixels never touch the wire.
"""

from __future__ import annotations

import contextlib
import hashlib
import math
import re
from dataclasses import dataclass
from multiprocessing import shared_memory

try:  # POSIX only; Windows shared memory needs no tracker bookkeeping
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _resource_tracker = None

import numpy as np

from repro.utils.errors import ValidationError

#: dtypes a shared segment may carry over the wire (mirrors the ndjson
#: wire's integer dtypes; the service ops are integer-image ops).
SHARABLE_DTYPES = ("uint8", "int8", "uint16", "int16", "int32", "int64")

#: Hard cap on one shared segment (matches the ndjson request cap, so
#: neither wire can make a worker map more than this).
MAX_SEGMENT_BYTES = 64 << 20

#: Segment names as the kernel and multiprocessing produce them:
#: no leading slash, no path separators, bounded length.
_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]{0,249}$")


def array_digest(arr: np.ndarray) -> str:
    """Content address of an array: sha256 over dtype, shape, and bytes.

    Identical to :func:`repro.service.cache.image_digest` (which is an
    alias of this), so a shared-memory descriptor's digest and an
    ndjson request's server-side digest address the same cache entry.
    """
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment *without* adopting cleanup duty.

    ``SharedMemory(name=...)`` registers the segment with this
    process's resource tracker even when merely attaching (CPython
    bpo-39959, fixed by ``track=`` only in 3.13) -- so an attacher's
    tracker would "clean up" segments it never owned: spurious unlinks
    of live segments and leak warnings at exit.  Ownership here is
    explicit (creator unlinks, attachers only close), so the attach
    path must leave the tracker out of it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: undo the implicit registration
        shm = shared_memory.SharedMemory(name=name)
        if _resource_tracker is not None:
            with contextlib.suppress(Exception):  # bookkeeping only
                _resource_tracker.unregister(shm._name, "shared_memory")
        return shm


def _track_before_unlink(shm: shared_memory.SharedMemory) -> None:
    """Re-register a segment right before its owner unlinks it.

    Registration is a *set* in the tracker daemon, so this is a no-op
    when the creation-time entry is still there, and it restores the
    entry when an attacher's :func:`_attach_segment` removed it (the
    two share one tracker after a fork) -- either way the unlink's own
    unregister finds exactly one entry to remove and the tracker ends
    the process empty, warning-free.
    """
    if _resource_tracker is not None:
        with contextlib.suppress(Exception):  # bookkeeping only
            _resource_tracker.register(shm._name, "shared_memory")


@dataclass(frozen=True)
class ShmMeta:
    """Picklable handle describing a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ShmDescriptor:
    """A validated wire handle for a shared-memory image segment.

    The descriptor is everything the socket carries for a zero-copy
    request: which segment (``name``), how to view it (``dtype``,
    ``shape``), and what its pixels hash to (``digest`` -- sha256 over
    dtype/shape/bytes, computed by the *producer* so consumers can key
    caches without touching a single pixel).
    """

    name: str
    dtype: str
    shape: tuple[int, ...]
    digest: str

    @property
    def nbytes(self) -> int:
        return math.prod(self.shape) * np.dtype(self.dtype).itemsize

    @classmethod
    def for_array(cls, name: str, arr: np.ndarray) -> "ShmDescriptor":
        return cls(
            name=name,
            dtype=str(arr.dtype),
            shape=tuple(int(d) for d in arr.shape),
            digest=array_digest(arr),
        )

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "digest": self.digest,
        }

    @classmethod
    def from_wire(cls, obj) -> "ShmDescriptor":
        """Parse and strictly validate a wire descriptor object.

        Every rejection is a typed :class:`ValidationError`: an invalid
        descriptor must produce a JSON error reply, never reach a pool
        worker, and never name a segment outside the shared namespace.
        """
        if not isinstance(obj, dict):
            raise ValidationError("shm descriptor must be an object")
        name = obj.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValidationError(
                "shm descriptor 'name' must be a plain segment name "
                "(letters, digits, '_', '.', '-'; no leading '/')"
            )
        dtype = obj.get("dtype")
        if dtype not in SHARABLE_DTYPES:
            raise ValidationError(
                f"unsupported shm dtype {dtype!r}; known: {list(SHARABLE_DTYPES)}"
            )
        shape = obj.get("shape")
        if (not isinstance(shape, list) or not shape
                or any(isinstance(d, bool) or not isinstance(d, int) or d <= 0
                       for d in shape)):
            raise ValidationError("shm descriptor 'shape' must be a list of positive ints")
        # math.prod keeps arbitrary precision -- adversarial shapes
        # cannot wrap the size check at int64.
        nbytes = math.prod(shape) * np.dtype(dtype).itemsize
        if nbytes > MAX_SEGMENT_BYTES:
            raise ValidationError(
                f"shm segment of shape {shape} ({nbytes} bytes) exceeds the "
                f"{MAX_SEGMENT_BYTES} byte cap"
            )
        digest = obj.get("digest")
        if (not isinstance(digest, str) or len(digest) != 64
                or any(c not in "0123456789abcdef" for c in digest)):
            raise ValidationError(
                "shm descriptor 'digest' must be a lowercase sha256 hex string"
            )
        return cls(name=name, dtype=dtype, shape=tuple(shape), digest=digest)


class SharedNDArray:
    """A NumPy array living in a shared-memory segment.

    Create with :meth:`create` (owner) or :meth:`attach` (worker); the
    owner should call :meth:`unlink` when done, every process
    :meth:`close`.  Usable as a context manager on the owning side.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape, dtype) -> "SharedNDArray":
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes <= 0:
            raise ValidationError(f"cannot share empty array of shape {shape}")
        # Ownership of the raw segment transfers to the instance (whose
        # __exit__ tears it down); if constructing the view fails we are
        # still on the hook for the segment, hence the explicit unwind.
        shm = shared_memory.SharedMemory(create=True, size=nbytes)  # check: ignore[RES201]
        try:
            return cls(shm, shape, dtype, owner=True)
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedNDArray":
        out = cls.create(arr.shape, arr.dtype)
        out.array[:] = arr
        return out

    @classmethod
    def attach(cls, meta: ShmMeta) -> "SharedNDArray":
        shm = _attach_segment(meta.name)
        try:
            return cls(shm, meta.shape, np.dtype(meta.dtype), owner=False)
        except BaseException:
            shm.close()
            raise

    @classmethod
    def attach_descriptor(cls, desc: ShmDescriptor) -> "SharedNDArray":
        """Attach to a wire descriptor's segment, with typed failures.

        A missing segment (the client unlinked it early, or never
        created it) and a descriptor whose claimed view does not fit
        the actual segment both raise :class:`ValidationError` -- the
        caller turns these into JSON error replies, never crashes.
        """
        try:
            shm = _attach_segment(desc.name)
        except FileNotFoundError:
            raise ValidationError(
                f"unknown shared-memory segment {desc.name!r} (already "
                "released, never created, or not visible to the server)"
            ) from None
        # The mapping is live from here on: every exit path below that
        # does not hand ownership to a SharedNDArray must close it.
        if shm.size < desc.nbytes:
            shm.close()
            raise ValidationError(
                f"shm descriptor claims {desc.nbytes} byte(s) "
                f"({desc.dtype}{list(desc.shape)}) but segment "
                f"{desc.name!r} holds only {shm.size}"
            )
        try:
            return cls(shm, desc.shape, np.dtype(desc.dtype), owner=False)
        except BaseException:
            shm.close()
            raise

    @property
    def meta(self) -> ShmMeta:
        return ShmMeta(
            name=self._shm.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    def close(self) -> None:
        # Drop the view first; closing a segment with live exports fails.
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        _track_before_unlink(self._shm)
        self._shm.unlink()

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()


def verify_descriptor_digest(desc: ShmDescriptor, arr: np.ndarray) -> None:
    """Check a mapped view against its descriptor's claimed digest.

    Raises :class:`~repro.utils.errors.CorruptPayloadError` (a
    *retryable* fault: a torn concurrent write heals on re-read) when
    the pixels do not hash to the claim -- tampered or corrupted
    segments are detected before any computation runs.
    """
    from repro.utils.errors import CorruptPayloadError

    actual = array_digest(arr)
    if actual != desc.digest:
        raise CorruptPayloadError(
            f"shared segment {desc.name!r} failed digest verification "
            f"(descriptor claims {desc.digest[:12]}..., pixels hash to "
            f"{actual[:12]}...)",
            site="svc:shmem",
        )


class ShmArena:
    """A refcounted owner of named shared segments.

    The service's reply plane needs segments that outlive one function
    call: the server writes a result, hands the descriptor to the
    client, and must keep the segment alive until the client releases
    it (or disconnects).  The arena is that owner -- every segment it
    mints is tracked by name, released exactly once, and guaranteed
    torn down by :meth:`release_all` however the server exits.

    ``checkout``/``checkin`` cover the read side: repeated checkouts of
    one segment share a single mapping under a refcount, so a client
    pipelining many requests against one image costs one attach.

    All methods are thread-safe only by confinement: the service uses
    the arena from its event-loop thread exactly as it uses the result
    cache.
    """

    def __init__(self, *, max_segments: int = 256):
        if max_segments <= 0:
            raise ValidationError("arena max_segments must be positive")
        self.max_segments = int(max_segments)
        #: name -> (segment, refcount, owned)
        self._segments: dict[str, list] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def mint(self, arr: np.ndarray) -> ShmDescriptor:
        """Copy ``arr`` into a fresh owned segment; returns its descriptor.

        The arena owns the segment until :meth:`release` (or
        :meth:`release_all`) unlinks it.
        """
        if len(self._segments) >= self.max_segments:
            raise ValidationError(
                f"shm arena is full ({self.max_segments} live segment(s)); "
                "release reply segments (op 'shm_release') before minting more"
            )
        seg = None
        try:
            seg = SharedNDArray.from_array(np.ascontiguousarray(arr))
            desc = ShmDescriptor.for_array(seg.meta.name, seg.array)
            self._segments[desc.name] = [seg, 1, True]
            seg = None  # ownership transferred to the arena
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()
        return desc

    def checkout(self, desc: ShmDescriptor) -> SharedNDArray:
        """Attach (or re-use the live mapping of) a descriptor's segment."""
        entry = self._segments.get(desc.name)
        if entry is not None:
            entry[1] += 1
            return entry[0]
        seg = SharedNDArray.attach_descriptor(desc)
        self._segments[desc.name] = [seg, 1, False]
        return seg

    def checkin(self, name: str) -> None:
        """Drop one reference; the last checkin of a borrowed segment
        closes the mapping (owned segments stay until released)."""
        entry = self._segments.get(name)
        if entry is None:
            raise ValidationError(
                f"segment {name!r} is not checked out of this arena"
            )
        entry[1] -= 1
        if entry[1] <= 0 and not entry[2]:
            del self._segments[name]
            entry[0].close()

    def release(self, name: str) -> None:
        """Unlink an owned segment exactly once.

        A second release (or a release of a name the arena never
        owned) raises :class:`ValidationError` -- double-release is a
        protocol error the client should hear about, not a silent
        no-op that masks lifetime bugs.
        """
        entry = self._segments.get(name)
        if entry is None or not entry[2]:
            raise ValidationError(
                f"unknown or already-released segment {name!r}"
            )
        del self._segments[name]
        seg = entry[0]
        seg.close()
        seg.unlink()

    def release_all(self) -> int:
        """Tear down every live segment; returns how many were dropped.

        Safe to call repeatedly; used at server shutdown so no reply
        segment can outlive the process (the leakcheck contract).
        """
        n = len(self._segments)
        for name in list(self._segments):
            seg, _refs, owned = self._segments.pop(name)
            seg.close()
            if owned:
                seg.unlink()
        return n

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release_all()

"""NumPy arrays backed by POSIX shared memory.

Workers attach to the segment by name, so large images are shared with
the pool instead of being pickled per task -- the standard idiom for
process-parallel NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ShmMeta:
    """Picklable handle describing a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedNDArray:
    """A NumPy array living in a shared-memory segment.

    Create with :meth:`create` (owner) or :meth:`attach` (worker); the
    owner should call :meth:`unlink` when done, every process
    :meth:`close`.  Usable as a context manager on the owning side.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape, dtype) -> "SharedNDArray":
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes <= 0:
            raise ValidationError(f"cannot share empty array of shape {shape}")
        # Ownership of the raw segment transfers to the instance (whose
        # __exit__ tears it down); if constructing the view fails we are
        # still on the hook for the segment, hence the explicit unwind.
        shm = shared_memory.SharedMemory(create=True, size=nbytes)  # check: ignore[RES201]
        try:
            return cls(shm, shape, dtype, owner=True)
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedNDArray":
        out = cls.create(arr.shape, arr.dtype)
        out.array[:] = arr
        return out

    @classmethod
    def attach(cls, meta: ShmMeta) -> "SharedNDArray":
        shm = shared_memory.SharedMemory(name=meta.name)
        return cls(shm, meta.shape, np.dtype(meta.dtype), owner=False)

    @property
    def meta(self) -> ShmMeta:
        return ShmMeta(
            name=self._shm.name,
            shape=tuple(self.array.shape),
            dtype=self.array.dtype.str,
        )

    def close(self) -> None:
        # Drop the view first; closing a segment with live exports fails.
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        self._shm.unlink()

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()

"""Process-parallel histogramming and connected components.

Mirrors the BDM algorithms' structure with real OS processes:

* **histogram** -- each worker tallies a band of rows (the local-tally
  step); the driver sums the partial histograms (the transpose+reduce
  steps collapse to a sum, since the driver plays all receivers).
* **components** -- workers label their tiles in shared memory with the
  globally-offset initial labels; the merge schedule then runs round by
  round with each round's independent border groups fanned out to the
  pool (pool.map is the round barrier); workers finally apply the
  hook-based interior relabel in parallel.

Both return results bit-identical to the sequential engines.  The hot
local steps inside the workers -- band tally, tile labeling, border
extraction, change-array relabel -- dispatch through the
:mod:`repro.kernels` registry, so each call can select the ``python``
reference or the vectorized ``numpy`` backend (``kernel=`` argument or
``REPRO_KERNEL_BACKEND``).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.hooks import apply_hooks, create_tile_hooks
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid, perimeter_indices
from repro.kernels import get as get_kernel, resolve_backend
from repro.obs.events import CAT_SETUP
from repro.obs.runtime import WallRecorder, init_worker_sink, span_or_null, task_span
from repro.runtime.shmem import SharedNDArray, ShmMeta
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.validation import check_image, check_power_of_two

__all__ = ["histogram", "components", "resolve_workers"]


def resolve_workers(workers: int | None, shape=None) -> int:
    """Pick a power-of-two worker count.

    Defaults to the largest power of two <= cpu count (capped at 16);
    when an image shape (or side) is given, the count is reduced until
    the logical grid divides it.
    """
    if workers is None:
        cpus = os.cpu_count() or 1
        workers = 1
        while workers * 2 <= min(cpus, 16):
            workers *= 2
    check_power_of_two("workers", workers)
    if shape is not None:
        while workers > 1:
            try:
                ProcessorGrid(workers, shape)
                break
            # Only the divisibility/size probe may fail softly; anything
            # else (a real bug) must propagate, not silently halve the
            # worker count.
            except ConfigurationError:
                workers //= 2
    return workers


def _resolve_backend(backend: str, workers: int) -> str:
    if backend not in ("auto", "serial", "process"):
        raise ValidationError(f"unknown backend {backend!r}")
    if backend == "auto":
        return "process" if workers > 1 and (os.cpu_count() or 1) > 1 else "serial"
    return backend


def _pool_context():
    # fork shares the parent's pages copy-on-write, which is cheap; fall
    # back to spawn where fork is unavailable.
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


# --------------------------------------------------------------------------
# histogram
# --------------------------------------------------------------------------

_WORK: dict = {}


def _hist_init(image_meta: ShmMeta, k: int, kernel: str, obs=None) -> None:
    init_worker_sink(obs)
    _WORK["image"] = SharedNDArray.attach(image_meta)
    _WORK["k"] = k
    _WORK["hist_kernel"] = get_kernel("histogram", backend=kernel)


def _hist_band(band: tuple[int, int]) -> np.ndarray:
    lo, hi = band
    with task_span(f"hist:band[{lo}:{hi})"):
        img = _WORK["image"].array
        return _WORK["hist_kernel"](img[lo:hi], _WORK["k"])


def histogram(
    image: np.ndarray,
    k: int,
    *,
    workers: int | None = None,
    backend: str = "auto",
    kernel: str | None = None,
    recorder: WallRecorder | None = None,
) -> np.ndarray:
    """Histogram of an image's grey levels, process-parallel by bands.

    ``kernel`` selects the local tally kernel backend (``"python"`` /
    ``"numpy"``; ``None`` resolves ``REPRO_KERNEL_BACKEND`` / the numpy
    default).  Pass a :class:`~repro.obs.runtime.WallRecorder` as
    ``recorder`` to collect wall-clock spans (shared-memory setup,
    per-band worker tasks, the driver-side reduce) across the pool.
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")
    workers = resolve_workers(workers)
    kernel = resolve_backend(kernel)
    if _resolve_backend(backend, workers) == "serial":
        return get_kernel("histogram", backend=kernel)(image, k)

    rows = image.shape[0]
    bounds = np.linspace(0, rows, workers + 1, dtype=np.int64)
    bands = [(int(bounds[i]), int(bounds[i + 1])) for i in range(workers)]
    ctx = _pool_context()
    obs = None
    if recorder is not None:
        recorder.make_queue(ctx)
        obs = recorder.worker_init_args()
    with span_or_null(recorder, "shmem:setup", cat=CAT_SETUP):
        shm = SharedNDArray.from_array(np.ascontiguousarray(image))
    with shm:
        with ctx.Pool(
            workers, initializer=_hist_init, initargs=(shm.meta, k, kernel, obs)
        ) as pool:
            with span_or_null(recorder, "hist:tally"):
                partials = pool.map(_hist_band, bands)
    with span_or_null(recorder, "hist:reduce"):
        result = np.sum(partials, axis=0, dtype=np.int64)
    if recorder is not None:
        recorder.drain()
    return result


# --------------------------------------------------------------------------
# connected components
# --------------------------------------------------------------------------


def _cc_init(image_meta: ShmMeta, labels_meta: ShmMeta, opts: dict, obs=None) -> None:
    init_worker_sink(obs)
    _WORK["image"] = SharedNDArray.attach(image_meta)
    _WORK["labels"] = SharedNDArray.attach(labels_meta)
    _WORK["opts"] = opts


def _cc_label_tile(pid: int):
    """Worker: label own tile in shared memory; return the tile's hooks."""
    with task_span(f"cc:label:t{pid}"):
        opts = _WORK["opts"]
        grid = ProcessorGrid(opts["p"], opts["shape"])
        sl = grid.tile_slices(pid)
        I, J = grid.coords(pid)
        tile = _WORK["image"].array[sl]
        lab = get_kernel("tile_label", backend=opts["kernel"])(
            tile,
            connectivity=opts["connectivity"],
            grey=opts["grey"],
            label_base=1,
            label_stride=grid.cols,
            row_offset=I * grid.q,
            col_offset=J * grid.r,
        )
        _WORK["labels"].array[sl] = lab
        return pid, create_tile_hooks(lab)


def _cc_finalize_tile(arg):
    """Worker: hook-based final interior relabel of own tile."""
    pid, hooks = arg
    with task_span(f"cc:final:t{pid}"):
        opts = _WORK["opts"]
        grid = ProcessorGrid(opts["p"], opts["shape"])
        sl = grid.tile_slices(pid)
        labels = _WORK["labels"].array
        labels[sl] = apply_hooks(labels[sl], hooks)
        return pid


def _cc_merge_group(arg):
    """Worker: play group manager for one border merge.

    Fetches the two border sides from shared memory, solves the border
    graph, and applies the change list to the perimeters of every tile
    in its region.  Groups within one merge round touch disjoint
    regions, so the rounds can run with full pool parallelism; rounds
    are separated by the driver (the pool.map barrier), mirroring the
    algorithm's own barrier structure.
    """
    step_index, group_index = arg
    with task_span(f"cc:merge:s{step_index}g{group_index}"):
        return _cc_merge_group_inner(arg)


def _cc_merge_group_inner(arg):
    step_index, group_index = arg
    opts = _WORK["opts"]
    grid = ProcessorGrid(opts["p"], opts["shape"])
    image = _WORK["image"].array
    labels = _WORK["labels"].array
    step = merge_schedule(grid)[step_index]
    group = step.groups[group_index]
    q, r = grid.q, grid.r
    edge_a, edge_b = step.edge_names
    extract = get_kernel("border_extract", backend=opts["kernel"])
    side_a = _collect_side(labels, image, grid, group.side_a_pids, edge_a, extract)
    side_b = _collect_side(labels, image, grid, group.side_b_pids, edge_b, extract)
    solve = solve_border_merge(
        side_a, side_b, connectivity=opts["connectivity"], grey=opts["grey"]
    )
    if len(solve.changes) == 0:
        return 0
    relabel = get_kernel("relabel", backend=opts["kernel"])
    border_rows, border_cols = np.unravel_index(perimeter_indices(q, r), (q, r))
    for pid in group.region:
        r0, c0 = grid.tile_origin(pid)
        rows = border_rows + r0
        cols = border_cols + c0
        labels[rows, cols] = relabel(
            labels[rows, cols], solve.changes.alphas, solve.changes.betas
        )
    return len(solve.changes)


def _collect_side(labels, image, grid, pids, edge, extract) -> BorderSide:
    """One border side's labels and colors via the border_extract kernel."""
    lab_parts = []
    col_parts = []
    for pid in pids:
        sl = grid.tile_slices(pid)
        lab_parts.append(extract(labels[sl], edge))
        col_parts.append(extract(image[sl], edge))
    return BorderSide(np.concatenate(lab_parts), np.concatenate(col_parts))


def components(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    workers: int | None = None,
    backend: str = "auto",
    kernel: str | None = None,
    recorder: WallRecorder | None = None,
) -> np.ndarray:
    """Connected component labels of an image, process-parallel by tiles.

    Output convention matches the sequential engines: background 0,
    component label = 1 + row-major index of its first pixel.
    ``kernel`` selects the backend of the local-step kernels (tile
    labeling, border extraction, change-array relabel): ``"python"`` /
    ``"numpy"``, ``None`` resolving ``REPRO_KERNEL_BACKEND`` / the
    numpy default.  Pass a :class:`~repro.obs.runtime.WallRecorder` as
    ``recorder`` to collect wall-clock spans: shared-memory setup,
    per-tile label/finalize tasks, one driver span per merge round, and
    the per-group merge tasks inside each round.
    """
    image = check_image(image, square=False)
    shape = image.shape
    workers = resolve_workers(workers, shape)
    kernel = resolve_backend(kernel)
    if _resolve_backend(backend, workers) == "serial" or workers == 1:
        return get_kernel("tile_label", backend=kernel)(
            image, connectivity=connectivity, grey=grey
        )

    grid = ProcessorGrid(workers, shape)
    opts = {
        "p": workers,
        "shape": shape,
        "connectivity": connectivity,
        "grey": grey,
        "kernel": kernel,
    }
    ctx = _pool_context()
    obs = None
    if recorder is not None:
        recorder.make_queue(ctx)
        obs = recorder.worker_init_args()
    with span_or_null(recorder, "shmem:setup", cat=CAT_SETUP):
        shm_img = SharedNDArray.from_array(np.ascontiguousarray(image))
        shm_lab = SharedNDArray.create(shape, np.int64)
    with shm_img, shm_lab:
        with ctx.Pool(
            workers,
            initializer=_cc_init,
            initargs=(shm_img.meta, shm_lab.meta, opts, obs),
        ) as pool:
            with span_or_null(recorder, "cc:label"):
                hook_list = dict(pool.map(_cc_label_tile, range(workers)))
            labels = shm_lab.array
            # Merge rounds: groups within a round are independent, so
            # each round fans out to the pool; pool.map is the barrier.
            for step_index, step in enumerate(merge_schedule(grid)):
                with span_or_null(recorder, f"cc:merge:r{step_index}"):
                    pool.map(
                        _cc_merge_group,
                        [(step_index, g) for g in range(len(step.groups))],
                    )
            with span_or_null(recorder, "cc:final"):
                pool.map(
                    _cc_finalize_tile,
                    [(pid, hook_list[pid]) for pid in range(workers)],
                )
            result = labels.copy()
    if recorder is not None:
        recorder.drain()
    return result

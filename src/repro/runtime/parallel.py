"""Process-parallel histogramming and connected components.

Mirrors the BDM algorithms' structure with real OS processes:

* **histogram** -- each worker tallies a band of rows (the local-tally
  step); the driver sums the partial histograms (the transpose+reduce
  steps collapse to a sum, since the driver plays all receivers).
* **components** -- workers label their tiles in shared memory with the
  globally-offset initial labels; the merge schedule then runs round by
  round with each round's independent border groups fanned out to the
  pool; workers finally apply the hook-based interior relabel in
  parallel.

Both return results bit-identical to the sequential engines.  The hot
local steps inside the workers -- band tally, tile labeling, border
extraction, change-array relabel -- dispatch through the
:mod:`repro.kernels` registry (``kernel=`` argument or
``REPRO_KERNEL_BACKEND``).

The runtime is **hardened** (see ``docs/FAULTS.md``): every fan-out
goes through :func:`repro.runtime.dispatch.run_tasks` -- per-task
deadlines (``REPRO_TASK_TIMEOUT``) instead of unbounded ``pool.map``
barriers, bounded retry with exponential backoff, pool respawn on
worker loss, shared-memory teardown on every error path, and (when
recovery is exhausted) graceful degradation to the serial engine with
a :class:`~repro.utils.errors.DegradedRunWarning` and a
``fault:degrade`` obs instant.  A seeded
:class:`~repro.faults.FaultPlan` can inject crashes, hangs, transient
exceptions, and corrupted border payloads to exercise all of it
deterministically.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import warnings

import numpy as np

from repro.core.border_graph import BorderSide, solve_border_merge
from repro.core.hooks import apply_hooks, create_tile_hooks
from repro.core.merge import merge_schedule
from repro.core.tiles import ProcessorGrid
from repro.darray.borders import collect_side, relabel_perimeters
from repro.faults.inject import (
    corrupt_labels,
    fire,
    install_plan,
    validate_border_labels,
)
from repro.faults.plan import FaultPlan
from repro.kernels import get as get_kernel, resolve_backend
from repro.obs.events import CAT_SETUP, FAULT_DEGRADE
from repro.obs.runtime import (
    WallRecorder,
    init_worker_sink,
    instant_or_null,
    span_or_null,
    task_span,
    worker_instant,
)
from repro.runtime.dispatch import PoolSupervisor, run_tasks
from repro.runtime.shmem import SharedNDArray, ShmMeta
from repro.utils.errors import (
    ConfigurationError,
    CorruptPayloadError,
    DegradedRunWarning,
    FaultError,
    ValidationError,
)
from repro.utils.validation import check_image, check_power_of_two

__all__ = ["histogram", "components", "resolve_workers"]


def resolve_workers(workers: int | None, shape=None) -> int:
    """Pick a power-of-two worker count.

    Defaults to the largest power of two <= cpu count (capped at 16);
    when an image shape (or side) is given, the count is reduced until
    the logical grid divides it.
    """
    if workers is None:
        cpus = os.cpu_count() or 1
        workers = 1
        while workers * 2 <= min(cpus, 16):
            workers *= 2
    check_power_of_two("workers", workers)
    if shape is not None:
        while workers > 1:
            try:
                ProcessorGrid(workers, shape)
                break
            # Only the divisibility/size probe may fail softly; anything
            # else (a real bug) must propagate, not silently halve the
            # worker count.
            except ConfigurationError:
                workers //= 2
    return workers


def _resolve_backend(backend: str, workers: int) -> str:
    if backend not in ("auto", "serial", "process"):
        raise ValidationError(f"unknown backend {backend!r}")
    if backend == "auto":
        return "process" if workers > 1 and (os.cpu_count() or 1) > 1 else "serial"
    return backend


def _pool_context():
    # fork shares the parent's pages copy-on-write, which is cheap; fall
    # back to spawn where fork is unavailable.
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


def _degrade_or_raise(exc: FaultError, degrade: bool, recorder, what: str):
    """Shared tail of both engines' recovery-exhausted path."""
    if recorder is not None:
        recorder.drain()  # keep worker spans collected before the fault
    if not degrade:
        raise exc
    warnings.warn(
        DegradedRunWarning(
            f"parallel {what} degraded to the serial engine after "
            f"unrecoverable fault: {exc}"
        ),
        stacklevel=3,
    )
    instant_or_null(
        recorder, FAULT_DEGRADE, what=what, error=type(exc).__name__, detail=str(exc)
    )


# --------------------------------------------------------------------------
# histogram
# --------------------------------------------------------------------------

_WORK: dict = {}


def _hist_init(
    image_meta: ShmMeta, k: int, kernel: str, obs=None, plan: FaultPlan | None = None
) -> None:
    init_worker_sink(obs)
    install_plan(plan)
    _WORK["image"] = SharedNDArray.attach(image_meta)
    _WORK["k"] = k
    _WORK["hist_kernel"] = get_kernel("histogram", backend=kernel)


def _hist_band(arg) -> np.ndarray:
    (index, lo, hi), attempt = arg
    fire("hist:band", task=index, attempt=attempt)
    with task_span(f"hist:band[{lo}:{hi})"):
        img = _WORK["image"].array
        return _WORK["hist_kernel"](img[lo:hi], _WORK["k"])


def histogram(
    image: np.ndarray,
    k: int,
    *,
    workers: int | None = None,
    backend: str = "auto",
    kernel: str | None = None,
    recorder: WallRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    timeout: float | None = None,
    max_retries: int | None = None,
    degrade: bool = True,
) -> np.ndarray:
    """Histogram of an image's grey levels, process-parallel by bands.

    ``kernel`` selects the local tally kernel backend (``"python"`` /
    ``"numpy"``; ``None`` resolves ``REPRO_KERNEL_BACKEND`` / the numpy
    default).  Pass a :class:`~repro.obs.runtime.WallRecorder` as
    ``recorder`` to collect wall-clock spans and fault events.

    ``fault_plan`` injects deterministic faults into the worker tasks;
    ``timeout`` / ``max_retries`` override the per-task deadline and
    retry budget (defaults ``REPRO_TASK_TIMEOUT`` /
    ``REPRO_TASK_RETRIES``).  When recovery is exhausted the call
    either degrades to the serial engine (``degrade=True``, the
    default: a :class:`~repro.utils.errors.DegradedRunWarning` plus a
    ``fault:degrade`` obs instant, result still bit-identical) or
    raises the typed :class:`~repro.utils.errors.FaultError`.
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")
    workers = resolve_workers(workers)
    kernel = resolve_backend(kernel)
    if _resolve_backend(backend, workers) == "serial":
        return get_kernel("histogram", backend=kernel)(image, k)
    try:
        return _histogram_process(
            image, k, workers, kernel, recorder, fault_plan, timeout, max_retries
        )
    except FaultError as exc:
        _degrade_or_raise(exc, degrade, recorder, "histogram")
        return get_kernel("histogram", backend=kernel)(image, k)


def _histogram_process(
    image, k, workers, kernel, recorder, fault_plan, timeout, max_retries
) -> np.ndarray:
    rows = image.shape[0]
    bounds = np.linspace(0, rows, workers + 1, dtype=np.int64)
    bands = [(i, int(bounds[i]), int(bounds[i + 1])) for i in range(workers)]
    ctx = _pool_context()
    obs = None
    if recorder is not None:
        recorder.make_queue(ctx)
        obs = recorder.worker_init_args()
    with contextlib.ExitStack() as stack:
        with span_or_null(recorder, "shmem:setup", cat=CAT_SETUP):
            shm = stack.enter_context(
                SharedNDArray.from_array(np.ascontiguousarray(image))
            )
        pool = stack.enter_context(
            PoolSupervisor(
                ctx,
                workers,
                initializer=_hist_init,
                initargs=(shm.meta, k, kernel, obs, fault_plan),
                recorder=recorder,
            )
        )
        with span_or_null(recorder, "hist:tally"):
            partials = run_tasks(
                pool,
                _hist_band,
                bands,
                site="hist:band",
                timeout=timeout,
                max_retries=max_retries,
                recorder=recorder,
            )
    with span_or_null(recorder, "hist:reduce"):
        result = np.sum(partials, axis=0, dtype=np.int64)
    if recorder is not None:
        recorder.drain()
    return result


# --------------------------------------------------------------------------
# connected components
# --------------------------------------------------------------------------


def _cc_init(
    image_meta: ShmMeta,
    labels_meta: ShmMeta,
    opts: dict,
    obs=None,
    plan: FaultPlan | None = None,
) -> None:
    init_worker_sink(obs)
    install_plan(plan)
    _WORK["image"] = SharedNDArray.attach(image_meta)
    _WORK["labels"] = SharedNDArray.attach(labels_meta)
    _WORK["opts"] = opts


def _cc_label_tile(arg):
    """Worker: label own tile in shared memory; return the tile's hooks."""
    pid, attempt = arg
    fire("cc:label", task=pid, attempt=attempt)
    with task_span(f"cc:label:t{pid}"):
        opts = _WORK["opts"]
        grid = ProcessorGrid(opts["p"], opts["shape"])
        sl = grid.tile_slices(pid)
        I, J = grid.coords(pid)
        tile = _WORK["image"].array[sl]
        lab = get_kernel("tile_label", backend=opts["kernel"])(
            tile,
            connectivity=opts["connectivity"],
            grey=opts["grey"],
            label_base=1,
            label_stride=grid.cols,
            row_offset=I * grid.q,
            col_offset=J * grid.r,
        )
        _WORK["labels"].array[sl] = lab
        return pid, create_tile_hooks(lab)


def _cc_finalize_tile(arg):
    """Worker: hook-based final interior relabel of own tile."""
    (pid, hooks), attempt = arg
    fire("cc:final", task=pid, attempt=attempt)
    with task_span(f"cc:final:t{pid}"):
        opts = _WORK["opts"]
        grid = ProcessorGrid(opts["p"], opts["shape"])
        sl = grid.tile_slices(pid)
        labels = _WORK["labels"].array
        labels[sl] = apply_hooks(labels[sl], hooks)
        return pid


def _cc_merge_group(arg):
    """Worker: play group manager for one border merge.

    Fetches the two border sides from shared memory, solves the border
    graph, and applies the change list to the perimeters of every tile
    in its region.  Groups within one merge round touch disjoint
    regions, so the rounds can run with full pool parallelism; rounds
    are separated by the driver (the dispatch barrier), mirroring the
    algorithm's own barrier structure.

    Injected faults fire at entry -- before any shared-memory mutation
    -- so a killed or retried attempt re-runs from a consistent view.
    A ``corrupt`` spec damages the fetched border payload instead; the
    validation below detects it and raises the retryable
    :class:`~repro.utils.errors.CorruptPayloadError`.
    """
    (step_index, group_index), attempt = arg
    spec = fire("cc:merge", round=step_index, group=group_index, attempt=attempt)
    with task_span(f"cc:merge:s{step_index}g{group_index}"):
        return _cc_merge_group_inner(step_index, group_index, corrupt_spec=spec)


def _cc_merge_group_inner(step_index, group_index, corrupt_spec=None):
    opts = _WORK["opts"]
    grid = ProcessorGrid(opts["p"], opts["shape"])
    image = _WORK["image"].array
    labels = _WORK["labels"].array
    step = merge_schedule(grid)[step_index]
    group = step.groups[group_index]
    edge_a, edge_b = step.edge_names
    extract = get_kernel("border_extract", backend=opts["kernel"])
    side_a = collect_side(labels, image, grid, group.side_a_pids, edge_a, extract)
    side_b = collect_side(labels, image, grid, group.side_b_pids, edge_b, extract)
    if corrupt_spec is not None:
        side_a = BorderSide(corrupt_labels(side_a.labels), side_a.colors)
    try:
        validate_border_labels(side_a.labels)
        validate_border_labels(side_b.labels)
    except CorruptPayloadError:
        worker_instant(
            "fault:corrupt-detected", round=step_index, group=group_index
        )
        raise
    solve = solve_border_merge(
        side_a, side_b, connectivity=opts["connectivity"], grey=opts["grey"]
    )
    if len(solve.changes) == 0:
        return 0
    relabel = get_kernel("relabel", backend=opts["kernel"])
    relabel_perimeters(
        labels, grid, group.region, solve.changes.alphas, solve.changes.betas, relabel
    )
    return len(solve.changes)


def components(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    workers: int | None = None,
    backend: str = "auto",
    kernel: str | None = None,
    recorder: WallRecorder | None = None,
    fault_plan: FaultPlan | None = None,
    timeout: float | None = None,
    max_retries: int | None = None,
    degrade: bool = True,
) -> np.ndarray:
    """Connected component labels of an image, process-parallel by tiles.

    Output convention matches the sequential engines: background 0,
    component label = 1 + row-major index of its first pixel.
    ``kernel`` selects the backend of the local-step kernels
    (``"python"`` / ``"numpy"``, ``None`` resolving
    ``REPRO_KERNEL_BACKEND`` / the numpy default).  Pass a
    :class:`~repro.obs.runtime.WallRecorder` as ``recorder`` to collect
    wall-clock spans and fault events.

    Fault tolerance mirrors :func:`histogram`: ``fault_plan`` injects
    deterministic faults, ``timeout`` / ``max_retries`` bound each
    attempt, and an unrecoverable fault either degrades to the serial
    engine (``degrade=True``, default -- warning + ``fault:degrade``
    instant, result bit-identical) or raises the typed
    :class:`~repro.utils.errors.FaultError`.
    """
    image = check_image(image, square=False)
    shape = image.shape
    workers = resolve_workers(workers, shape)
    kernel = resolve_backend(kernel)
    if _resolve_backend(backend, workers) == "serial" or workers == 1:
        return get_kernel("tile_label", backend=kernel)(
            image, connectivity=connectivity, grey=grey
        )
    try:
        return _components_process(
            image, shape, workers, connectivity, grey, kernel,
            recorder, fault_plan, timeout, max_retries,
        )
    except FaultError as exc:
        _degrade_or_raise(exc, degrade, recorder, "components")
        return get_kernel("tile_label", backend=kernel)(
            image, connectivity=connectivity, grey=grey
        )


def _components_process(
    image, shape, workers, connectivity, grey, kernel,
    recorder, fault_plan, timeout, max_retries,
) -> np.ndarray:
    grid = ProcessorGrid(workers, shape)
    opts = {
        "p": workers,
        "shape": shape,
        "connectivity": connectivity,
        "grey": grey,
        "kernel": kernel,
    }
    ctx = _pool_context()
    obs = None
    if recorder is not None:
        recorder.make_queue(ctx)
        obs = recorder.worker_init_args()
    dispatch_opts = dict(timeout=timeout, max_retries=max_retries, recorder=recorder)
    # The ExitStack guarantees the shared segments are closed AND
    # unlinked on *every* path out of this function -- including a
    # FaultError escaping mid-merge and a failure while creating the
    # second segment (which used to leak the first one in /dev/shm).
    with contextlib.ExitStack() as stack:
        with span_or_null(recorder, "shmem:setup", cat=CAT_SETUP):
            shm_img = stack.enter_context(
                SharedNDArray.from_array(np.ascontiguousarray(image))
            )
            shm_lab = stack.enter_context(SharedNDArray.create(shape, np.int64))
        pool = stack.enter_context(
            PoolSupervisor(
                ctx,
                workers,
                initializer=_cc_init,
                initargs=(shm_img.meta, shm_lab.meta, opts, obs, fault_plan),
                recorder=recorder,
            )
        )
        with span_or_null(recorder, "cc:label"):
            hook_list = dict(
                run_tasks(
                    pool, _cc_label_tile, range(workers), site="cc:label",
                    **dispatch_opts,
                )
            )
        labels = shm_lab.array
        # Merge rounds: groups within a round are independent, so each
        # round fans out to the pool; the dispatch barrier separates
        # rounds, deadline-aware instead of an unbounded pool.map.
        for step_index, step in enumerate(merge_schedule(grid)):
            with span_or_null(recorder, f"cc:merge:r{step_index}"):
                run_tasks(
                    pool,
                    _cc_merge_group,
                    [(step_index, g) for g in range(len(step.groups))],
                    site="cc:merge",
                    **dispatch_opts,
                )
        with span_or_null(recorder, "cc:final"):
            run_tasks(
                pool,
                _cc_finalize_tile,
                [(pid, hook_list[pid]) for pid in range(workers)],
                site="cc:final",
                **dispatch_opts,
            )
        result = labels.copy()
    if recorder is not None:
        recorder.drain()
    return result

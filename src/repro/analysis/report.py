"""Assemble the reproduction artifacts into one report.

``pytest benchmarks/ --benchmark-only`` leaves one text artifact per
table/figure/ablation under ``benchmarks/results/``; this module (and
``python -m repro report``) stitches them into a single document in the
paper's order, so the whole experimental study can be read top to
bottom without hunting through files.
"""

from __future__ import annotations

import pathlib

from repro.utils.errors import ValidationError

#: Artifact ordering: (file stem, section heading).  Mirrors the paper's
#: presentation order; anything not listed is appended alphabetically
#: under "Additional artifacts".
SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_histogramming", "Table 1 - parallel histogramming"),
    ("table2_components", "Table 2 - parallel connected components"),
    ("fig03_histogram_scalability", "Figure 3 (left) - histogramming scalability"),
    ("fig03_components_scalability", "Figure 3 (right) - CC scalability"),
    ("fig04_data_layout", "Figure 4 - data layout and merge structure"),
    ("fig05_tile_hooks", "Figure 5 - tile hooks"),
    ("fig06_cm5", "Figure 6 - transpose/broadcast, CM-5"),
    ("fig07_sp2", "Figure 7 - transpose/broadcast, SP-2"),
    ("fig08_cs2", "Figure 8 - transpose/broadcast, CS-2"),
    ("fig09_paragon", "Figure 9 - transpose/broadcast, Paragon"),
    ("fig10_darpa", "Figure 10 - DARPA image CC on various machines"),
    ("fig11_hist_comp_comm", "Figure 11 - histogramming comp vs comm"),
    ("fig12_cm5_p16", "Figure 12 - CM-5 histogramming, p=16"),
    ("fig13_cm5_p32", "Figure 13 - CM-5 histogramming, p=32"),
    ("fig14_cm5_p64", "Figure 14 - CM-5 histogramming, p=64"),
    ("fig15_cm5_p16", "Figure 15 - CM-5 CC test images, p=16"),
    ("fig16_cm5_p32", "Figure 16 - CM-5 CC test images, p=32"),
    ("fig17_cm5_p64", "Figure 17 - CM-5 CC test images, p=64"),
    ("fig18_sp1_histogram", "Figure 18 - SP-1 histogramming"),
    ("fig19_sp1_components", "Figure 19 - SP-1 CC"),
    ("fig20_sp2_histogram", "Figure 20 - SP-2 histogramming"),
    ("fig21_sp2_components", "Figure 21 - SP-2 CC"),
    ("model_validation", "Model validation - equations (1)-(3), (11)"),
    ("model_fit", "Structural-model fit"),
    ("baseline_comparison", "Baseline comparison - paper vs stripe D&C"),
    ("ablation_updating", "Ablation - limited updating / shadow / distribution"),
    ("ablation_hybrid_sort", "Ablation - hybrid sort crossover"),
    ("ablation_overlap", "Ablation - split-phase overlap"),
    ("engine_comparison", "Engineering - sequential engine comparison"),
    ("physics_autocorrelation", "Application - critical slowing down"),
    ("runtime_backends", "Runtime backends (wall clock)"),
)


def assemble_report(results_dir) -> str:
    """Concatenate the artifacts in paper order; returns the document."""
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise ValidationError(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    available = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise ValidationError(
            f"{results_dir} holds no artifacts; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )

    lines = [
        "REPRODUCTION REPORT",
        "Bader & JaJa, Parallel Algorithms for Image Histogramming and",
        "Connected Components (PPoPP 1995) -- simulated reproduction",
        "=" * 70,
    ]
    seen = set()
    for stem, heading in SECTIONS:
        path = available.get(stem)
        if path is None:
            continue
        seen.add(stem)
        lines.append("")
        lines.append(heading)
        lines.append("-" * len(heading))
        lines.append(path.read_text().rstrip())
    extras = [stem for stem in available if stem not in seen]
    if extras:
        lines.append("")
        lines.append("Additional artifacts")
        lines.append("-" * 20)
        for stem in sorted(extras):
            lines.append("")
            lines.append(f"[{stem}]")
            lines.append(available[stem].read_text().rstrip())
    missing = [stem for stem, _ in SECTIONS if stem not in available]
    if missing:
        lines.append("")
        lines.append(f"(not regenerated in this run: {', '.join(missing)})")
    return "\n".join(lines) + "\n"

"""Region analysis: properties of labeled connected components.

The DARPA Image Understanding benchmark the paper evaluates on is an
*object recognition* task -- component labeling is its first stage, and
per-object measurements (area, bounding box, centroid, intensity) are
what the labels are *for*.  This module computes those properties from
a label image, fully vectorized, plus the standard post-processing
steps: compacting labels to ``1..C`` and suppressing small regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError


@dataclass
class RegionTable:
    """Per-component measurements, aligned across all arrays.

    Attributes
    ----------
    labels:
        The distinct non-background labels, ascending.
    areas:
        Pixel count of each component.
    bbox:
        ``(C, 4)`` array of ``(row_min, col_min, row_max, col_max)``
        (inclusive).
    centroids:
        ``(C, 2)`` array of ``(row, col)`` centroids.
    colors:
        Grey level of each component (present when an intensity image
        was supplied; -1 otherwise).
    """

    labels: np.ndarray
    areas: np.ndarray
    bbox: np.ndarray
    centroids: np.ndarray
    colors: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def largest(self, k: int = 1) -> "RegionTable":
        """The ``k`` largest components, by area, descending."""
        order = np.argsort(self.areas)[::-1][:k]
        return RegionTable(
            labels=self.labels[order],
            areas=self.areas[order],
            bbox=self.bbox[order],
            centroids=self.centroids[order],
            colors=self.colors[order],
        )


def region_table(labels: np.ndarray, image: np.ndarray | None = None) -> RegionTable:
    """Measure every component of a label image.

    Parameters
    ----------
    labels:
        2-D label image (0 = background), e.g. the output of
        :func:`repro.parallel_components`.
    image:
        Optional intensity image of the same shape; if given, each
        component's grey level is recorded (components are constant-
        level by construction for grey CC; for binary CC the level of
        the component's first pixel is recorded).
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValidationError(f"labels must be 2-D, got shape {labels.shape}")
    if image is not None:
        image = np.asarray(image)
        if image.shape != labels.shape:
            raise ValidationError("image and labels must have the same shape")

    rows, cols = labels.shape
    flat = labels.ravel()
    fg = flat != 0
    if not fg.any():
        empty = np.empty(0, dtype=np.int64)
        return RegionTable(
            labels=empty,
            areas=empty.copy(),
            bbox=np.empty((0, 4), dtype=np.int64),
            centroids=np.empty((0, 2), dtype=np.float64),
            colors=empty.copy(),
        )

    uniq, inv = np.unique(flat[fg], return_inverse=True)
    count = len(uniq)
    idx = np.flatnonzero(fg)
    ri = idx // cols
    ci = idx % cols

    areas = np.bincount(inv, minlength=count).astype(np.int64)

    bbox = np.empty((count, 4), dtype=np.int64)
    for col_out, values, reducer in (
        (0, ri, np.minimum),
        (1, ci, np.minimum),
        (2, ri, np.maximum),
        (3, ci, np.maximum),
    ):
        init = rows * cols if reducer is np.minimum else -1
        acc = np.full(count, init, dtype=np.int64)
        reducer.at(acc, inv, values)
        bbox[:, col_out] = acc

    centroids = np.empty((count, 2), dtype=np.float64)
    centroids[:, 0] = np.bincount(inv, weights=ri, minlength=count) / areas
    centroids[:, 1] = np.bincount(inv, weights=ci, minlength=count) / areas

    if image is not None:
        # Grey level at each component's first pixel (works for any
        # labeling convention, not just first-pixel-index labels).
        first_idx = np.full(count, rows * cols, dtype=np.int64)
        np.minimum.at(first_idx, inv, idx)
        colors = image.ravel()[first_idx].astype(np.int64)
    else:
        colors = np.full(count, -1, dtype=np.int64)

    return RegionTable(
        labels=uniq.astype(np.int64),
        areas=areas,
        bbox=bbox,
        centroids=centroids,
        colors=colors,
    )


def region_perimeters(labels: np.ndarray) -> np.ndarray:
    """4-neighbor perimeter of every component, aligned with
    :func:`region_table`'s label order.

    The perimeter counts pixel edges between a component and anything
    that is not that component (other components, background, or the
    image border) -- the standard digital perimeter.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValidationError(f"labels must be 2-D, got shape {labels.shape}")
    uniq = np.unique(labels[labels != 0])
    if uniq.size == 0:
        return np.empty(0, dtype=np.int64)
    # Pad with background so image-border edges count.
    padded = np.zeros((labels.shape[0] + 2, labels.shape[1] + 2), dtype=labels.dtype)
    padded[1:-1, 1:-1] = labels
    perimeter = np.zeros(len(uniq), dtype=np.int64)
    # For each of the 4 directions, count boundary pixels per label.
    for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        neighbor = padded[1 + di : padded.shape[0] - 1 + di,
                          1 + dj : padded.shape[1] - 1 + dj]
        boundary = (labels != 0) & (labels != neighbor)
        vals = labels[boundary]
        if vals.size:
            counts = np.bincount(
                np.searchsorted(uniq, vals), minlength=len(uniq)
            )
            perimeter += counts
    return perimeter


def compact_labels(labels: np.ndarray) -> np.ndarray:
    """Rename components to consecutive ``1..C`` (by first appearance).

    The paper's labels are pixel indices (sparse); many downstream
    consumers (colormaps, histograms over components) want dense ids.
    """
    labels = np.asarray(labels)
    flat = labels.ravel()
    uniq = np.unique(flat[flat != 0])
    out = np.zeros_like(flat)
    if uniq.size:
        pos = np.searchsorted(uniq, flat)
        pos_clipped = np.minimum(pos, len(uniq) - 1)
        hit = (flat != 0) & (uniq[pos_clipped] == flat)
        out[hit] = pos_clipped[hit] + 1
    return out.reshape(labels.shape)


def filter_small_regions(labels: np.ndarray, min_area: int) -> np.ndarray:
    """Set components smaller than ``min_area`` pixels to background."""
    if min_area < 0:
        raise ValidationError("min_area must be non-negative")
    labels = np.asarray(labels)
    table = region_table(labels)
    small = set(table.labels[table.areas < min_area].tolist())
    if not small:
        return labels.copy()
    out = labels.copy()
    mask = np.isin(out, list(small))
    out[mask] = 0
    return out

"""Historical data of Tables 1 and 2 and the normalization rules.

Table 1 compares parallel histogramming implementations; Table 2
compares parallel image connected-components implementations.  The
comparison metric is *work per pixel* -- execution time times processor
count, divided by the pixel count -- with fine-grained (bit-serial)
machines' processor counts divided by 32 first.

We encode the cleanly parseable rows of the published tables: Table 1
in full, and for Table 2 the paper's own eleven 1994 result rows plus a
curated set of literature rows (the extended abstract's Table 2 spans
~50 rows whose column alignment is partly ambiguous in the source
text; the encoded subset preserves every machine family and the rows
the paper itself highlights).  ``work_per_pixel_s`` values are as
reported; :func:`normalized_work_per_pixel_s` recomputes them from
(time, processors, n) and tests check the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.efficiency import work_per_pixel_s
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class TableEntry:
    """One row of a comparison table."""

    year: int
    researchers: str
    machine: str
    processors: int
    image_size: int
    time_s: float
    work_per_pixel_s: float
    fine_grained: bool = False
    note: str = ""
    ours: bool = False


def normalized_work_per_pixel_s(entry: TableEntry) -> float:
    """Recompute the normalized work/pixel of a row from its raw fields."""
    return work_per_pixel_s(
        entry.time_s, entry.processors, entry.image_size, fine_grained=entry.fine_grained
    )


#: Table 1: parallel histogramming implementations (full table).
TABLE1_HISTOGRAMMING: tuple[TableEntry, ...] = (
    TableEntry(1980, "Marks", "AMT DAP", 1024, 32, 17.25e-3, 539e-6, fine_grained=True),
    TableEntry(1983, "Potter", "Goodyear MPP", 16384, 128, 16.4e-3, 513e-6, fine_grained=True),
    TableEntry(1984, "Grinberg, Nudd, and Etchells", "3-D machine", 16384, 256, 1.7e-3, 13.3e-6, fine_grained=True),
    TableEntry(1987, "Ibrahim, Kender, and Shaw", "NON-VON 3", 16384, 128, 2.16e-3, 67.5e-6, fine_grained=True),
    TableEntry(1990, "Nudd, et al.", "Warwick Pyramid", 16896, 256, 237e-6, 2.47e-6, fine_grained=True, note="16K base"),
    TableEntry(1991, "Jesshope", "AMT DAP 510", 1024, 512, 86e-3, 10.5e-6, fine_grained=True),
    TableEntry(1994, "Bader and JaJa", "TMC CM-5", 16, 512, 12.0e-3, 732e-9, ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-1", 16, 512, 9.20e-3, 562e-9, ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-2", 16, 512, 20.0e-3, 1.22e-6, ours=True),
    TableEntry(1994, "Bader and JaJa", "Intel Paragon", 8, 512, 20.8e-3, 635e-9, ours=True),
    TableEntry(1994, "Bader and JaJa", "Meiko CS-2", 4, 512, 15.2e-3, 231e-9, ours=True),
)

#: Table 2: parallel connected components implementations (curated; the
#: literature rows are the cleanly alignable subset of the published
#: ~50-row table, reproduced with their reported work-per-pixel values).
TABLE2_COMPONENTS: tuple[TableEntry, ...] = (
    TableEntry(1986, "Little", "TMC CM-1", 65536, 512, 450e-3, 3.53e-3, fine_grained=True, note="DARPA I, scanning alg."),
    TableEntry(1986, "Hummel", "NYU Ultracomputer", 12, 512, 725e-3, 33.2e-6, note="Shiloach/Vishkin alg."),
    TableEntry(1987, "Sunwoo, Baroody, and Aggarwal", "Intel iPSC", 32, 512, 400e-3, 48.8e-6, note="2-pass swath, 4-conn."),
    TableEntry(1989, "Kanade and Webb", "WW Warp", 10, 512, 5.6, 214e-6, note="DARPA I"),
    TableEntry(1989, "Kanade and Webb", "PC Warp", 10, 512, 980e-3, 37.4e-6, note="DARPA I"),
    TableEntry(1989, "Kanade and Webb", "iWarp", 72, 512, 470e-3, 129e-6, note="DARPA I (est.)"),
    TableEntry(1989, "Manohar and Ramapriyan", "Goodyear MPP", 16384, 512, 14e-3, 27.3e-6, fine_grained=True),
    TableEntry(1990, "Falsafi and Miller", "Intel iPSC/2", 10, 512, 4.34, 166e-6, note="DARPA I"),
    TableEntry(1991, "Baillie and Coddington", "TMC CM-2", 32768, 512, 140e-3, 547e-6, fine_grained=True, note="cluster labeling"),
    TableEntry(1991, "Baillie and Coddington", "Intel iPSC/2", 32, 512, 1.197, 146e-6, note="cluster labeling"),
    TableEntry(1991, "Baillie and Coddington", "AMT DAP 510", 1024, 512, 1.27, 155e-6, fine_grained=True, note="cluster labeling"),
    TableEntry(1991, "Baillie and Coddington", "Ncube-1", 32, 512, 53.4, 6.52e-3, note="cluster labeling"),
    TableEntry(1991, "Baillie and Coddington", "Caltech Symult 2010", 32, 512, 16.7, 2.04e-3, note="cluster labeling"),
    TableEntry(1991, "Baillie and Coddington", "Meiko CS-1", 32, 512, 14.8, 1.81e-3, note="cluster labeling"),
    TableEntry(1991, "Kistler and Webb", "Warp", 10, 512, 1.31, 50.0e-6, note="split and merge"),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/2", 32, 512, 1.914, 234e-6, note="DARPA II Image, partitioned input"),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/2", 32, 512, 1.649, 201e-6, note="DARPA II Image, complete im./PE"),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/2", 32, 512, 2.290, 280e-6, note="DARPA II Image, cmplt.+collect.comm."),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/860", 32, 512, 1.351, 165e-6, note="DARPA II Image, partitioned input"),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/860", 32, 512, 1.031, 126e-6, note="DARPA II Image, complete im./PE"),
    TableEntry(1992, "Choudhary and Thakur", "Intel iPSC/860", 32, 512, 947e-3, 116e-6, note="DARPA II Image, cmplt.+collect.comm."),
    TableEntry(1993, "Embrechts, Roose, and Wambacq", "Intel iPSC/2", 16, 512, 521e-3, 31.8e-6, note="DARPA II Image"),
    TableEntry(1994, "Choudhary and Thakur", "TMC CM-5", 32, 512, 456e-3, 55.7e-6, note="DARPA II Image, multi-dim D+C (partitioned input)"),
    TableEntry(1994, "Choudhary and Thakur", "TMC CM-5", 32, 512, 398e-3, 48.6e-6, note="DARPA II Image, multi-dim D+C (complete im./PE)"),
    TableEntry(1994, "Choudhary and Thakur", "TMC CM-5", 32, 512, 452e-3, 55.2e-6, note="DARPA II Image, multi-dim D+C (cmplt.+collect.comm.)"),
    # The paper's own results (Table 2 tail, all eleven rows).
    TableEntry(1994, "Bader and JaJa", "TMC CM-5", 32, 512, 368e-3, 44.9e-6, note="DARPA II Image", ours=True),
    TableEntry(1994, "Bader and JaJa", "TMC CM-5", 32, 512, 292e-3, 35.6e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "TMC CM-5", 32, 1024, 852e-3, 26.0e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-1", 4, 512, 370e-3, 5.65e-6, note="DARPA II Image", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-1", 32, 512, 412e-3, 50.3e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-1", 32, 1024, 863e-3, 26.3e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-2", 4, 512, 243e-3, 3.71e-6, note="DARPA II Image", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-2", 32, 512, 284e-3, 34.7e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "IBM SP-2", 32, 1024, 585e-3, 17.9e-6, note="mean of test images", ours=True),
    TableEntry(1994, "Bader and JaJa", "Meiko CS-2", 2, 512, 809e-3, 6.17e-6, note="DARPA II Image", ours=True),
    TableEntry(1994, "Bader and JaJa", "Meiko CS-2", 32, 512, 301e-3, 36.7e-6, note="DARPA II Image", ours=True),
)


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    return f"{seconds * 1e6:.3g} us"


def _fmt_work(seconds: float) -> str:
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"


def format_table(entries, *, title: str = "", extra=()) -> str:
    """Render a comparison table, optionally appending measured rows.

    ``extra`` rows are :class:`TableEntry` instances (typically
    simulated reproductions); they are marked with a trailing ``*``.
    """
    rows = list(entries) + list(extra)
    if not rows:
        raise ValidationError("no table rows")
    header = (
        f"{'Year':<5} {'Researcher(s)':<32} {'Machine':<18} "
        f"{'PEs':>6} {'Image':>7} {'Time':>10} {'Work/pix':>10}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for e in rows:
        mark = " *" if e in extra else ""
        lines.append(
            f"{e.year:<5} {e.researchers:<32.32} {e.machine:<18.18} "
            f"{e.processors:>6} {e.image_size:>4}^2 {_fmt_time(e.time_s):>10} "
            f"{_fmt_work(e.work_per_pixel_s):>10}{mark}"
        )
    return "\n".join(lines)

"""Independent verification of histogram and labeling outputs.

Section 3 of the paper describes how the authors convinced themselves
of correctness: "the histogramming algorithm is assumed to be correct
because sum H[i] = n^2, and for regular patterns it is easy to verify
that each H[i]/n^2 equals the percentage of area that grey level i
covers"; "verifying the connected components algorithm is more
difficult" -- hence the catalogue of patterns with known structure.
This module packages those checks (and stronger, complete ones) as
library functions, so any pipeline can self-verify:

* :func:`verify_histogram` -- the paper's two criteria, plus an exact
  recount.
* :func:`verify_labels` -- complete: (a) background exactly where grey
  level 0 is, (b) no *under-merging*: every pair of adjacent connectable
  pixels shares a label (vectorized shift comparisons), (c) no
  *over-merging*: every label's support is one connected set (checked
  against an independently computed partition), (d) the labeling
  convention (label = 1 + first pixel's row-major index).

``verify_labels`` uses the Shiloach-Vishkin engine for the independent
partition; verifying an SV-produced labeling therefore still crosses
implementations (shift-mask edge construction vs whatever produced the
input), but for true independence pass a different ``reference_engine``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sequential import ENGINES
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image


class VerificationError(ValidationError):
    """An output failed verification."""


def verify_histogram(image: np.ndarray, histogram: np.ndarray) -> None:
    """Assert a histogram is exactly right for ``image``.

    Raises :class:`VerificationError` with a diagnostic message on any
    failure; returns None on success.
    """
    image = check_image(image, square=False)
    histogram = np.asarray(histogram)
    if histogram.ndim != 1:
        raise VerificationError(f"histogram must be 1-D, got shape {histogram.shape}")
    k = len(histogram)
    total = int(histogram.sum())
    if total != image.size:
        raise VerificationError(
            f"sum(H) = {total} != pixel count {image.size} (paper criterion 1)"
        )
    if image.max(initial=0) >= k:
        raise VerificationError(f"image has levels >= k={k}")
    expected = np.bincount(image.ravel(), minlength=k)
    bad = np.flatnonzero(expected != histogram)
    if bad.size:
        level = int(bad[0])
        raise VerificationError(
            f"H[{level}] = {int(histogram[level])}, expected {int(expected[level])}"
            f" ({bad.size} levels wrong)"
        )


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Rename every label to ``1 + min flat index`` of its support.

    Any labeling that partitions the foreground identically maps to the
    same canonical form, so two labelings are equivalent up to renaming
    iff their canonical forms are equal.
    """
    labels = np.asarray(labels)
    flat = labels.ravel()
    out = np.zeros_like(flat, dtype=np.int64)
    fg = flat != 0
    if fg.any():
        idx = np.arange(flat.size, dtype=np.int64)
        uniq, inv = np.unique(flat[fg], return_inverse=True)
        mins = np.full(len(uniq), flat.size, dtype=np.int64)
        np.minimum.at(mins, inv, idx[fg])
        out[fg] = mins[inv] + 1
    return out.reshape(labels.shape)


def verify_labels(
    image: np.ndarray,
    labels: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    reference_engine: str = "sv",
    canonical: bool = True,
) -> None:
    """Assert a component labeling is exactly right for ``image``.

    Raises :class:`VerificationError` on the first violated property;
    returns None when the labeling is correct.  With
    ``canonical=False`` the labeling is accepted up to a renaming of
    the labels (e.g. compacted ``1..C`` ids) -- the *partition* must
    still be exactly right.
    """
    image = check_image(image, square=False)
    labels = np.asarray(labels)
    if labels.shape != image.shape:
        raise VerificationError(
            f"labels shape {labels.shape} != image shape {image.shape}"
        )
    if connectivity not in (4, 8):
        raise VerificationError(f"connectivity must be 4 or 8, got {connectivity}")

    # (a) background.
    fg = image != 0
    if (labels[~fg] != 0).any():
        raise VerificationError("background pixel carries a non-zero label")
    if (labels[fg] == 0).any():
        raise VerificationError("foreground pixel carries label 0")

    # (b) under-merging: adjacent connectable pixels must share labels.
    shifts = ((0, 1), (1, 0)) if connectivity == 4 else ((0, 1), (1, 0), (1, 1), (1, -1))
    rows, cols = image.shape
    for di, dj in shifts:
        src_i = slice(0, rows - di)
        dst_i = slice(di, rows)
        if dj >= 0:
            src_j = slice(0, cols - dj)
            dst_j = slice(dj, cols)
        else:
            src_j = slice(-dj, cols)
            dst_j = slice(0, cols + dj)
        connect = fg[src_i, src_j] & fg[dst_i, dst_j]
        if grey:
            connect &= image[src_i, src_j] == image[dst_i, dst_j]
        differ = connect & (labels[src_i, src_j] != labels[dst_i, dst_j])
        if differ.any():
            i, j = np.argwhere(differ)[0]
            raise VerificationError(
                f"adjacent connectable pixels ({int(i)},{int(j)}) and "
                f"({int(i) + di},{int(j) + dj}) have different labels"
            )

    # (c) over-merging + (d) convention: compare against an independent
    # engine's labeling, which is canonical by construction.
    if reference_engine not in ENGINES:
        raise VerificationError(
            f"unknown reference engine {reference_engine!r}; known: {sorted(ENGINES)}"
        )
    reference = ENGINES[reference_engine](
        image, connectivity=connectivity, grey=grey
    )
    candidate = labels if canonical else canonicalize_labels(labels)
    if not np.array_equal(candidate, reference):
        diff = candidate != reference
        i, j = np.argwhere(diff)[0]
        raise VerificationError(
            f"label at ({int(i)},{int(j)}) is {int(candidate[i, j])}, canonical is "
            f"{int(reference[i, j])} -- over-merged components or wrong convention"
        )


def verify_area_fractions(
    image: np.ndarray, histogram: np.ndarray, fractions: dict[int, float], *, tol: float = 0.0
) -> None:
    """Paper criterion 2: check known area shares of regular patterns.

    ``fractions`` maps grey level -> expected share of the image area;
    e.g. equal-thickness alternating bars give ``{0: 0.5, 1: 0.5}``.
    """
    image = check_image(image, square=False)
    histogram = np.asarray(histogram)
    n2 = image.size
    for level, expected in fractions.items():
        if not (0 <= level < len(histogram)):
            raise VerificationError(f"level {level} outside histogram range")
        actual = histogram[level] / n2
        if abs(actual - expected) > tol + 1e-12:
            raise VerificationError(
                f"H[{level}]/n^2 = {actual:.4f}, expected {expected:.4f} "
                f"(tolerance {tol})"
            )

"""The paper's complexity expressions as executable predictions.

These closed forms let tests and the model-validation benchmark check
that the simulator's measured costs track the theory:

* transpose, eq. (1):  ``T_comm = tau + (q - q/p)``, ``T_comp = O(q)``;
* broadcast, eq. (2):  ``T_comm = 2 (tau + q - q/p)``;
* histogramming, eq. (3):  ``T_comm <= 2 (tau + k)``,
  ``T_comp = O(n^2/p + k)``;
* connected components, eq. (11)/(12):
  ``T_comm <= (4 log p) tau + O(n^2/p)`` (the paper writes the volume
  term as ``24 n + 2 p`` for ``p <= n``), ``T_comp = O(n^2/p)``.

Predictions are returned in simulated seconds for a given machine, with
the O(.) constants taken from the same
:class:`~repro.core.costs.CostParams` the algorithms charge, so
prediction vs. simulation agreement is a real invariant (tested), not a
tautology on hidden constants.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.machines.params import MachineParams
from repro.utils.errors import ValidationError
from repro.utils.validation import check_power_of_two, ilog2


def predict_transpose(params: MachineParams, q: int, p: int) -> dict[str, float]:
    """Equation (1) for the blocked ``q x p`` transpose."""
    check_power_of_two("p", p)
    comm = params.latency_s + (q - q // p) * params.word_time_s()
    comp = params.copy_time_s(q)
    return {"comm_s": comm, "comp_s": comp, "total_s": comm + comp}


def predict_broadcast(params: MachineParams, q: int, p: int) -> dict[str, float]:
    """Equation (2) for broadcasting ``q`` words."""
    check_power_of_two("p", p)
    comm = 2.0 * (params.latency_s + (q - q // p) * params.word_time_s())
    comp = params.copy_time_s(2 * q)
    return {"comm_s": comm, "comp_s": comp, "total_s": comm + comp}


def predict_histogram(
    params: MachineParams,
    n: int,
    k: int,
    p: int,
    costs: CostParams = DEFAULT_COSTS,
) -> dict[str, float]:
    """Equation (3): ``T_comm <= 2(tau + k)``, ``T_comp = O(n^2/p + k)``.

    The communication bound is independent of ``n`` -- the signature
    property the paper's Figure 11 demonstrates.
    """
    check_power_of_two("p", p)
    check_power_of_two("k", k)
    comm = 2.0 * (params.latency_s + k * params.word_time_s())
    tile = (n * n) / p
    comp = params.comp_time_s(costs.hist_tally_per_pixel * tile + 3.0 * k)
    return {"comm_s": comm, "comp_s": comp, "total_s": comm + comp}


def predict_components(
    params: MachineParams,
    n: int,
    p: int,
    costs: CostParams = DEFAULT_COSTS,
    *,
    grey: bool = False,
) -> dict[str, float]:
    """Equation (11)/(12): the parallel CC cost bound.

    ``T_comm <= (4 log p) tau + (24 n + 2 p) word-times``;
    ``T_comp = O(n^2/p)`` with the constant dominated by the initial
    labeling and final relabel charges.
    """
    check_power_of_two("p", p)
    log_p = ilog2(p) if p > 1 else 0
    comm = (4.0 * log_p) * params.latency_s + (24.0 * n + 2.0 * p) * params.word_time_s()
    tile = (n * n) / p
    per_pixel = (
        costs.label_per_pixel(grey)
        + costs.relabel_per_pixel
        + costs.hist_reduce_per_word  # loose slack for border work
    )
    # Border work is O(n) overall; include it so small tiles aren't
    # under-predicted.
    border = 24.0 * n * (costs.graph_build_per_vertex + costs.graph_cc_per_vertex)
    comp = params.comp_time_s(per_pixel * tile + border)
    return {"comm_s": comm, "comp_s": comp, "total_s": comm + comp}


def scalability_exponent(ns: np.ndarray, times_s: np.ndarray) -> float:
    """Least-squares slope of log(time) vs log(n).

    The histogramming and CC algorithms run as ``O(n^2/p)`` for fixed
    ``p``, so for large ``n`` this exponent approaches 2 -- the
    "quadratic performance as a function of n" the paper reports.
    """
    ns = np.asarray(ns, dtype=np.float64)
    times_s = np.asarray(times_s, dtype=np.float64)
    if ns.size != times_s.size or ns.size < 2:
        raise ValidationError("need at least two (n, time) samples")
    slope, _ = np.polyfit(np.log(ns), np.log(times_s), 1)
    return float(slope)

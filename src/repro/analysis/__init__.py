"""Analysis: closed-form cost models, efficiency metrics, literature tables.

* :mod:`~repro.analysis.complexity` -- the paper's equations (1), (2),
  (3), (11), (12) as executable predictions, for validating the
  simulator against the theory.
* :mod:`~repro.analysis.efficiency` -- speedup / efficiency /
  work-per-pixel / bandwidth metrics used throughout the evaluation.
* :mod:`~repro.analysis.tables` -- the historical data of Tables 1 and
  2 plus the normalization rules, so the comparison tables can be
  regenerated with our measured rows appended.
"""

from repro.analysis.complexity import (
    predict_transpose,
    predict_broadcast,
    predict_histogram,
    predict_components,
)
from repro.analysis.efficiency import (
    speedup,
    efficiency,
    work_per_pixel_s,
    bandwidth_Bps,
)
from repro.analysis.regions import (
    RegionTable,
    region_table,
    region_perimeters,
    compact_labels,
    filter_small_regions,
)
from repro.analysis.threshold import otsu_threshold, apply_threshold
from repro.analysis.fitting import ComplexityFit, fit_complexity_model, fit_power_law
from repro.analysis.report import assemble_report
from repro.analysis.verification import (
    VerificationError,
    verify_histogram,
    verify_labels,
    verify_area_fractions,
)
from repro.analysis.tables import (
    TableEntry,
    TABLE1_HISTOGRAMMING,
    TABLE2_COMPONENTS,
    normalized_work_per_pixel_s,
    format_table,
)

__all__ = [
    "predict_transpose",
    "predict_broadcast",
    "predict_histogram",
    "predict_components",
    "speedup",
    "efficiency",
    "work_per_pixel_s",
    "bandwidth_Bps",
    "RegionTable",
    "region_table",
    "region_perimeters",
    "otsu_threshold",
    "apply_threshold",
    "ComplexityFit",
    "fit_complexity_model",
    "fit_power_law",
    "assemble_report",
    "compact_labels",
    "filter_small_regions",
    "VerificationError",
    "verify_histogram",
    "verify_labels",
    "verify_area_fractions",
    "TableEntry",
    "TABLE1_HISTOGRAMMING",
    "TABLE2_COMPONENTS",
    "normalized_work_per_pixel_s",
    "format_table",
]

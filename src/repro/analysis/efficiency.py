"""Performance metrics used in the paper's evaluation.

* **Efficiency** (Section 1): "an algorithm with an efficiency near one
  runs approximately p times faster on p processors than the same
  algorithm on a single processor".
* **Work per pixel** (Tables 1-2): total work = time x processors,
  normalized per pixel; fine-grained (bit-serial) machines' processor
  counts are divided by 32 before normalizing.
* **Attained bandwidth** (Figures 6-9): payload bytes moved per
  processor divided by elapsed time.
"""

from __future__ import annotations

from repro.machines.params import WORD_BYTES
from repro.utils.errors import ValidationError

#: Fine-grained (bit-serial) processor counts are divided by this
#: before computing work, per the papers' normalization note.
FINE_GRAIN_DIVISOR = 32


def speedup(t_serial_s: float, t_parallel_s: float) -> float:
    """Classic speedup ``T_1 / T_p``."""
    if t_serial_s < 0 or t_parallel_s <= 0:
        raise ValidationError("times must be positive")
    return t_serial_s / t_parallel_s


def efficiency(t_serial_s: float, t_parallel_s: float, p: int) -> float:
    """Efficiency ``T_1 / (p T_p)`` in [0, 1] for well-behaved runs."""
    if p <= 0:
        raise ValidationError("p must be positive")
    return speedup(t_serial_s, t_parallel_s) / p


def work_per_pixel_s(
    time_s: float, processors: int, n: int, *, fine_grained: bool = False
) -> float:
    """Normalized work per pixel: ``time * p_effective / n^2`` seconds.

    ``fine_grained=True`` applies the divide-by-32 normalization used
    for bit-serial SIMD machines in Tables 1 and 2.
    """
    if time_s < 0 or processors <= 0 or n <= 0:
        raise ValidationError("time, processors and n must be positive")
    p_eff = processors / FINE_GRAIN_DIVISOR if fine_grained else processors
    return time_s * p_eff / (n * n)


def bandwidth_Bps(words_per_processor: float, elapsed_s: float) -> float:
    """Attained per-processor data bandwidth in bytes/second.

    The paper's bandwidth plots divide each processor's payload volume
    by the operation's elapsed time ("MB/s" meaning 1e6 bytes/s).
    """
    if elapsed_s <= 0:
        raise ValidationError("elapsed time must be positive")
    if words_per_processor < 0:
        raise ValidationError("word count must be non-negative")
    return words_per_processor * WORD_BYTES / elapsed_s

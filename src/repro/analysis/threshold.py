"""Histogram-based thresholding (Otsu's method).

After histogramming, the canonical next step in a recognition pipeline
is binarization: pick the threshold separating background from objects.
Otsu's method does this from the histogram alone -- maximizing the
between-class variance -- so it composes directly with
:func:`repro.parallel_histogram`: the O(k) threshold search runs on
``P0`` right where the histogram already lives, adding nothing to the
communication cost.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def otsu_threshold(histogram: np.ndarray) -> int:
    """Otsu's optimal threshold from a grey-level histogram.

    Returns ``t`` such that classifying levels ``<= t`` as background
    and ``> t`` as foreground maximizes the between-class variance.
    Fully vectorized over the ``k`` candidate thresholds.
    """
    histogram = np.asarray(histogram, dtype=np.float64)
    if histogram.ndim != 1 or len(histogram) < 2:
        raise ValidationError("histogram must be 1-D with at least two levels")
    if (histogram < 0).any():
        raise ValidationError("histogram counts must be non-negative")
    total = histogram.sum()
    if total == 0:
        raise ValidationError("histogram is empty")

    k = len(histogram)
    levels = np.arange(k, dtype=np.float64)
    weight_bg = np.cumsum(histogram)  # pixels at levels <= t
    weight_fg = total - weight_bg
    cum_mean = np.cumsum(histogram * levels)
    grand_mean = cum_mean[-1]

    valid = (weight_bg > 0) & (weight_fg > 0)
    if not valid.any():
        return 0  # single occupied level: nothing to separate
    mean_bg = np.where(valid, cum_mean / np.maximum(weight_bg, 1), 0.0)
    mean_fg = np.where(
        valid, (grand_mean - cum_mean) / np.maximum(weight_fg, 1), 0.0
    )
    between = np.where(valid, weight_bg * weight_fg * (mean_bg - mean_fg) ** 2, -1.0)
    return int(np.argmax(between))


def apply_threshold(image: np.ndarray, threshold: int) -> np.ndarray:
    """Binarize: levels above ``threshold`` become 1, the rest 0."""
    image = np.asarray(image)
    return (image > threshold).astype(np.int32)

"""Fitting measured runtimes to the paper's complexity forms.

The paper validates its analysis by eyeballing linearity of time vs
``n^2`` and halving under ``p``-doubling; this module makes that
quantitative: least-squares fits of measured (n, p, time) samples to
the structural model

    ``T(n, p) = a * n^2/p  +  b * n/sqrt(p)  +  c * log2(p)  +  d``

whose terms are exactly the analysis' pieces -- tile computation,
border volume, latency per merge iteration, and constant overhead --
plus a generic power-law fit ``T = C * n^alpha`` for single-variable
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError


@dataclass
class ComplexityFit:
    """Result of fitting samples to the structural model."""

    coefficients: dict[str, float]
    r_squared: float
    dominant_term: str

    def predict(self, n: float, p: float) -> float:
        c = self.coefficients
        return (
            c["n2_over_p"] * n * n / p
            + c["n_over_sqrt_p"] * n / np.sqrt(p)
            + c["log_p"] * np.log2(max(p, 2))
            + c["constant"]
        )


def _design_matrix(ns: np.ndarray, ps: np.ndarray) -> np.ndarray:
    return np.column_stack(
        [
            ns * ns / ps,
            ns / np.sqrt(ps),
            np.log2(np.maximum(ps, 2)),
            np.ones_like(ns, dtype=np.float64),
        ]
    )


def fit_complexity_model(ns, ps, times_s) -> ComplexityFit:
    """Least-squares fit of (n, p, time) samples to the structural model.

    Coefficients are constrained to be non-negative (each term is a
    cost) via clipped iterated least squares; ``r_squared`` measures
    the fit quality and ``dominant_term`` names the term contributing
    the most cost at the largest sampled configuration.
    """
    ns = np.asarray(ns, dtype=np.float64)
    ps = np.asarray(ps, dtype=np.float64)
    times = np.asarray(times_s, dtype=np.float64)
    if not (ns.shape == ps.shape == times.shape) or ns.ndim != 1:
        raise ValidationError("ns, ps and times must be equal-length vectors")
    if ns.size < 5:
        raise ValidationError("need at least 5 samples to fit 4 coefficients")

    X = _design_matrix(ns, ps)
    active = np.ones(X.shape[1], dtype=bool)
    coef = np.zeros(X.shape[1])
    # Iterated NNLS-lite: solve, drop negative coefficients, repeat.
    for _ in range(X.shape[1]):
        sol, *_ = np.linalg.lstsq(X[:, active], times, rcond=None)
        if (sol >= 0).all():
            coef[:] = 0.0
            coef[active] = sol
            break
        keep = sol >= 0
        idx = np.flatnonzero(active)
        active[idx[~keep]] = False
        if not active.any():
            raise ValidationError("degenerate fit: all terms negative")
    else:  # pragma: no cover - bounded by loop construction
        raise ValidationError("fit did not converge")

    fitted = X @ coef
    ss_res = float(((times - fitted) ** 2).sum())
    ss_tot = float(((times - times.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    names = ["n2_over_p", "n_over_sqrt_p", "log_p", "constant"]
    coefficients = dict(zip(names, coef.tolist()))
    big = np.argmax(ns * ns / ps)  # largest configuration by tile size
    contributions = X[big] * coef
    dominant = names[int(np.argmax(contributions))]
    return ComplexityFit(
        coefficients=coefficients, r_squared=r2, dominant_term=dominant
    )


def fit_power_law(xs, ys) -> tuple[float, float, float]:
    """Fit ``y = C * x^alpha``; returns ``(C, alpha, r_squared)`` in log space."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size < 2:
        raise ValidationError("need equal-length vectors with >= 2 samples")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValidationError("power-law fit requires positive samples")
    lx, ly = np.log(xs), np.log(ys)
    alpha, logc = np.polyfit(lx, ly, 1)
    fitted = alpha * lx + logc
    ss_res = float(((ly - fitted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(np.exp(logc)), float(alpha), r2

"""Least-significant-digit radix sort on 32-bit non-negative keys.

Exactly the sorter described in the paper's footnote 4: "Our radix sort
uses four passes; each pass will sort on one byte of the 32-bit key by
using 256 buckets."  Each pass is a stable counting sort implemented
with vectorized NumPy primitives (``bincount`` + exclusive prefix sum +
stable scatter), so no Python-level per-element loop runs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

#: Bits per radix pass (one byte) and resulting bucket count.
RADIX_BITS = 8
BUCKETS = 1 << RADIX_BITS
#: Number of passes needed for a 32-bit key.
PASSES = 32 // RADIX_BITS

_KEY_LIMIT = np.int64(1) << 32


def _check_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValidationError(f"keys must be 1-D, got shape {keys.shape}")
    if not np.issubdtype(keys.dtype, np.integer):
        raise ValidationError(f"keys must be integers, got dtype {keys.dtype}")
    if keys.size:
        lo = keys.min()
        if lo < 0:
            raise ValidationError("radix sort requires non-negative keys")
        hi = np.int64(keys.max())
        if hi >= _KEY_LIMIT:
            raise ValidationError("radix sort keys must fit in 32 bits")
    return keys.astype(np.int64, copy=False)


def counting_sort_pass(keys: np.ndarray, order: np.ndarray, shift: int) -> np.ndarray:
    """One stable counting-sort pass on byte ``shift // 8`` of the keys.

    Parameters
    ----------
    keys:
        The full key array (never reordered; we permute ``order``).
    order:
        Current permutation (indices into ``keys``).
    shift:
        Bit shift selecting the byte: 0, 8, 16 or 24.

    Returns
    -------
    numpy.ndarray
        The refined permutation, stable within equal bytes.
    """
    digits = ((keys[order] >> shift) & (BUCKETS - 1)).astype(np.uint8)
    # Stable scatter: element j goes to (bucket start of its digit) +
    # (count of earlier elements with the same digit).  A stable argsort
    # over the uint8 digit array realizes exactly this placement, and
    # NumPy's stable sort on 8-bit integers is itself a counting/radix
    # pass, so no comparison sorting happens here.
    placement = np.argsort(digits, kind="stable")
    return order[placement]


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Return the stable ascending permutation of 32-bit keys.

    Runs :data:`PASSES` byte passes from least to most significant, but
    skips passes whose byte is constant across all keys (a standard
    optimization that does not change the result).
    """
    keys = _check_keys(keys)
    order = np.arange(keys.size, dtype=np.int64)
    if keys.size <= 1:
        return order
    span = np.int64(keys.max())  # keys are non-negative; min byte skip below
    for p in range(PASSES):
        shift = p * RADIX_BITS
        if (span >> shift) == 0 and p > 0:
            break  # all higher bytes are zero
        order = counting_sort_pass(keys, order, shift)
    return order


def radix_sort(keys: np.ndarray) -> np.ndarray:
    """Return the keys in ascending order (stable LSD radix sort)."""
    keys = _check_keys(keys)
    return keys[radix_argsort(keys)]


def radix_sort_ops(n: int, passes: int = PASSES) -> int:
    """Abstract operation count charged for radix-sorting ``n`` keys.

    Each pass reads every key, updates a bucket counter and scatters --
    about 3 operations per key per pass, plus bucket bookkeeping.
    """
    if n <= 0:
        return 0
    return passes * (3 * n + BUCKETS)

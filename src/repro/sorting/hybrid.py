"""Hybrid sorter: comparison sort for small inputs, radix for large.

Footnote 3 of the paper: "whenever radix sort is mentioned in this
paper, the actual coding uses the standard UNIX quicker-sort function
for smaller sorts, and radix sort for larger sorts, using whichever
sorting method is fastest for the given input size."  We reproduce the
dispatcher with a configurable cutoff (the crossover is examined by the
hybrid-sort ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.sorting.radix import radix_argsort, radix_sort_ops
from repro.utils.errors import ValidationError

#: Below this many keys the comparison sort wins (measured on this
#: host's NumPy; see benchmarks/bench_ablation_hybrid_sort.py).
DEFAULT_CUTOFF = 2048


def hybrid_argsort(keys: np.ndarray, *, cutoff: int = DEFAULT_CUTOFF) -> np.ndarray:
    """Stable ascending permutation, dispatching on input size."""
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValidationError(f"keys must be 1-D, got shape {keys.shape}")
    if keys.size < cutoff:
        return np.argsort(keys, kind="stable")
    return radix_argsort(keys)


def hybrid_sort(keys: np.ndarray, *, cutoff: int = DEFAULT_CUTOFF) -> np.ndarray:
    """Keys in ascending order, dispatching on input size."""
    keys = np.asarray(keys)
    return keys[hybrid_argsort(keys, cutoff=cutoff)]


def hybrid_sort_ops(n: int, *, cutoff: int = DEFAULT_CUTOFF) -> int:
    """Abstract operation count for the hybrid sorter.

    Comparison sort costs about ``2 n log2 n`` operations; radix cost
    comes from :func:`~repro.sorting.radix.radix_sort_ops`.
    """
    if n <= 1:
        return 0
    if n < cutoff:
        return int(2 * n * max(1.0, np.log2(n)))
    return radix_sort_ops(n)

"""Sorting substrate used by the merge phases.

The paper sorts border pixels by label with a four-pass radix sort
(one byte of the 32-bit key per pass, 256 buckets), falling back to the
UNIX quicker-sort for small inputs -- "whichever sorting method is
fastest for the given input size".  This package reproduces both: a
vectorized byte-wise LSD radix sort and a hybrid dispatcher with a
configurable cutoff.
"""

from repro.sorting.radix import radix_sort, radix_argsort, counting_sort_pass
from repro.sorting.hybrid import hybrid_sort, hybrid_argsort, DEFAULT_CUTOFF

__all__ = [
    "radix_sort",
    "radix_argsort",
    "counting_sort_pass",
    "hybrid_sort",
    "hybrid_argsort",
    "DEFAULT_CUTOFF",
]

"""JIT-compiled kernels (``backend="numba"``) -- optional.

The third backend of the registry: the paper's per-pixel procedures,
written as plain scalar loops but compiled to machine code by numba.
Where the numpy backend wins by vectorizing (at the cost of temporaries
and multiple passes), the compiled backend wins by doing exactly one
pass with zero interpreter overhead -- the classic two-pass union-find
CCL formulation, a single-pass tally, and an in-loop binary search.

**Availability is optional by design.**  The module imports cleanly
without numba installed: nothing is registered, ``numba`` simply does
not appear in :func:`repro.kernels.available_backends`, and selecting
it raises a clear :class:`~repro.utils.errors.ValidationError` at
resolution time.  No other behavior changes -- the differential suite
skips its numba legs instead of failing.

Bit-identity with the python/numpy backends is enforced by the same
Hypothesis differential suite and golden fixtures that police the
numpy backend; the labeling core guarantees the Section 5.1 seed-label
convention because its union-find keeps the *minimum* flat pixel index
as every class representative, so each component's final root is its
first pixel in row-major order -- the BFS seed.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # the graceful-skip path
    numba = None
    njit = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba

    @njit(cache=True)
    def _hist_core(flat: np.ndarray, k: int) -> np.ndarray:
        out = np.zeros(k, dtype=np.int64)
        for i in range(flat.size):
            out[flat[i]] += 1
        return out

    @njit(cache=True)
    def _find(parent: np.ndarray, x: int) -> int:
        # Path halving; roots are minima because unions attach the
        # larger root under the smaller one.
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    @njit(cache=True)
    def _union(parent: np.ndarray, a: int, b: int) -> None:
        ra = _find(parent, a)
        rb = _find(parent, b)
        if ra < rb:
            parent[rb] = ra
        elif rb < ra:
            parent[ra] = rb

    @njit(cache=True)
    def _label_roots(image: np.ndarray, connectivity: int, grey: bool) -> np.ndarray:
        """Flat component root (min row-major index) per pixel, -1 for
        background.  One forward scan unions each foreground pixel with
        its already-scanned neighbors; a second scan finalizes roots."""
        rows, cols = image.shape
        n = rows * cols
        parent = np.arange(n, dtype=np.int64)
        for i in range(rows):
            for j in range(cols):
                v = image[i, j]
                if v == 0:
                    continue
                p = i * cols + j
                if j > 0 and image[i, j - 1] != 0 and (
                    not grey or image[i, j - 1] == v
                ):
                    _union(parent, p, p - 1)
                if i > 0:
                    if image[i - 1, j] != 0 and (not grey or image[i - 1, j] == v):
                        _union(parent, p, p - cols)
                    if connectivity == 8:
                        if j > 0 and image[i - 1, j - 1] != 0 and (
                            not grey or image[i - 1, j - 1] == v
                        ):
                            _union(parent, p, p - cols - 1)
                        if j < cols - 1 and image[i - 1, j + 1] != 0 and (
                            not grey or image[i - 1, j + 1] == v
                        ):
                            _union(parent, p, p - cols + 1)
        roots = np.empty(n, dtype=np.int64)
        for p in range(n):
            if image[p // cols, p % cols] == 0:
                roots[p] = -1
            else:
                roots[p] = _find(parent, p)
        return roots

    @njit(cache=True)
    def _relabel_core(
        flat: np.ndarray, alphas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        out = flat.copy()
        for i in range(flat.size):
            v = flat[i]
            lo, hi = 0, alphas.size
            while lo < hi:
                mid = (lo + hi) // 2
                if alphas[mid] < v:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < alphas.size and alphas[lo] == v:
                out[i] = betas[lo]
        return out

    @register("histogram", "numba")
    def histogram(image: np.ndarray, k: int) -> np.ndarray:
        """Single-pass compiled tally (Section 4 step 1)."""
        image = check_image(image, square=False)
        check_power_of_two("k", k)
        if image.max(initial=0) >= k:
            raise ValidationError(f"image has grey levels >= k={k}")
        return _hist_core(np.ascontiguousarray(image, dtype=np.int64).ravel(), k)

    @register("tile_label", "numba")
    def tile_label(
        image: np.ndarray,
        *,
        connectivity: int = 8,
        grey: bool = False,
        label_base: int = 1,
        label_stride: int | None = None,
        row_offset: int = 0,
        col_offset: int = 0,
    ) -> np.ndarray:
        """Compiled two-pass union-find labeling; bit-identical to
        ``bfs_label`` (same seed-label convention, same rejections)."""
        image = check_image(image, square=False)
        if connectivity not in (4, 8):
            raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
        rows, cols = image.shape
        stride = cols if label_stride is None else int(label_stride)
        roots = _label_roots(
            np.ascontiguousarray(image, dtype=np.int64), connectivity, grey
        )
        out = np.zeros(rows * cols, dtype=np.int64)
        fg = roots >= 0
        if not fg.any():
            return out.reshape(rows, cols)
        seed = roots[fg]
        labels = (
            label_base
            + (row_offset + seed // cols) * stride
            + (col_offset + seed % cols)
        )
        if (labels == 0).any():
            bad = int(seed[np.argmax(labels == 0)])
            raise ValidationError(
                f"seed ({bad // cols},{bad % cols}) gets label 0 (the "
                "background sentinel); use label_base/offsets that keep "
                "foreground labels non-zero"
            )
        out[fg] = labels
        return out.reshape(rows, cols)

    @register("border_extract", "numba")
    def border_extract(tile: np.ndarray, edge: str) -> np.ndarray:
        """Edge slicing is already a single memcpy; no JIT needed."""
        tile = np.asarray(tile)
        if tile.ndim != 2:
            raise ValidationError(f"tile must be 2-D, got shape {tile.shape}")
        if edge == "top":
            return tile[0, :].copy()
        if edge == "bottom":
            return tile[-1, :].copy()
        if edge == "left":
            return tile[:, 0].copy()
        if edge == "right":
            return tile[:, -1].copy()
        raise ValidationError(f"unknown edge {edge!r}")

    @register("relabel", "numba")
    def relabel(
        labels: np.ndarray, alphas: np.ndarray, betas: np.ndarray
    ) -> np.ndarray:
        """Compiled per-element binary search of the sorted change array."""
        labels = np.asarray(labels, dtype=np.int64)
        alphas = np.asarray(alphas, dtype=np.int64)
        betas = np.asarray(betas, dtype=np.int64)
        if alphas.shape != betas.shape or alphas.ndim != 1:
            raise ValidationError("alphas and betas must be equal-length vectors")
        if alphas.size == 0:
            return labels.copy()
        return _relabel_core(
            np.ascontiguousarray(labels).ravel(), alphas, betas
        ).reshape(labels.shape)

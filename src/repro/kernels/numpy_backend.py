"""NumPy-vectorized kernels (``backend="numpy"``).

Bit-identical, array-at-a-time versions of the python reference
kernels.  The tile labeler is a vectorized two-pass scheme in the
spirit of the run-based CCL literature:

1. **Run compression** (pass 1) -- every foreground pixel learns the
   flat index of the start of its maximal horizontal run with one
   ``np.maximum.accumulate`` per row; horizontal adjacency is thereby
   resolved without a single union.
2. **Edge construction** -- vertical (and, under 8-connectivity,
   diagonal) adjacencies are found with whole-array slice comparisons;
   each surviving pixel pair is projected to its pair of run starts and
   the pairs are deduplicated, leaving ``O(#runs)`` union-find edges
   instead of ``O(#pixels)``.
3. **Union + relabel** (pass 2) -- the deduplicated edges go through
   :meth:`~repro.baselines.union_find.UnionFind.union_edges`; because
   the union-find keeps *minimum* representatives and a component's
   first pixel in row-major order is necessarily a run start, the root
   of every component is exactly the seed pixel of
   :func:`~repro.baselines.bfs_label.bfs_label`.  A final ``np.take``
   through the root array paints every pixel with the seed's
   ``label_base + (row_offset + i) * stride + (col_offset + j)`` label
   -- the paper's ``(Iq + i) n + (Jr + j) + 1`` convention, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.union_find import UnionFind
from repro.kernels.registry import register
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two


@register("histogram", "numpy")
def histogram(image: np.ndarray, k: int) -> np.ndarray:
    """Tally ``H[0..k-1]`` via ``np.bincount`` (Section 4 step 1)."""
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")
    return np.bincount(image.ravel(), minlength=k).astype(np.int64)


def _run_starts(image: np.ndarray, fg: np.ndarray, grey: bool) -> np.ndarray:
    """Flat index of each pixel's horizontal run start (pass 1).

    Valid only at foreground pixels; background entries are garbage and
    must be masked by the caller.
    """
    rows, cols = image.shape
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    start = fg.copy()
    if grey:
        start[:, 1:] = fg[:, 1:] & (~fg[:, :-1] | (image[:, 1:] != image[:, :-1]))
    else:
        start[:, 1:] = fg[:, 1:] & ~fg[:, :-1]
    # Row-wise running maximum of start indices: every pixel sees the
    # most recent run start at or before its own column.
    return np.maximum.accumulate(np.where(start, idx, 0), axis=1)


def _run_edges(
    image: np.ndarray,
    fg: np.ndarray,
    runstart: np.ndarray,
    connectivity: int,
    grey: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated (run start, run start) union edges between rows."""
    pairs_a: list[np.ndarray] = []
    pairs_b: list[np.ndarray] = []

    def _slide(a_rows, a_cols, b_rows, b_cols):
        mask = fg[a_rows, a_cols] & fg[b_rows, b_cols]
        if grey:
            mask &= image[a_rows, a_cols] == image[b_rows, b_cols]
        if mask.any():
            pairs_a.append(runstart[a_rows, a_cols][mask])
            pairs_b.append(runstart[b_rows, b_cols][mask])

    up, down = slice(None, -1), slice(1, None)
    left, right, full = slice(None, -1), slice(1, None), slice(None)
    _slide(up, full, down, full)  # vertical |
    if connectivity == 8:
        _slide(up, left, down, right)  # diagonal \
        _slide(up, right, down, left)  # anti-diagonal /
    elif connectivity != 4:
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
    if not pairs_a:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    a = np.concatenate(pairs_a)
    b = np.concatenate(pairs_b)
    n = image.size
    uniq = np.unique(a * n + b)  # n^2 < 2^63 for any image that fits in memory
    return uniq // n, uniq % n


@register("tile_label", "numpy")
def tile_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Vectorized two-pass tile labeling; bit-identical to ``bfs_label``."""
    image = check_image(image, square=False)
    if connectivity not in (4, 8):
        raise ValidationError(f"connectivity must be 4 or 8, got {connectivity}")
    rows, cols = image.shape
    stride = cols if label_stride is None else int(label_stride)
    fg = image != 0
    out = np.zeros(rows * cols, dtype=np.int64)
    if not fg.any():
        return out.reshape(rows, cols)

    runstart = _run_starts(image, fg, grey)
    edges_a, edges_b = _run_edges(image, fg, runstart, connectivity, grey)
    uf = UnionFind(rows * cols)
    uf.union_edges(edges_a, edges_b)
    roots = uf.roots()

    # np.take relabel: pixel -> its run start -> the component root,
    # which is the minimum flat pixel index of the component (the BFS
    # seed), then the seed's global label.
    seed = np.take(roots, runstart.ravel()[fg.ravel()])
    labels = (
        label_base
        + (row_offset + seed // cols) * stride
        + (col_offset + seed % cols)
    )
    if (labels == 0).any():
        # Same contract as bfs_label: 0 is reserved for background.
        bad = int(seed[np.argmax(labels == 0)])
        raise ValidationError(
            f"seed ({bad // cols},{bad % cols}) gets label 0 (the "
            "background sentinel); use label_base/offsets that keep "
            "foreground labels non-zero"
        )
    out[fg.ravel()] = labels
    return out.reshape(rows, cols)


@register("border_extract", "numpy")
def border_extract(tile: np.ndarray, edge: str) -> np.ndarray:
    """Slice one tile edge, in global scan order (left-to-right /
    top-to-bottom, matching :func:`repro.core.tiles.edge_indices`)."""
    tile = np.asarray(tile)
    if tile.ndim != 2:
        raise ValidationError(f"tile must be 2-D, got shape {tile.shape}")
    if edge == "top":
        return tile[0, :].copy()
    if edge == "bottom":
        return tile[-1, :].copy()
    if edge == "left":
        return tile[:, 0].copy()
    if edge == "right":
        return tile[:, -1].copy()
    raise ValidationError(f"unknown edge {edge!r}")


@register("relabel", "numpy")
def relabel(labels: np.ndarray, alphas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Bulk binary search of the sorted change array (``searchsorted``)."""
    labels = np.asarray(labels, dtype=np.int64)
    alphas = np.asarray(alphas, dtype=np.int64)
    betas = np.asarray(betas, dtype=np.int64)
    if alphas.shape != betas.shape or alphas.ndim != 1:
        raise ValidationError("alphas and betas must be equal-length vectors")
    out = labels.copy()
    if alphas.size == 0:
        return out
    pos = np.searchsorted(alphas, labels)
    pos_clipped = np.minimum(pos, len(alphas) - 1)
    hit = alphas[pos_clipped] == labels
    out[hit] = betas[pos_clipped[hit]]
    return out

"""Vectorized kernels for the hot local steps, behind a dispatch registry.

Usage::

    from repro import kernels

    label = kernels.get("tile_label")              # resolved backend
    label = kernels.get("tile_label", backend="python")   # explicit
    hist  = kernels.get("histogram", backend="numpy")

Registered kernels (identical signatures across backends):

``histogram(image, k)``
    Grey-level tally ``H[0..k-1]`` (Section 4 step 1).
``tile_label(image, *, connectivity, grey, label_base, label_stride,
row_offset, col_offset)``
    Per-tile component labeling with the paper's
    ``(Iq + i) n + (Jr + j) + 1`` seed-label convention (Section 5.1).
``border_extract(tile, edge)``
    One tile edge in global scan order (merge-step input).
``relabel(labels, alphas, betas)``
    Binary-search relabel against a sorted unique change array
    (Procedure 1 consumption).

Backend selection precedence: explicit ``backend=`` argument >
``REPRO_KERNEL_BACKEND`` environment variable > ``"numpy"``.  The
``"python"`` backend is the per-pixel reference; ``"numpy"`` is proven
bit-identical to it by the differential property suite, and the
optional ``"numba"`` backend (JIT-compiled loops; registered only when
the numba package is installed) is held to the same contract.  See
docs/KERNELS.md.
"""

from repro.kernels.registry import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    backends_of,
    get,
    kernel_names,
    register,
    resolve_backend,
)

# Importing the backend modules populates the registry.  The numba
# module always imports cleanly; it registers nothing when the numba
# package is absent (see NUMBA_AVAILABLE).
from repro.kernels import python_backend, numpy_backend, numba_backend  # noqa: E402,F401
from repro.kernels.numba_backend import NUMBA_AVAILABLE  # noqa: E402

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "NUMBA_AVAILABLE",
    "available_backends",
    "backends_of",
    "get",
    "kernel_names",
    "register",
    "resolve_backend",
]

"""Kernel dispatch registry: one name, several interchangeable backends.

The hot *local* steps of the paper's algorithms -- the per-tile tally of
Section 4 step 1, the per-tile labeling of Section 5.1, border pixel
extraction for the merge iterations, and the change-array relabel of
Procedure 1 -- are isolated behind a tiny registry so each can be
served by either

* ``"python"`` -- the per-pixel reference implementations (the exact
  procedures the paper describes, at interpreter speed),
* ``"numpy"``  -- vectorized equivalents proven **bit-identical** by
  the differential property suite (``tests/test_kernels_differential``)
  and the golden fixtures (``tests/test_kernels_golden``), or
* ``"numba"``  -- JIT-compiled scalar loops (optional: registered only
  when the ``numba`` package is importable; selecting it without numba
  installed raises a clear :class:`ValidationError`).  Held to the same
  bit-identity contract by the same suites.

Only local computation hides behind a kernel; communication, cost
accounting (``CostCounter``) and observability (``repro.obs``) are
untouched by the backend choice.

Selection precedence: an explicit ``backend=`` argument, else the
``REPRO_KERNEL_BACKEND`` environment variable, else ``"numpy"``.
"""

from __future__ import annotations

import functools
import os
from typing import Callable

from repro.obs import trace as _trace
from repro.utils.errors import ValidationError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Fallback backend when neither argument nor environment selects one.
DEFAULT_BACKEND = "numpy"

#: The recognized backends, in reference-first order.  ``numba`` is
#: recognized even when the package is absent (so CLI/env selection
#: fails with a clear message, not "unknown backend"); whether it is
#: *usable* is a registration question -- see :func:`available_backends`.
BACKENDS = ("python", "numpy", "numba")

_REGISTRY: dict[tuple[str, str], Callable] = {}


def register(name: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator: register a function as kernel ``name`` for ``backend``."""
    if backend not in BACKENDS:
        raise ValidationError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")

    def _register(fn: Callable) -> Callable:
        key = (name, backend)
        if key in _REGISTRY:
            raise ValidationError(f"kernel {name!r} already registered for {backend!r}")
        _REGISTRY[key] = fn
        return fn

    return _register


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend name from the argument, environment, or default.

    A *recognized but unavailable* backend (``numba`` without the numba
    package) is rejected here, at selection time, so a misconfigured
    service fails its config validation instead of its first request.
    """
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    backend = str(backend).strip().lower()
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {backend!r}; known: {list(BACKENDS)}"
        )
    if backend not in available_backends():
        raise ValidationError(
            f"kernel backend {backend!r} is not available in this "
            f"environment (is the {backend!r} package installed?); "
            f"available: {available_backends()}"
        )
    return backend


@functools.lru_cache(maxsize=None)
def _traced(name: str, backend: str) -> Callable:
    """A trace-aware wrapper over the registered kernel function.

    When a request trace context is active (service requests propagate
    one into the worker, see :mod:`repro.obs.trace`), every kernel call
    records a ``kernel:<name>`` span parented under the task span.
    Untraced callers pay a single ``is None`` check.
    """
    fn = _REGISTRY[(name, backend)]
    span_name = f"kernel:{name}"

    @functools.wraps(fn)
    def _dispatch(*args, **kwargs):
        if _trace.current() is None:
            return fn(*args, **kwargs)
        with _trace.traced_span(span_name, backend=backend):
            return fn(*args, **kwargs)

    return _dispatch


def get(name: str, backend: str | None = None) -> Callable:
    """Look up kernel ``name`` for ``backend`` (resolved per precedence).

    The returned callable is the registered function behind a
    trace-dispatch shim; its behavior (and bit-identity across
    backends) is unchanged.
    """
    backend = resolve_backend(backend)
    if (name, backend) not in _REGISTRY:
        if backend not in available_backends():
            raise ValidationError(
                f"kernel backend {backend!r} is not available in this "
                f"environment (is the {backend!r} package installed?); "
                f"available: {available_backends()}"
            )
        known = sorted({n for n, _ in _REGISTRY})
        raise ValidationError(
            f"unknown kernel {name!r} for backend {backend!r}; known kernels: {known}"
        )
    return _traced(name, backend)


def kernel_names() -> list[str]:
    """Sorted names of all registered kernels."""
    return sorted({name for name, _ in _REGISTRY})


def available_backends() -> list[str]:
    """Backends with at least one registered kernel, reference-first.

    ``python`` and ``numpy`` are always present; ``numba`` appears only
    when the optional package imported cleanly at startup.
    """
    registered = {b for _, b in _REGISTRY}
    return [b for b in BACKENDS if b in registered]


def backends_of(name: str) -> list[str]:
    """Backends registered for kernel ``name`` (reference-first order)."""
    found = [b for b in BACKENDS if (name, b) in _REGISTRY]
    if not found:
        raise ValidationError(f"unknown kernel {name!r}; known kernels: {kernel_names()}")
    return found

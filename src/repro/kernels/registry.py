"""Kernel dispatch registry: one name, several interchangeable backends.

The hot *local* steps of the paper's algorithms -- the per-tile tally of
Section 4 step 1, the per-tile labeling of Section 5.1, border pixel
extraction for the merge iterations, and the change-array relabel of
Procedure 1 -- are isolated behind a tiny registry so each can be
served by either

* ``"python"`` -- the per-pixel reference implementations (the exact
  procedures the paper describes, at interpreter speed), or
* ``"numpy"``  -- vectorized equivalents proven **bit-identical** by
  the differential property suite (``tests/test_kernels_differential``)
  and the golden fixtures (``tests/test_kernels_golden``).

Only local computation hides behind a kernel; communication, cost
accounting (``CostCounter``) and observability (``repro.obs``) are
untouched by the backend choice.

Selection precedence: an explicit ``backend=`` argument, else the
``REPRO_KERNEL_BACKEND`` environment variable, else ``"numpy"``.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.utils.errors import ValidationError

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Fallback backend when neither argument nor environment selects one.
DEFAULT_BACKEND = "numpy"

#: The recognized backends, in reference-first order.
BACKENDS = ("python", "numpy")

_REGISTRY: dict[tuple[str, str], Callable] = {}


def register(name: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator: register a function as kernel ``name`` for ``backend``."""
    if backend not in BACKENDS:
        raise ValidationError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")

    def _register(fn: Callable) -> Callable:
        key = (name, backend)
        if key in _REGISTRY:
            raise ValidationError(f"kernel {name!r} already registered for {backend!r}")
        _REGISTRY[key] = fn
        return fn

    return _register


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend name from the argument, environment, or default."""
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    backend = str(backend).strip().lower()
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {backend!r}; known: {list(BACKENDS)}"
        )
    return backend


def get(name: str, backend: str | None = None) -> Callable:
    """Look up kernel ``name`` for ``backend`` (resolved per precedence)."""
    backend = resolve_backend(backend)
    try:
        return _REGISTRY[(name, backend)]
    except KeyError:
        known = sorted({n for n, _ in _REGISTRY})
        raise ValidationError(
            f"unknown kernel {name!r} for backend {backend!r}; known kernels: {known}"
        ) from None


def kernel_names() -> list[str]:
    """Sorted names of all registered kernels."""
    return sorted({name for name, _ in _REGISTRY})


def backends_of(name: str) -> list[str]:
    """Backends registered for kernel ``name`` (reference-first order)."""
    found = [b for b in BACKENDS if (name, b) in _REGISTRY]
    if not found:
        raise ValidationError(f"unknown kernel {name!r}; known kernels: {kernel_names()}")
    return found

"""Pure-Python reference kernels (``backend="python"``).

These are the paper's procedures exactly as written, executed per
pixel by the interpreter: the Section 5.1 row-major BFS for tile
labeling, a scalar tally loop for histogramming, per-pixel border
walks, and a per-label binary search for the change-array relabel.
They define the semantics; the numpy backend must match them bit for
bit (enforced by the differential property suite).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.baselines.bfs_label import bfs_label
from repro.baselines.sequential import sequential_histogram_loop
from repro.kernels.registry import register
from repro.utils.errors import ValidationError


@register("histogram", "python")
def histogram(image: np.ndarray, k: int) -> np.ndarray:
    """Tally ``H[0..k-1]`` with a scalar Python loop (Section 4 step 1)."""
    return sequential_histogram_loop(image, k)


@register("tile_label", "python")
def tile_label(
    image: np.ndarray,
    *,
    connectivity: int = 8,
    grey: bool = False,
    label_base: int = 1,
    label_stride: int | None = None,
    row_offset: int = 0,
    col_offset: int = 0,
) -> np.ndarray:
    """Label a tile by per-pixel row-major BFS (the Section 5.1 procedure)."""
    return bfs_label(
        image,
        connectivity=connectivity,
        grey=grey,
        label_base=label_base,
        label_stride=label_stride,
        row_offset=row_offset,
        col_offset=col_offset,
    )


def _edge_coords(rows: int, cols: int, edge: str) -> list[tuple[int, int]]:
    if edge == "top":
        return [(0, j) for j in range(cols)]
    if edge == "bottom":
        return [(rows - 1, j) for j in range(cols)]
    if edge == "left":
        return [(i, 0) for i in range(rows)]
    if edge == "right":
        return [(i, cols - 1) for i in range(rows)]
    raise ValidationError(f"unknown edge {edge!r}")


@register("border_extract", "python")
def border_extract(tile: np.ndarray, edge: str) -> np.ndarray:
    """Walk one tile edge pixel by pixel, in global scan order."""
    tile = np.asarray(tile)
    if tile.ndim != 2:
        raise ValidationError(f"tile must be 2-D, got shape {tile.shape}")
    rows, cols = tile.shape
    values = [tile[i, j] for i, j in _edge_coords(rows, cols, edge)]
    return np.array(values, dtype=tile.dtype)


@register("relabel", "python")
def relabel(labels: np.ndarray, alphas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Per-label binary search of the sorted change array (Procedure 1 use).

    ``alphas`` must be sorted and unique; labels found in it are renamed
    to the matching beta, all others pass through unchanged.
    """
    labels = np.asarray(labels, dtype=np.int64)
    alpha_list = [int(a) for a in np.asarray(alphas).tolist()]
    beta_list = [int(b) for b in np.asarray(betas).tolist()]
    if len(alpha_list) != len(beta_list):
        raise ValidationError("alphas and betas must have equal length")
    out = labels.copy()
    if not alpha_list:
        return out
    flat = out.ravel()
    for pos, value in enumerate(flat.tolist()):
        at = bisect_left(alpha_list, value)
        if at < len(alpha_list) and alpha_list[at] == value:
            flat[pos] = beta_list[at]
    return out

"""Merge schedule: who merges what, and who manages (Sections 5.2-5.3).

The ``log p`` merge iterations alternate between *horizontal* merges
(joining two side-by-side regions along a vertical border line) and
*vertical* merges (joining two stacked regions along a horizontal
border), horizontal first; when the logical grid is twice as wide as
tall (odd ``d``) the extra horizontal merge closes the sequence.  There
are exactly ``log w`` horizontal and ``log v`` vertical merges.

At each iteration the current regions pair up; for each pair a **group
manager** (a processor adjacent to the border, on the first side) and a
**shadow manager** (directly across the border) fetch and sort the two
border sides; the manager solves the border graph and publishes the
change list to the **clients** -- the other processors of the merged
region.  This module computes that static schedule; the executor lives
in :mod:`repro.core.connected_components`.

Note on manager granularity: the paper's bit-pattern manager selection
lets one manager serve the stacked borders of two adjacent region rows
in some iterations; we assign exactly one manager per border, which
leaves the asymptotic costs (and the per-iteration border volume)
unchanged while keeping the schedule uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tiles import ProcessorGrid
from repro.utils.errors import ValidationError
from repro.utils.validation import ilog2


@dataclass(frozen=True)
class MergeGroup:
    """One border merge within an iteration.

    ``side_a_pids`` / ``side_b_pids`` list the processors contributing
    the first (left or upper) and second (right or lower) side of the
    border, in scan order; the border's pixel length per side is
    ``len(side_a_pids) * q`` (horizontal merge) or ``* r`` (vertical).
    ``clients`` are the merged region's processors except the manager.
    """

    manager: int
    shadow: int
    side_a_pids: tuple[int, ...]
    side_b_pids: tuple[int, ...]
    clients: tuple[int, ...]

    @property
    def region(self) -> tuple[int, ...]:
        return tuple(sorted((self.manager, *self.clients)))


@dataclass(frozen=True)
class MergeStep:
    """One of the ``log p`` merge iterations."""

    t: int
    orientation: str  # "H" (merge along vertical borders) or "V"
    groups: tuple[MergeGroup, ...]

    @property
    def edge_names(self) -> tuple[str, str]:
        """Tile edges contributed by side a and side b."""
        return ("right", "left") if self.orientation == "H" else ("bottom", "top")


def merge_schedule(grid: ProcessorGrid) -> list[MergeStep]:
    """The full merge schedule for a processor grid.

    Returns ``log p`` steps; step ``t`` (1-based) merges regions of
    ``vspan x hspan`` tiles into regions twice as wide (H) or tall (V).
    """
    v, w = grid.v, grid.w
    log_w = ilog2(w)
    log_v = ilog2(v)
    steps: list[MergeStep] = []
    hspan = vspan = 1
    done_h = done_v = 0
    for t in range(1, log_w + log_v + 1):
        horizontal = (t % 2 == 1 and done_h < log_w) or done_v == log_v
        if horizontal and done_h >= log_w:
            raise ValidationError("internal schedule error: too many horizontal merges")
        groups: list[MergeGroup] = []
        if horizontal:
            for I0 in range(0, v, vspan):
                for J0 in range(0, w, 2 * hspan):
                    Jb = J0 + hspan - 1
                    rows = range(I0, I0 + vspan)
                    side_a = tuple(grid.pid_at(i, Jb) for i in rows)
                    side_b = tuple(grid.pid_at(i, Jb + 1) for i in rows)
                    manager = grid.pid_at(I0, Jb)
                    shadow = grid.pid_at(I0, Jb + 1)
                    region = [
                        grid.pid_at(i, j)
                        for i in rows
                        for j in range(J0, J0 + 2 * hspan)
                    ]
                    clients = tuple(pid for pid in region if pid != manager)
                    groups.append(
                        MergeGroup(manager, shadow, side_a, side_b, clients)
                    )
            hspan *= 2
            done_h += 1
            orientation = "H"
        else:
            for I0 in range(0, v, 2 * vspan):
                for J0 in range(0, w, hspan):
                    Ib = I0 + vspan - 1
                    cols = range(J0, J0 + hspan)
                    side_a = tuple(grid.pid_at(Ib, j) for j in cols)
                    side_b = tuple(grid.pid_at(Ib + 1, j) for j in cols)
                    manager = grid.pid_at(Ib, J0)
                    shadow = grid.pid_at(Ib + 1, J0)
                    region = [
                        grid.pid_at(i, j)
                        for i in range(I0, I0 + 2 * vspan)
                        for j in cols
                    ]
                    clients = tuple(pid for pid in region if pid != manager)
                    groups.append(
                        MergeGroup(manager, shadow, side_a, side_b, clients)
                    )
            vspan *= 2
            done_v += 1
            orientation = "V"
        steps.append(MergeStep(t=t, orientation=orientation, groups=tuple(groups)))
    return steps

"""Parallel histogramming on the BDM machine (Section 4 of the paper).

The algorithm:

1. **Tally** -- every processor counts the grey levels of its own
   ``(n/v) x (n/w)`` tile into a local array ``H_i[0..k-1]``.
2. **Transpose** -- the ``k x p`` array of local tallies is transposed
   so the counts of each grey level meet on one processor: the blocked
   transpose gives processor ``i`` all partial counts for levels
   ``i*k/p .. (i+1)*k/p - 1`` (a *truncated* transpose puts level ``i``
   on processor ``i`` when ``k < p``).
3. **Reduce** -- each processor sums its ``p`` partial count vectors
   locally (``O(k)`` work).
4. **Collect** -- ``P0`` prefetches the reduced slices with a circular
   data movement and outputs ``H[0..k-1]``.

Complexities (equation (3)): ``T_comm <= 2 (tau + k)`` -- independent
of the image size! -- and ``T_comp = O(n^2 / p + k)``, so computation
dominates for large ``n`` and the algorithm scales linearly in ``n^2``
for fixed ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bdm.cost import MachineReport
from repro.bdm.machine import Machine
from repro.bdm.memory import GlobalArray
from repro.bdm.transpose import transpose, gather_to
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.tiles import ProcessorGrid
from repro.kernels import get as get_kernel
from repro.machines.params import MachineParams, IDEAL
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two


@dataclass
class HistogramResult:
    """Output of :func:`parallel_histogram`.

    Attributes
    ----------
    histogram:
        ``H[0..k-1]`` held by processor 0; ``H[i]`` is the number of
        pixels with grey level ``i``.
    report:
        Simulated cost report (phases: ``hist:tally``,
        ``hist:transpose``, ``hist:reduce``, ``hist:collect``).
    grid:
        The processor grid used.
    """

    histogram: np.ndarray
    report: MachineReport
    grid: ProcessorGrid

    @property
    def elapsed_s(self) -> float:
        return self.report.elapsed_s


def parallel_histogram(
    image: np.ndarray,
    k: int,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    costs: CostParams = DEFAULT_COSTS,
    check_hazards: bool = True,
    overlap: bool = False,
    machine: Machine | None = None,
    kernel: str | None = None,
) -> HistogramResult:
    """Histogram an image's ``k`` grey levels on ``p`` processors.

    The paper's setting is square images; rectangular images work too
    (the grid must divide both dimensions).

    ``k`` and ``p`` must be powers of two (the paper's assumption, which
    makes ``k/p`` or ``p/k`` integral).  Returns the histogram together
    with the simulated cost report.  ``overlap=True`` models perfect
    split-phase overlap of communication and computation (see
    :class:`~repro.bdm.machine.Machine`).  ``kernel`` selects the local
    tally kernel backend (``"python"`` / ``"numpy"``; ``None`` resolves
    ``REPRO_KERNEL_BACKEND`` / the numpy default) -- the backend changes
    only how the local computation runs, never the simulated costs.
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")

    grid = ProcessorGrid(p, image.shape)
    if machine is None:
        machine = Machine(p, machine_params, check_hazards=check_hazards, overlap=overlap)
    elif machine.p != p:
        raise ValidationError(f"machine has {machine.p} processors, expected {p}")
    tiles = grid.scatter(image)

    # Step 1: local tallies H_i[0..k-1] (kernel-dispatched local step).
    tally_kernel = get_kernel("histogram", backend=kernel)
    H = GlobalArray(machine, k, dtype=np.int64, name="H")
    tile_pixels = grid.q * grid.r
    with machine.phase("hist:tally"):
        for proc in machine.procs:
            tally = tally_kernel(tiles[proc.pid], k)
            H.write(proc, proc.pid, tally)
            proc.charge_comp(costs.hist_tally_per_pixel * tile_pixels + k)

    # Step 2: transpose of the k x p tally array (truncated when k < p).
    HT = transpose(machine, H, phase_name="hist:transpose")

    # Step 3: local reduction of the received partial counts.
    if k >= p:
        size = k // p
        R = GlobalArray(machine, size, dtype=np.int64, name="R")
        with machine.phase("hist:reduce"):
            for proc in machine.procs:
                block = HT.local(proc.pid)  # p slots of k/p partial counts
                sums = block.reshape(p, size).sum(axis=0)
                R.write(proc, proc.pid, sums)
                proc.charge_comp(costs.hist_reduce_per_word * k)
    else:
        lengths = [1 if i < k else 0 for i in range(p)]
        R = GlobalArray(machine, lengths, dtype=np.int64, name="R")
        with machine.phase("hist:reduce"):
            for proc in machine.procs:
                if proc.pid < k:
                    total = int(HT.local(proc.pid).sum())
                    R.write(proc, proc.pid, [total])
                    proc.charge_comp(costs.hist_reduce_per_word * p)

    # Step 4: P0 collects the k histogram bars.
    histogram = gather_to(machine, R, root=0, phase_name="hist:collect")
    return HistogramResult(histogram=histogram, report=machine.report(), grid=grid)

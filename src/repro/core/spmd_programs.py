"""The paper's algorithm listings as SPMD per-processor programs.

The paper presents Algorithms 1-2 as the program *one* processor runs
("Processor i runs the following program: ...").  This module writes
them exactly that way on the generator-based executor
(:func:`repro.bdm.spmd.run_spmd`), as an executable cross-check of the
phase-style implementations: identical results, identical simulated
communication costs (tested).

Provided programs:

* :func:`spmd_transpose` -- Algorithm 1 verbatim;
* :func:`spmd_broadcast` -- Algorithm 2 verbatim (two transposes, the
  second specialized to the valid slot);
* :func:`spmd_histogram` -- Section 4's histogramming, from the tile
  tally through the collection on ``P0``.
"""

from __future__ import annotations

import numpy as np

from repro.bdm.machine import Machine
from repro.bdm.spmd import SpmdContext, run_spmd
from repro.core.costs import CostParams, DEFAULT_COSTS
from repro.core.tiles import ProcessorGrid
from repro.machines.params import MachineParams, IDEAL
from repro.utils.errors import ValidationError
from repro.utils.validation import check_image, check_power_of_two


def spmd_transpose(machine: Machine, matrix: np.ndarray) -> np.ndarray:
    """Algorithm 1 as an SPMD program; returns the transposed layout.

    ``matrix`` is ``p x q`` with row ``i`` as processor ``i``'s column.
    Returns the ``p x q`` block layout after transposition (row ``t`` =
    processor ``t``'s memory).
    """
    p = machine.p
    matrix = np.asarray(matrix)
    if matrix.shape[0] != p:
        raise ValidationError(f"matrix must have {p} rows")
    q = matrix.shape[1]
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}")
    size = q // p

    def program(ctx: SpmdContext):
        A = ctx.array("A", q)
        AT = ctx.array("AT", q)
        ctx.write(A, matrix[ctx.pid])
        yield ctx.barrier()
        handles = []
        for loop in range(p):  # Step 1
            r = (ctx.pid + loop) % p
            handles.append(
                (r, ctx.prefetch(A, r, ctx.pid * size, (ctx.pid + 1) * size))
            )
        yield ctx.sync()  # Step 2
        for r, handle in handles:
            ctx.write(AT, handle.value, start=r * size)
        yield ctx.barrier()
        return ctx.read_local(AT).copy()

    return np.stack(run_spmd(machine, program))


def spmd_broadcast(machine: Machine, payload: np.ndarray, *, root: int = 0) -> np.ndarray:
    """Algorithm 2 as an SPMD program; returns every processor's copy."""
    p = machine.p
    payload = np.asarray(payload).ravel()
    q = len(payload)
    if q % p != 0:
        raise ValidationError(f"p={p} must divide q={q}; pad the payload")
    size = q // p

    def program(ctx: SpmdContext):
        A = ctx.array("A", q)
        AT = ctx.array("AT", q)
        out = ctx.array("out", q)
        if ctx.pid == root:
            ctx.write(A, payload)
        yield ctx.barrier()
        # Steps 1-2: full transpose.
        handles = []
        for loop in range(p):
            r = (ctx.pid + loop) % p
            handles.append(
                (r, ctx.prefetch(A, r, ctx.pid * size, (ctx.pid + 1) * size))
            )
        yield ctx.sync()
        for r, handle in handles:
            ctx.write(AT, handle.value, start=r * size)
        yield ctx.barrier()
        # Steps 3-4: specialized transpose of the valid slot only.
        handles = []
        for loop in range(p):
            r = (ctx.pid + loop) % p
            handles.append(
                (r, ctx.prefetch(AT, r, root * size, (root + 1) * size))
            )
        yield ctx.sync()
        for r, handle in handles:
            ctx.write(out, handle.value, start=r * size)
        yield ctx.barrier()
        return ctx.read_local(out).copy()

    return np.stack(run_spmd(machine, program))


def spmd_histogram(
    image: np.ndarray,
    k: int,
    p: int,
    machine_params: MachineParams = IDEAL,
    *,
    costs: CostParams = DEFAULT_COSTS,
):
    """Section 4's histogramming as an SPMD program.

    Returns ``(histogram, machine)`` -- the machine exposes the cost
    report, comparable to the phase-style
    :func:`repro.core.histogram.parallel_histogram`.  The ``k < p``
    case uses the truncated transpose (grey level ``i`` gathered onto
    processor ``i``), like the phase implementation.
    """
    image = check_image(image, square=False)
    check_power_of_two("k", k)
    if image.max(initial=0) >= k:
        raise ValidationError(f"image has grey levels >= k={k}")

    grid = ProcessorGrid(p, image.shape)
    machine = Machine(p, machine_params)
    tiles = grid.scatter(image)
    truncated = k < p
    size = 1 if truncated else k // p
    tile_pixels = grid.q * grid.r

    def program(ctx: SpmdContext):
        H = ctx.array("H", k)
        HT = ctx.array("HT", p * size)  # p slots of size words each
        R = ctx.array("R", size if (not truncated or ctx.pid < k) else 0)

        # Step 1: local tally.
        tally = np.bincount(tiles[ctx.pid].ravel(), minlength=k)
        ctx.write(H, tally)
        ctx.charge(costs.hist_tally_per_pixel * tile_pixels + k)
        yield ctx.barrier()

        # Step 2: transpose of the k x p tally array (truncated when
        # k < p: processor i < k collects level i from every column).
        handles = []
        if not truncated:
            for loop in range(ctx.p):
                r = (ctx.pid + loop) % ctx.p
                handles.append(
                    (r, ctx.prefetch(H, r, ctx.pid * size, (ctx.pid + 1) * size))
                )
        elif ctx.pid < k:
            for loop in range(ctx.p):
                r = (ctx.pid + loop) % ctx.p
                handles.append((r, ctx.prefetch(H, r, ctx.pid, ctx.pid + 1)))
        yield ctx.sync()
        for r, handle in handles:
            ctx.write(HT, handle.value, start=r * size)
        yield ctx.barrier()

        # Step 3: local reduction.
        if not truncated or ctx.pid < k:
            block = ctx.read_local(HT).reshape(ctx.p, size)
            ctx.write(R, block.sum(axis=0))
            ctx.charge(costs.hist_reduce_per_word * (p if truncated else k))
        yield ctx.barrier()

        # Step 4: P0 collects with a circular movement.
        if ctx.pid == 0:
            handles = []
            owners = range(k) if truncated else range(ctx.p)
            for r in owners:
                handles.append((r, ctx.prefetch(R, r)))
            yield ctx.sync()
            parts = [None] * len(handles)
            for idx, (_r, handle) in enumerate(handles):
                parts[idx] = handle.value
            return np.concatenate(parts)
        yield ctx.barrier()
        return None

    results = run_spmd(machine, program)
    return results[0], machine

"""Logical processor grid and image tiling (Section 3 of the paper).

For ``p = 2^d`` processors the paper arranges a ``v x w`` logical grid
with ``v = 2^floor(d/2)`` rows and ``w = 2^ceil(d/2)`` columns (square
when ``d`` is even, twice as wide as tall when odd).  Processors are
assigned to grid positions in row-major order.  An ``n x n`` image is
split into tiles of ``q x r = n/v x n/w`` pixels; processor at grid
position ``(I, J)`` owns the tile whose top-left global pixel is
``(I q, J r)``.

Two extensions beyond the paper's setting:

* an explicit grid ``shape=(v, w)`` overrides the near-square split
  (degenerate ``1 x p`` / ``p x 1`` strips included), and
* ``strict=False`` accepts images the grid does not divide evenly --
  tiles then follow the *balanced* partition ``rows*I//v .. rows*(I+1)//v``
  (heights differing by at most one pixel), which reduces exactly to
  the uniform tiling whenever the grid divides the image.  Non-uniform
  grids have no single ``q``/``r``; per-tile shapes come from
  :meth:`ProcessorGrid.tile_shape`, which is what the
  :mod:`repro.darray` shards rely on.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_image, ilog2


class ProcessorGrid:
    """The ``v x w`` logical grid of ``p`` processors over an image.

    The paper's setting is an ``n x n`` image (pass an int); rectangular
    ``rows x cols`` images are supported as an extension (pass a
    ``(rows, cols)`` tuple) -- the grid shape only depends on ``p``, and
    tiles become ``rows/v x cols/w``.

    Attributes
    ----------
    p:
        Processor count (power of two).
    rows, cols:
        Image dimensions; ``n`` is an alias for ``rows`` on square
        images (reading it on a rectangular grid raises).
    v, w:
        Grid rows and columns (``v * w == p``; ``w in (v, 2v)`` unless
        an explicit ``shape`` was given).
    q, r:
        Tile height ``rows/v`` and width ``cols/w`` in pixels.  Only
        defined on a uniform tiling; reading them on a non-dividing
        ``strict=False`` grid raises (use :meth:`tile_shape`).
    uniform:
        Whether every tile has the same ``q x r`` shape.

    Parameters
    ----------
    strict:
        ``True`` (default) rejects images the grid does not divide --
        the historical contract every simulator-era caller relies on.
        ``False`` accepts them with the balanced partition described in
        the module docstring.
    shape:
        Optional explicit ``(v, w)`` grid shape with ``v * w == p``;
        ``None`` picks the paper's near-square split.
    """

    def __init__(self, p: int, n, *, strict: bool = True, shape=None):
        if not isinstance(p, (int, np.integer)) or p <= 0 or (p & (p - 1)) != 0:
            raise ConfigurationError(f"p must be a power of two, got {p!r}")
        if isinstance(n, (int, np.integer)):
            rows = cols = int(n)
        else:
            try:
                rows, cols = (int(x) for x in n)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"n must be an int or a (rows, cols) pair, got {n!r}"
                ) from None
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"image dimensions must be positive, got {rows}x{cols}")
        d = ilog2(p)
        self.p = p
        self.rows = rows
        self.cols = cols
        if shape is None:
            self.v = 1 << (d // 2)
            self.w = 1 << (d - d // 2)
        else:
            try:
                v, w = (int(x) for x in shape)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"shape must be a (v, w) pair, got {shape!r}"
                ) from None
            if v <= 0 or w <= 0 or v * w != p:
                raise ConfigurationError(
                    f"grid shape {v}x{w} does not factor p={p}"
                )
            self.v = v
            self.w = w
        if rows % self.v != 0 or cols % self.w != 0:
            if strict:
                raise ConfigurationError(
                    f"grid {self.v}x{self.w} does not divide image {rows}x{cols}"
                )
            if self.v > rows or self.w > cols:
                raise ConfigurationError(
                    f"grid {self.v}x{self.w} exceeds image {rows}x{cols}: "
                    f"some tiles would be empty"
                )
            self.uniform = False
            self._q = None
            self._r = None
        else:
            self.uniform = True
            self._q = rows // self.v
            self._r = cols // self.w
        if p > rows * cols:
            raise ConfigurationError(f"p={p} exceeds pixel count {rows * cols}")

    @property
    def n(self) -> int:
        """Image side for square images (the paper's ``n``)."""
        if self.rows != self.cols:
            raise ConfigurationError(
                f"grid covers a rectangular {self.rows}x{self.cols} image; use "
                ".rows/.cols"
            )
        return self.rows

    @property
    def q(self) -> int:
        """Uniform tile height (raises on a non-uniform tiling)."""
        if self._q is None:
            raise ConfigurationError(
                f"grid {self.v}x{self.w} tiles {self.rows}x{self.cols} "
                f"non-uniformly; use tile_shape(pid)"
            )
        return self._q

    @property
    def r(self) -> int:
        """Uniform tile width (raises on a non-uniform tiling)."""
        if self._r is None:
            raise ConfigurationError(
                f"grid {self.v}x{self.w} tiles {self.rows}x{self.cols} "
                f"non-uniformly; use tile_shape(pid)"
            )
        return self._r

    # -- coordinates -------------------------------------------------------

    def coords(self, pid: int) -> tuple[int, int]:
        """Grid position ``(I, J)`` of processor ``pid`` (row-major)."""
        if not (0 <= pid < self.p):
            raise ConfigurationError(f"pid {pid} out of range [0, {self.p})")
        return pid // self.w, pid % self.w

    def pid_at(self, I: int, J: int) -> int:
        """Processor at grid position ``(I, J)``."""
        if not (0 <= I < self.v and 0 <= J < self.w):
            raise ConfigurationError(
                f"grid position ({I}, {J}) out of range {self.v}x{self.w}"
            )
        return I * self.w + J

    def row_bounds(self, I: int) -> tuple[int, int]:
        """Global row interval ``[start, stop)`` of grid row ``I``."""
        if not (0 <= I < self.v):
            raise ConfigurationError(f"grid row {I} out of range [0, {self.v})")
        return self.rows * I // self.v, self.rows * (I + 1) // self.v

    def col_bounds(self, J: int) -> tuple[int, int]:
        """Global column interval ``[start, stop)`` of grid column ``J``."""
        if not (0 <= J < self.w):
            raise ConfigurationError(f"grid column {J} out of range [0, {self.w})")
        return self.cols * J // self.w, self.cols * (J + 1) // self.w

    def tile_origin(self, pid: int) -> tuple[int, int]:
        """Global pixel coordinates of the tile's top-left corner."""
        I, J = self.coords(pid)
        return self.row_bounds(I)[0], self.col_bounds(J)[0]

    def tile_shape(self, pid: int) -> tuple[int, int]:
        """Exact ``(height, width)`` of processor ``pid``'s tile.

        Equals ``(q, r)`` on a uniform tiling; on a balanced non-uniform
        tiling heights/widths differ by at most one pixel between tiles.
        """
        I, J = self.coords(pid)
        r0, r1 = self.row_bounds(I)
        c0, c1 = self.col_bounds(J)
        return r1 - r0, c1 - c0

    def tile_slices(self, pid: int) -> tuple[slice, slice]:
        """Row/column slices selecting processor ``pid``'s tile."""
        I, J = self.coords(pid)
        r0, r1 = self.row_bounds(I)
        c0, c1 = self.col_bounds(J)
        return slice(r0, r1), slice(c0, c1)

    # -- data movement (initial placement / final collection) --------------

    def scatter(self, image: np.ndarray) -> list[np.ndarray]:
        """Split an image into the per-processor tiles (copies).

        This is the *initial data placement* the BDM model allows for
        free; it is not communication.
        """
        image = check_image(image, square=False)
        if image.shape != (self.rows, self.cols):
            raise ConfigurationError(
                f"image shape {image.shape} does not match grid "
                f"{self.rows}x{self.cols}"
            )
        return [image[self.tile_slices(pid)].copy() for pid in range(self.p)]

    def gather(self, tiles: list[np.ndarray], dtype=None) -> np.ndarray:
        """Reassemble per-processor tiles into a full image (diagnostic)."""
        if len(tiles) != self.p:
            raise ConfigurationError(
                f"expected {self.p} tiles, got {len(tiles)}"
            )
        dtype = dtype if dtype is not None else np.asarray(tiles[0]).dtype
        out = np.empty((self.rows, self.cols), dtype=dtype)
        for pid, tile in enumerate(tiles):
            tile = np.asarray(tile)
            if tile.shape != self.tile_shape(pid):
                raise ConfigurationError(
                    f"tile {pid} has shape {tile.shape}, expected {self.tile_shape(pid)}"
                )
            out[self.tile_slices(pid)] = tile
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tile = f"{self._q}x{self._r}" if self.uniform else "balanced"
        return (
            f"ProcessorGrid(p={self.p}, image={self.rows}x{self.cols}, "
            f"grid={self.v}x{self.w}, tile={tile})"
        )


# -- tile border helpers -------------------------------------------------


def edge_indices(q: int, r: int, edge: str) -> np.ndarray:
    """Flat (row-major) indices of one edge of a ``q x r`` tile.

    ``edge`` is one of ``"top"``, ``"bottom"``, ``"left"``, ``"right"``.
    Indices run left-to-right for horizontal edges and top-to-bottom for
    vertical ones, so concatenating one edge across a stack of tiles
    yields the border in global scan order.
    """
    if edge == "top":
        return np.arange(r, dtype=np.int64)
    if edge == "bottom":
        return np.arange(r, dtype=np.int64) + (q - 1) * r
    if edge == "left":
        return np.arange(q, dtype=np.int64) * r
    if edge == "right":
        return np.arange(q, dtype=np.int64) * r + (r - 1)
    raise ConfigurationError(f"unknown edge {edge!r}")


def perimeter_indices(q: int, r: int) -> np.ndarray:
    """Flat indices of all border pixels of a ``q x r`` tile (sorted, unique)."""
    parts = [
        edge_indices(q, r, "top"),
        edge_indices(q, r, "bottom"),
        edge_indices(q, r, "left"),
        edge_indices(q, r, "right"),
    ]
    return np.unique(np.concatenate(parts))
